"""Figure 7 — IPC of Baseline / SBI / SWI / SBI+SWI / Warp64.

Regenerates both panels of the paper's headline figure: thread
instructions per cycle for every workload under the five
configurations, plus the suite geometric means (TMD excluded from
means, as in the paper).  Paper reference points: SBI+SWI +40%
(irregular) / +23% (regular) over baseline; SBI alone +41%/+15%;
SWI alone +33%/+25%; peak IPC 64 baseline vs 104 interweaving.

Cells run through :class:`repro.api.Engine` (sharing its two-level
result cache) and accumulate into a :class:`repro.api.ResultSet`,
which the report serializes to ``benchmarks/results/figure7.json`` —
reload it with ``ResultSet.from_json`` or merge grids from several
sessions.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import report as rpt
from repro.api import Engine, Result, ResultSet, SweepSpec
from repro.workloads import normalize_size
from repro.workloads.suite import IRREGULAR, MEAN_EXCLUDED, REGULAR

CONFIG_ORDER = ("baseline", "sbi", "swi", "sbi_swi", "warp64")

_ENGINE = Engine()
_CONFIGS = dict(SweepSpec.figure7().configs)
_RS = ResultSet()


def _run(workload: str, config_name: str, size: str):
    stats = _ENGINE.run_cell(workload, size, _CONFIGS[config_name])
    _RS.add(Result(workload, size, config_name, stats))
    return stats


@pytest.mark.parametrize("workload", REGULAR)
@pytest.mark.parametrize("config_name", CONFIG_ORDER)
def test_fig7_regular(benchmark, workload, config_name, bench_size):
    stats = benchmark.pedantic(
        _run, args=(workload, config_name, bench_size), rounds=1, iterations=1
    )
    assert stats.cycles > 0
    assert stats.ipc <= stats.cycles and stats.ipc <= 104.0 + 1e-9


@pytest.mark.parametrize("workload", IRREGULAR)
@pytest.mark.parametrize("config_name", CONFIG_ORDER)
def test_fig7_irregular(benchmark, workload, config_name, bench_size):
    stats = benchmark.pedantic(
        _run, args=(workload, config_name, bench_size), rounds=1, iterations=1
    )
    assert stats.cycles > 0
    peak = 64.0 if config_name in ("baseline", "warp64") else 104.0
    assert stats.ipc <= peak + 1e-9


def test_fig7_report(benchmark, report, bench_size):
    """Aggregate both panels and check the paper-shape invariants."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for panel, names in (("7a regular", REGULAR), ("7b irregular", IRREGULAR)):
        panel_rs = _RS.filter(workload=names)
        if not len(panel_rs):
            continue
        report.add("Figure %s: IPC" % panel, panel_rs.to_text())
        report.add(
            "Figure %s: speedup vs baseline" % panel,
            rpt.speedup_table(
                panel_rs.ipc_table(),
                "baseline",
                [c for c in panel_rs.configs if c != "baseline"],
                panel_rs.workloads,
                excluded=MEAN_EXCLUDED,
            ),
        )
    if len(_RS):
        path = os.path.join(os.path.dirname(__file__), "results", "figure7.json")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _RS.to_json(path)
    # Shape checks (soft versions of the paper's headline claims).
    # Tiny grids exist to exercise the machinery, not the claims:
    # their divergence/occupancy profiles are not the paper's.
    if normalize_size(bench_size) == "tiny":
        return
    for names in (REGULAR, IRREGULAR):
        panel_rs = _RS.filter(workload=names)
        means = panel_rs.geo_mean()
        if "baseline" in means and "sbi_swi" in means:
            assert (
                means["sbi_swi"] > means["baseline"]
            ), "SBI+SWI must beat the baseline on suite gmean"
