"""Figure 7 — IPC of Baseline / SBI / SWI / SBI+SWI / Warp64.

Regenerates both panels of the paper's headline figure: thread
instructions per cycle for every workload under the five
configurations, plus the suite geometric means (TMD excluded from
means, as in the paper).  Paper reference points: SBI+SWI +40%
(irregular) / +23% (regular) over baseline; SBI alone +41%/+15%;
SWI alone +33%/+25%; peak IPC 64 baseline vs 104 interweaving.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments, report as rpt
from repro.workloads.suite import IRREGULAR, MEAN_EXCLUDED, REGULAR

CONFIG_ORDER = ("baseline", "sbi", "swi", "sbi_swi", "warp64")

_RESULTS = {}


def _run(workload: str, config_name: str, size: str):
    configs = experiments.figure7_configs()
    stats = experiments.run_one(workload, configs[config_name], size)
    _RESULTS.setdefault(workload, {})[config_name] = stats
    return stats


@pytest.mark.parametrize("workload", REGULAR)
@pytest.mark.parametrize("config_name", CONFIG_ORDER)
def test_fig7_regular(benchmark, workload, config_name, bench_size):
    stats = benchmark.pedantic(
        _run, args=(workload, config_name, bench_size), rounds=1, iterations=1
    )
    assert stats.cycles > 0
    assert stats.ipc <= stats.cycles and stats.ipc <= 104.0 + 1e-9


@pytest.mark.parametrize("workload", IRREGULAR)
@pytest.mark.parametrize("config_name", CONFIG_ORDER)
def test_fig7_irregular(benchmark, workload, config_name, bench_size):
    stats = benchmark.pedantic(
        _run, args=(workload, config_name, bench_size), rounds=1, iterations=1
    )
    assert stats.cycles > 0
    peak = 64.0 if config_name in ("baseline", "warp64") else 104.0
    assert stats.ipc <= peak + 1e-9


def test_fig7_report(benchmark, report):
    """Aggregate both panels and check the paper-shape invariants."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for panel, names in (("7a regular", REGULAR), ("7b irregular", IRREGULAR)):
        rows = []
        present = [w for w in names if w in _RESULTS]
        for w in present:
            rows.append(
                [w] + [_RESULTS[w][c].ipc for c in CONFIG_ORDER if c in _RESULTS[w]]
            )
        included = [w for w in present if w not in MEAN_EXCLUDED]
        mean_row = ["gmean"]
        for c in CONFIG_ORDER:
            mean_row.append(rpt.gmean([_RESULTS[w][c].ipc for w in included]))
        rows.append(mean_row)
        report.add(
            "Figure %s: IPC" % panel,
            rpt.format_table(["workload"] + list(CONFIG_ORDER), rows),
        )
        ipc = {w: {c: _RESULTS[w][c].ipc for c in CONFIG_ORDER} for w in present}
        report.add(
            "Figure %s: speedup vs baseline" % panel,
            rpt.speedup_table(
                ipc,
                "baseline",
                [c for c in CONFIG_ORDER if c != "baseline"],
                present,
                excluded=MEAN_EXCLUDED,
            ),
        )
    # Shape checks (soft versions of the paper's headline claims).
    for names in (REGULAR, IRREGULAR):
        included = [w for w in names if w in _RESULTS and w not in MEAN_EXCLUDED]
        if not included:
            continue
        base = rpt.gmean([_RESULTS[w]["baseline"].ipc for w in included])
        combo = rpt.gmean([_RESULTS[w]["sbi_swi"].ipc for w in included])
        assert combo > base, "SBI+SWI must beat the baseline on suite gmean"
