"""Figure 9 — SWI lookup set-associativity on irregular applications.

Slowdown of 11-way / 3-way / direct-mapped secondary-scheduler lookup
relative to fully associative.  Paper: even direct-mapped keeps at
least 85% of the fully-associative performance (96% regular), so the
CAM can be replaced by a cheap set-associative search.
"""

from __future__ import annotations

import pytest

from repro.core import presets
from repro.analysis import report as rpt
from repro.api import Engine
from repro.workloads.suite import IRREGULAR, MEAN_EXCLUDED

_ENGINE = Engine()

#: None = fully associative; the window sizes match the paper's sweep.
WAYS = (None, 11, 3, 1)
LABELS = {None: "full", 11: "11-way", 3: "3-way", 1: "direct"}

_RESULTS = {}


def _run(workload, ways, size):
    stats = _ENGINE.run_cell(workload, size, presets.swi(ways=ways))
    _RESULTS.setdefault(workload, {})[ways] = stats
    return stats


@pytest.mark.parametrize("workload", IRREGULAR)
@pytest.mark.parametrize("ways", WAYS)
def test_fig9_cell(benchmark, workload, ways, bench_size):
    stats = benchmark.pedantic(
        _run, args=(workload, ways, bench_size), rounds=1, iterations=1
    )
    assert stats.cycles > 0


def test_fig9_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    per_ways = {w: [] for w in WAYS[1:]}
    for workload in IRREGULAR:
        cells = _RESULTS.get(workload)
        if not cells or None not in cells:
            continue
        full = cells[None].ipc
        row = [workload]
        for ways in WAYS[1:]:
            if ways not in cells:
                row.append(None)
                continue
            ratio = cells[ways].ipc / full
            row.append(ratio)
            if workload not in MEAN_EXCLUDED:
                per_ways[ways].append(ratio)
        rows.append(row)
    mean_row = ["gmean"]
    for ways in WAYS[1:]:
        mean_row.append(rpt.gmean(per_ways[ways]) if per_ways[ways] else None)
    rows.append(mean_row)
    report.add(
        "Figure 9: SWI associativity (ratio vs fully associative)",
        rpt.format_table(["workload"] + [LABELS[w] for w in WAYS[1:]], rows),
    )
    # Paper shape: direct-mapped keeps most of the benefit.
    if per_ways[1]:
        assert rpt.gmean(per_ways[1]) > 0.80
