"""Table 3 — per-component storage requirements (derived vs paper)."""

from __future__ import annotations

import pytest

from repro.analysis import report as rpt
from repro.hwcost.storage import CONFIGS, STORAGE_PAPER, storage_table


def test_table3_matches_paper(benchmark):
    table = benchmark.pedantic(storage_table, rounds=1, iterations=1)
    for component, row in table.items():
        for config, comp in row.items():
            derived = comp.geometry().split(",")[0].replace(" ", "")
            paper = STORAGE_PAPER[component][config].split(",")[0].replace(" ", "")
            assert derived == paper, (component, config, derived, paper)


def test_table3_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = storage_table()
    rows = []
    for component, row in table.items():
        rows.append(
            [component]
            + [row[c].geometry() for c in CONFIGS]
        )
    bit_rows = [
        ["total bits"]
        + [sum(table[comp][c].total_bits for comp in table) for c in CONFIGS]
    ]
    report.add(
        "Table 3: storage requirements",
        rpt.format_table(["component"] + list(CONFIGS), rows)
        + "\n"
        + rpt.format_table(["", *CONFIGS], bit_rows),
    )
