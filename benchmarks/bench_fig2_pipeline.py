"""Figure 2 — pipeline contents on the running if-then-else example.

Renders the execution pipeline for classic SIMT, SBI with and without
reconvergence constraints, SWI, and SBI+SWI on the paper's
6-instruction if-then-else with 2 warps of 4 threads, and checks the
structural claims the figure illustrates (co-issue happens, functional
results agree everywhere).
"""

from __future__ import annotations

import pytest

from repro.analysis.pipeline_trace import figure2_example

MODES = ("baseline", "sbi_nc", "sbi", "swi", "sbi_swi")
TITLES = {
    "baseline": "(a) SIMT",
    "sbi_nc": "(b) SBI (no constraints)",
    "sbi": "(c) SBI with constraints",
    "swi": "(d) SWI",
    "sbi_swi": "(e) SBI+SWI",
}

_TRACES = {}


def _run(mode):
    stats, art = figure2_example(mode)
    _TRACES[mode] = (stats, art)
    return stats


@pytest.mark.parametrize("mode", MODES)
def test_fig2_mode(benchmark, mode):
    stats = benchmark.pedantic(_run, args=(mode,), rounds=1, iterations=1)
    assert stats.thread_instructions > 0


def test_fig2_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for mode in MODES:
        if mode not in _TRACES:
            continue
        stats, art = _TRACES[mode]
        report.add(
            "Figure 2 %s (cycles=%d)" % (TITLES[mode], stats.cycles), art
        )
    # The dual front-end must actually co-issue on this example.
    for mode in ("sbi", "sbi_nc", "sbi_swi"):
        if mode in _TRACES:
            assert _TRACES[mode][0].issued_sbi_secondary > 0
    # All modes execute the same number of thread instructions.
    counts = {m: _TRACES[m][0].thread_instructions for m in _TRACES}
    assert len(set(counts.values())) == 1, counts
