"""Table 1 — lane shuffle functions and their lane-vs-thread diagrams."""

from __future__ import annotations

import pytest

from repro.analysis import report as rpt
from repro.timing import lanes

FUNCTIONS = {
    "identity": "tid",
    "mirror_odd": "n - tid if wid odd, tid otherwise",
    "mirror_half": "n - tid if wid > m/2, tid otherwise",
    "xor": "tid XOR wid",
    "xor_rev": "tid XOR bitrev(wid)",
}


def _build_table():
    rows = []
    for policy in lanes.POLICIES:
        perms = [lanes.permutation(policy, w, 64, 16) for w in range(16)]
        rows.append([policy, FUNCTIONS[policy], len(perms)])
    return rows


def test_table1_permutations(benchmark):
    rows = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    assert len(rows) == 5


def test_table1_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    body = rpt.format_table(["name", "function", "warps checked"], _build_table())
    for policy in lanes.POLICIES:
        body += "\n\n%s:\n%s" % (policy, lanes.diagram(policy, 4, 4))
    report.add("Table 1: lane shuffle functions", body)
