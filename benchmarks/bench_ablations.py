"""Ablations of the paper's design choices (beyond its figures).

Three knobs the paper fixes by design, swept here to show *why*:

* **Scoreboard precision** (section 3.4): warp-granular vs exact
  per-mask vs the paper's dependency matrix, under SBI+SWI.  The
  matrix should recover most of the exact scoreboard's performance at
  warp-size-independent cost.
* **CCT sideband-sorter delay** (section 3.4): how slow can the
  asynchronous insertion sort be before the heap degrades?  The paper
  argues even long delays are tolerable because the heap stays small.
* **Fetch bandwidth**: the dual front-end's appetite for the two
  fetch-decode units of Figure 1/3.
"""

from __future__ import annotations

import pytest

from repro.core import presets
from repro.analysis import report as rpt
from repro.api import Engine

_ENGINE = Engine()

WORKLOADS = ("mandelbrot", "eigenvalues", "tmd2")

_RESULTS = {}


def _run(tag, workload, config, size):
    stats = _ENGINE.run_cell(workload, size, config, cache=False)
    _RESULTS.setdefault(tag, {})[workload] = stats
    return stats


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("kind", ("warp", "mask", "matrix"))
def test_ablate_scoreboard(benchmark, workload, kind, bench_size):
    config = presets.sbi_swi(scoreboard_kind=kind)
    stats = benchmark.pedantic(
        _run, args=("scoreboard:" + kind, workload, config, bench_size),
        rounds=1, iterations=1,
    )
    assert stats.cycles > 0


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("delay", (0, 2, 8, 32))
def test_ablate_cct_delay(benchmark, workload, delay, bench_size):
    config = presets.sbi(cct_insert_delay=delay)
    stats = benchmark.pedantic(
        _run, args=("cct_delay:%d" % delay, workload, config, bench_size),
        rounds=1, iterations=1,
    )
    assert stats.cycles > 0


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("width", (1, 2, 4))
def test_ablate_fetch_width(benchmark, workload, width, bench_size):
    config = presets.sbi_swi(fetch_width=width)
    stats = benchmark.pedantic(
        _run, args=("fetch:%d" % width, workload, config, bench_size),
        rounds=1, iterations=1,
    )
    assert stats.cycles > 0


def test_ablation_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    groups = {
        "scoreboard precision (SBI+SWI)": ["scoreboard:warp", "scoreboard:mask", "scoreboard:matrix"],
        "CCT sideband delay (SBI)": ["cct_delay:0", "cct_delay:2", "cct_delay:8", "cct_delay:32"],
        "fetch width (SBI+SWI)": ["fetch:1", "fetch:2", "fetch:4"],
    }
    for title, tags in groups.items():
        rows = []
        for workload in WORKLOADS:
            row = [workload]
            for tag in tags:
                stats = _RESULTS.get(tag, {}).get(workload)
                row.append(stats.ipc if stats else None)
            rows.append(row)
        report.add(
            "Ablation: %s (IPC)" % title,
            rpt.format_table(["workload"] + [t.split(":")[1] for t in tags], rows),
        )
