"""Table 2 — micro-architecture parameters of each configuration."""

from __future__ import annotations

import pytest

from repro.core import presets
from repro.analysis import report as rpt


def _rows():
    cfgs = {
        "baseline": presets.baseline(),
        "sbi": presets.sbi(),
        "swi": presets.swi(),
        "sbi_swi": presets.sbi_swi(),
    }
    rows = []
    for name, c in cfgs.items():
        rows.append(
            [
                name,
                "%dx%d" % (c.warp_count, c.warp_width),
                c.scheduler_latency,
                c.delivery_latency,
                c.exec_latency,
                c.scoreboard_entries,
                "%dK/%d-way/%dB/%dc" % (c.l1_size // 1024, c.l1_ways, c.l1_block, c.l1_latency),
                "%.0f B/c, %d c" % (c.dram_bandwidth, c.dram_latency),
                "%.0f" % c.peak_ipc,
            ]
        )
    return rows


def test_table2_parameters(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    by_name = {r[0]: r for r in rows}
    # The Table 2 anchor values.
    assert by_name["baseline"][1] == "32x32"
    assert by_name["sbi"][1] == "16x64"
    assert by_name["swi"][2] == 2  # scheduler latency
    assert by_name["baseline"][3] == 0 and by_name["sbi"][3] == 1
    assert by_name["baseline"][8] == "64" and by_name["sbi_swi"][8] == "104"


def test_table2_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.add(
        "Table 2: micro-architecture parameters",
        rpt.format_table(
            [
                "config",
                "warps x width",
                "sched lat",
                "delivery lat",
                "exec lat",
                "scoreboard",
                "L1",
                "memory",
                "peak IPC",
            ],
            _rows(),
        ),
    )
