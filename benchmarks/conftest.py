"""Shared fixtures for the table/figure benchmarks.

Every bench module contributes formatted report sections; at session
end the collected report is printed and written to
``benchmarks/results/report.txt`` so the paper-shape tables survive
the pytest-benchmark output.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class Report:
    def __init__(self) -> None:
        self.sections: List[str] = []

    def add(self, title: str, body: str) -> None:
        text = "\n== %s ==\n%s\n" % (title, body)
        self.sections.append(text)
        print(text)

    def flush(self) -> None:
        if not self.sections:
            return
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, "report.txt")
        with open(path, "w") as f:
            f.write("\n".join(self.sections))
        print("\n[benchmark report written to %s]" % path)


_REPORT = Report()


@pytest.fixture(scope="session")
def report() -> Report:
    return _REPORT


def pytest_sessionfinish(session, exitstatus):
    _REPORT.flush()


@pytest.fixture(scope="session")
def bench_size() -> str:
    """Workload size for figure sweeps (override with REPRO_BENCH_SIZE)."""
    return os.environ.get("REPRO_BENCH_SIZE", "bench")
