"""Table 4 — component areas (model vs the paper's RTL synthesis)."""

from __future__ import annotations

import pytest

from repro.analysis import report as rpt
from repro.hwcost.area import AREA_PAPER, OVERHEAD_PAPER, area_table, overhead_percent

ROWS = (
    "RF",
    "Scoreboard",
    "Scheduler",
    "Warp pool/HCT",
    "Stack/CCT",
    "Insn. buffer",
    "Total",
    "Overhead",
)
CONFIGS = ("baseline", "sbi", "swi", "sbi_swi")


def test_table4_close_to_paper(benchmark):
    table = benchmark.pedantic(area_table, rounds=1, iterations=1)
    for row_name in ROWS:
        for config in CONFIGS:
            model = table[row_name].get(config)
            paper = AREA_PAPER[row_name].get(config)
            if model is None or paper is None:
                assert model is None and paper is None
                continue
            assert model == pytest.approx(paper, rel=0.05), (row_name, config)


def test_table4_overheads(benchmark):
    pct = benchmark.pedantic(
        lambda: {c: overhead_percent(c) for c in ("sbi", "swi", "sbi_swi")},
        rounds=1,
        iterations=1,
    )
    for config, paper in OVERHEAD_PAPER.items():
        assert pct[config] == pytest.approx(paper, abs=0.25)


def test_table4_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = area_table()
    rows = []
    for row_name in ROWS:
        cells = [row_name]
        for config in CONFIGS:
            model = table[row_name].get(config)
            paper = AREA_PAPER[row_name].get(config)
            if model is None:
                cells.append("-")
            else:
                cells.append("%.1f (paper %.1f)" % (model, paper))
        rows.append(cells)
    body = rpt.format_table(["component (x1000 um^2)"] + list(CONFIGS), rows)
    for config in ("sbi", "swi", "sbi_swi"):
        body += "\n%s SM overhead: %.2f%% (paper %.1f%%)" % (
            config,
            overhead_percent(config),
            OVERHEAD_PAPER[config],
        )
    report.add("Table 4: area model", body)
