"""Figure 8a — effect of SBI reconvergence constraints.

The paper finds constraints have a negligible effect on SBI-alone
performance (<0.1% mean) while cutting issued instructions (-1.3%
regular / -5.5% irregular), and produce small swings for SBI+SWI
(SortingNetworks +2.4%, BFS/Histogram slightly negative because they
like running ahead).
"""

from __future__ import annotations

import pytest

from repro.core import presets
from repro.analysis import report as rpt
from repro.api import Engine
from repro.workloads.suite import IRREGULAR, MEAN_EXCLUDED, REGULAR

_ENGINE = Engine()
_RESULTS = {}


def _run(workload, mode, constrained, size):
    if mode == "sbi":
        cfg = presets.sbi(constraints=constrained)
    else:
        cfg = presets.sbi_swi(constraints=constrained)
    stats = _ENGINE.run_cell(workload, size, cfg)
    _RESULTS.setdefault((mode, workload), {})[constrained] = stats
    return stats


@pytest.mark.parametrize("workload", IRREGULAR + REGULAR)
@pytest.mark.parametrize("mode", ("sbi", "sbi_swi"))
@pytest.mark.parametrize("constrained", (True, False))
def test_fig8a_cell(benchmark, workload, mode, constrained, bench_size):
    stats = benchmark.pedantic(
        _run, args=(workload, mode, constrained, bench_size), rounds=1, iterations=1
    )
    assert stats.cycles > 0


def test_fig8a_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    issue_reduction = {"regular": [], "irregular": []}
    speedups = {"sbi": [], "sbi_swi": []}
    for (mode, workload), cells in sorted(_RESULTS.items()):
        if True not in cells or False not in cells:
            continue
        with_c, without_c = cells[True], cells[False]
        speed = with_c.ipc / without_c.ipc
        dissue = (
            (with_c.instructions_issued - without_c.instructions_issued)
            / without_c.instructions_issued
        )
        rows.append([mode, workload, speed, "%+.2f%%" % (100 * dissue)])
        if workload not in MEAN_EXCLUDED:
            speedups[mode].append(speed)
            if mode == "sbi":
                cat = "regular" if workload in REGULAR else "irregular"
                issue_reduction[cat].append(dissue)
    body = rpt.format_table(
        ["mode", "workload", "constrained/unconstrained", "issued delta"], rows
    )
    for mode, vals in speedups.items():
        if vals:
            body += "\n%s gmean speedup with constraints: %+.2f%%" % (
                mode,
                100 * (rpt.gmean(vals) - 1),
            )
    for cat, vals in issue_reduction.items():
        if vals:
            body += "\nSBI issue-count delta (%s): %+.2f%% (paper: %s)" % (
                cat,
                100 * sum(vals) / len(vals),
                "-1.3%" if cat == "regular" else "-5.5%",
            )
    report.add("Figure 8a: SBI reconvergence constraints", body)
    # Paper shape: constraints are close to performance-neutral for SBI.
    if speedups["sbi"]:
        assert abs(rpt.gmean(speedups["sbi"]) - 1.0) < 0.05
