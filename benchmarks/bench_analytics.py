"""Overhead of the streaming analytics aggregators.

The aggregators in :mod:`repro.analytics` ride the engine's observer
stream, so every issue/retire/split/miss event pays their ``on_*``
methods.  This bench measures that toll: each workload simulates once
bare and once with the full trio (timeline + heatmap + origins)
attached, and the report tabulates the slowdown.  The aggregators are
O(bins + SMs) state by design; this keeps them honest on *time* too —
a regression here means a hot-path allocation or per-event rebin crept
in.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import report as rpt
from repro.analytics import make_aggregators
from repro.core import presets
from repro.core.simulator import simulate
from repro.workloads import get_workload

WORKLOADS = ("bfs", "mandelbrot", "histogram")
OBSERVER_NAMES = ("timeline", "heatmap", "origins")

_RESULTS = {}


def _run(tag, workload, size, observed):
    inst = get_workload(workload, size)
    aggregators = (
        make_aggregators(list(OBSERVER_NAMES)) if observed else {}
    )
    start = time.perf_counter()
    stats = simulate(
        inst.kernel,
        inst.memory,
        presets.by_name("sbi_swi"),
        observers=list(aggregators.values()),
    )
    elapsed = time.perf_counter() - start
    for aggregator in aggregators.values():
        aggregator.finalize(stats)
    _RESULTS.setdefault(tag, {})[workload] = (elapsed, stats)
    return stats


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("observed", (False, True), ids=("bare", "observed"))
def test_aggregator_overhead(benchmark, workload, observed, bench_size):
    tag = "observed" if observed else "bare"
    stats = benchmark.pedantic(
        _run, args=(tag, workload, bench_size, observed),
        rounds=1, iterations=1,
    )
    assert stats.cycles > 0


def test_analytics_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for workload in WORKLOADS:
        bare = _RESULTS.get("bare", {}).get(workload)
        observed = _RESULTS.get("observed", {}).get(workload)
        if bare is None or observed is None:
            continue
        bare_s, stats = bare
        observed_s, _ = observed
        overhead = (observed_s / bare_s - 1.0) * 100.0 if bare_s else None
        rows.append(
            [
                workload,
                stats.cycles,
                round(bare_s * 1e3, 1),
                round(observed_s * 1e3, 1),
                round(overhead, 1) if overhead is not None else None,
            ]
        )
    report.add(
        "Analytics overhead (timeline+heatmap+origins, SBI+SWI)",
        rpt.format_table(
            ["workload", "cycles", "bare ms", "observed ms", "overhead %"],
            rows,
        ),
    )
