"""Engine speed — cells/sec and cycles/sec over the figure-7 matrix.

Not a paper figure: this is the perf trajectory the repo regresses
against (``repro bench`` is the CLI face of the same measurement).
Two sections:

* throughput of the default (compiled-plan) engine per mode;
* compiled-vs-reference-interpreter speedup, which isolates the
  instruction-plan layer from the rest of the engine.

The committed baseline lives in ``BENCH_speed.json`` at the repo root
(regenerate with ``repro bench --size smoke --repeat 3 --json
BENCH_speed.json`` on a quiet machine).
"""

from __future__ import annotations

import pytest

from repro import bench
from repro.analysis import report as rpt

#: A fixed sub-matrix keeps the timing pass quick under pytest; the
#: CLI (and CI) measure the full 21-workload matrix.
WORKLOADS = ("matrixmul", "bfs", "histogram", "mandelbrot")

_RESULTS = {}


def _measure(compiled: bool, size: str):
    result = bench.run_bench(
        size=size, repeat=1, workloads=WORKLOADS, compiled=compiled
    )
    _RESULTS[compiled] = result
    return result


@pytest.mark.parametrize("compiled", (True, False), ids=("compiled", "reference"))
def test_speed(benchmark, compiled, bench_size):
    result = benchmark.pedantic(
        _measure, args=(compiled, bench_size), rounds=1, iterations=1
    )
    assert result["cells"] == len(WORKLOADS) * 5
    assert result["cells_per_sec"] > 0
    assert result["sim_cycles"] > 0


def test_speed_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if True not in _RESULTS:
        pytest.skip("timing pass did not run")
    fast = _RESULTS[True]
    headers = ["mode", "cells", "wall (s)", "cells/sec", "cycles/sec"]
    rows = [
        [m, v["cells"], v["wall_seconds"], v["cells_per_sec"], v["cycles_per_sec"]]
        for m, v in fast["per_mode"].items()
    ]
    rows.append(
        ["TOTAL", fast["cells"], fast["wall_seconds"], fast["cells_per_sec"],
         fast["cycles_per_sec"]]
    )
    report.add("Engine speed (compiled plans)", rpt.format_table(headers, rows))
    if False in _RESULTS:
        ref = _RESULTS[False]
        speedup = fast["cells_per_sec"] / ref["cells_per_sec"]
        report.add(
            "Compiled vs reference interpreter",
            rpt.format_table(
                ["path", "cells/sec", "speedup"],
                [
                    ["reference", ref["cells_per_sec"], 1.0],
                    ["compiled", fast["cells_per_sec"], speedup],
                ],
            ),
        )
        # The plans must never be slower than the interpreter they
        # replace (identical behaviour is pinned elsewhere).
        assert speedup > 1.0
