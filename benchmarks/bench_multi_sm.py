"""Multi-SM scaling — device IPC under the shared L2/DRAM hierarchy.

Not a paper figure: this sweeps the new device layer (GigaThread CTA
dispatch, shared sectored L2, partitioned DRAM) over SM counts, with
the paper's 10 B/cycle per-SM bandwidth share held constant.  Regular
workloads should scale close to linearly until the grid runs out of
CTAs; irregular ones saturate earlier on memory and divergence.
"""

from __future__ import annotations

import pytest

from repro.analysis import report as rpt
from repro.api import Engine
from repro.core import presets

WORKLOADS = ("matrixmul", "transpose", "bfs", "histogram")
MODES = ("baseline", "sbi_swi")
SM_COUNTS = (1, 2, 4)

_ENGINE = Engine()
_RESULTS = {}


def _run(workload: str, mode: str, sm_count: int, size: str):
    config = presets.device(mode, sm_count=sm_count)
    stats = _ENGINE.run_cell(workload, size, config)
    _RESULTS.setdefault(workload, {})[(mode, sm_count)] = stats
    return stats


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("sm_count", SM_COUNTS)
def test_multi_sm(benchmark, workload, mode, sm_count, bench_size):
    stats = benchmark.pedantic(
        _run, args=(workload, mode, sm_count, bench_size), rounds=1, iterations=1
    )
    assert stats.cycles > 0
    # Device peak: per-SM issue bound times the SM count.
    peak = (64.0 if mode == "baseline" else 104.0) * sm_count
    assert stats.ipc <= peak + 1e-9


def test_multi_sm_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headers = ["workload", "mode"] + ["x%d" % n for n in SM_COUNTS] + ["scaling"]
    rows = []
    for workload in WORKLOADS:
        for mode in MODES:
            cells = _RESULTS.get(workload, {})
            ipcs = [cells[(mode, n)].ipc for n in SM_COUNTS if (mode, n) in cells]
            if len(ipcs) != len(SM_COUNTS):
                continue
            rows.append([workload, mode] + ipcs + [ipcs[-1] / ipcs[0]])
    if rows:
        report.add("Multi-SM scaling: device IPC", rpt.format_table(headers, rows))
    for row in rows:
        assert row[-1] >= 0.95, "adding SMs must not slow the device down"
