"""Registered-policy shoot-out: the paper machines vs the exploration
policies shipped with the registry.

Sweeps every SWI-capable policy (``swi``, ``swi_greedy``, ``swi_rr``,
``dwr``) plus the ``warp64`` reference over divergent workloads — the
shapes where arbiter choice and warp resizing matter — and reports the
IPC table Figure-7 style.  Third-party policies registered before the
run would appear automatically: the sweep is driven off the registry,
not a hard-coded list.
"""

from __future__ import annotations

import pytest

from repro.analysis import report as rpt
from repro.api import Engine
from repro.core import presets

POLICY_SET = ("warp64", "swi", "swi_greedy", "swi_rr", "dwr")
WORKLOADS = ("mandelbrot", "eigenvalues", "bfs", "lud")

_ENGINE = Engine()
_RESULTS = {}


def _run(policy, workload, size):
    stats = _ENGINE.run_cell(workload, size, presets.by_name(policy), cache=False)
    _RESULTS.setdefault(policy, {})[workload] = stats
    return stats


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("policy", POLICY_SET)
def test_policy(benchmark, policy, workload, bench_size):
    stats = benchmark.pedantic(
        _run, args=(policy, workload, bench_size), rounds=1, iterations=1
    )
    assert stats.cycles > 0


def test_policy_report(benchmark, report, bench_size):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for workload in WORKLOADS:
        row = [workload]
        for policy in POLICY_SET:
            stats = _RESULTS.get(policy, {}).get(workload)
            row.append(stats.ipc if stats else None)
        rows.append(row)
    report.add(
        "Registered policies (IPC @ %s)" % bench_size,
        rpt.format_table(["workload"] + list(POLICY_SET), rows),
    )
