"""Figure 8b — SWI lane-shuffling policies on irregular applications.

Speedup of MirrorOdd / MirrorHalf / Xor / XorRev over the identity
mapping under SWI.  Paper: XorRev is the most consistent, gmean +1.4%
irregular (+0.3% regular), best case Needleman-Wunsch +7.7%, and the
gains come at zero hardware cost.
"""

from __future__ import annotations

import pytest

from repro.core import presets
from repro.analysis import report as rpt
from repro.api import Engine
from repro.workloads.suite import IRREGULAR, MEAN_EXCLUDED

_ENGINE = Engine()

POLICIES = ("identity", "mirror_odd", "mirror_half", "xor", "xor_rev")

_RESULTS = {}


def _run(workload, policy, size):
    stats = _ENGINE.run_cell(workload, size, presets.swi(lane_shuffle=policy))
    _RESULTS.setdefault(workload, {})[policy] = stats
    return stats


@pytest.mark.parametrize("workload", IRREGULAR)
@pytest.mark.parametrize("policy", POLICIES)
def test_fig8b_cell(benchmark, workload, policy, bench_size):
    stats = benchmark.pedantic(
        _run, args=(workload, policy, bench_size), rounds=1, iterations=1
    )
    assert stats.cycles > 0


def test_fig8b_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    per_policy = {p: [] for p in POLICIES[1:]}
    for workload in IRREGULAR:
        cells = _RESULTS.get(workload)
        if not cells or "identity" not in cells:
            continue
        base = cells["identity"].ipc
        row = [workload]
        for policy in POLICIES[1:]:
            if policy not in cells:
                row.append(None)
                continue
            s = cells[policy].ipc / base
            row.append(s)
            if workload not in MEAN_EXCLUDED:
                per_policy[policy].append(s)
        rows.append(row)
    mean_row = ["gmean"]
    for policy in POLICIES[1:]:
        mean_row.append(rpt.gmean(per_policy[policy]) if per_policy[policy] else None)
    rows.append(mean_row)
    report.add(
        "Figure 8b: SWI lane shuffling (speedup vs identity)",
        rpt.format_table(["workload"] + list(POLICIES[1:]), rows),
    )
