"""repro — Simultaneous Branch and Warp Interweaving (ISCA 2012).

A cycle-level reproduction of Brunie, Collange & Diamos,
"Simultaneous Branch and Warp Interweaving for Sustained GPU
Performance": a Fermi-like SM timing model with five scheduler
configurations (baseline, thread-frontier Warp64, SBI, SWI, SBI+SWI),
a functional SIMT substrate, the paper's 21 workloads, and hardware
cost models for its storage/area tables.

Quick start::

    from repro import presets, simulate
    from repro.workloads import get_workload

    wl = get_workload("mandelbrot", size="tiny")
    stats = simulate(wl.kernel, wl.memory, presets.sbi_swi())
    print(stats.ipc)

or, for whole grids, the experiment API (also behind the ``repro``
command line)::

    from repro import Engine, SweepSpec

    rs = Engine(jobs=4).run(SweepSpec.figure7(size="bench"))
    print(rs.to_markdown())
"""

from repro.core import presets
from repro.core.simulator import SimulationError, simulate
from repro.timing.config import SMConfig
from repro.timing.stats import Stats

__version__ = "1.6.0"

__all__ = [
    "Engine",
    "ResultSet",
    "SMConfig",
    "SimulationError",
    "Stats",
    "SweepSpec",
    "api",
    "presets",
    "simulate",
    "__version__",
]

#: Experiment-API names resolve lazily: repro.api sits above the
#: workload registry and analysis helpers, and eager loading here
#: would drag the whole stack in for every ``import repro``.
_API_NAMES = ("api", "Engine", "ResultSet", "SweepSpec")


def __getattr__(name):
    if name in _API_NAMES:
        import importlib

        api = importlib.import_module("repro.api")
        if name == "api":
            return api
        return getattr(api, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
