"""repro — Simultaneous Branch and Warp Interweaving (ISCA 2012).

A cycle-level reproduction of Brunie, Collange & Diamos,
"Simultaneous Branch and Warp Interweaving for Sustained GPU
Performance": a Fermi-like SM timing model with five scheduler
configurations (baseline, thread-frontier Warp64, SBI, SWI, SBI+SWI),
a functional SIMT substrate, the paper's 21 workloads, and hardware
cost models for its storage/area tables.

Quick start::

    from repro import presets, simulate
    from repro.workloads import get_workload

    wl = get_workload("mandelbrot", size="tiny")
    stats = simulate(wl.kernel, wl.memory, presets.sbi_swi())
    print(stats.ipc)
"""

from repro.core import presets
from repro.core.simulator import SimulationError, simulate
from repro.timing.config import SMConfig
from repro.timing.stats import Stats

__version__ = "1.0.0"

__all__ = [
    "SMConfig",
    "SimulationError",
    "Stats",
    "presets",
    "simulate",
    "__version__",
]
