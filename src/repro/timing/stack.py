"""Baseline IPDOM reconvergence stack (paper section 2).

The classic Tesla/Fermi mechanism: on a divergent branch the current
context is replaced by a *reconvergence placeholder* at the immediate
post-dominator plus one context per outcome; the top of stack executes;
a context reaching its reconvergence PC pops, and the placeholder
(holding the union mask) resumes converged execution.

Only the top of stack is runnable, so divergent paths serialise — the
behaviour SBI removes.  Unstructured control flow (no post-dominator
before exit) pushes contexts with ``rpc=None`` which pop only when all
their threads exit.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.timing.divergence import DivergenceModel, Split


class StackModel(DivergenceModel):
    """One runnable split: the top of the reconvergence stack."""

    __slots__ = ("stack",)

    hot_capacity = 1

    def __init__(self, launch_mask: int, lane_perm: Sequence[int]) -> None:
        super().__init__(launch_mask, lane_perm)
        self.stack: List[Split] = [Split(0, launch_mask, lane_perm, rpc=None)]

    # -- views -----------------------------------------------------------

    def hot_splits(self, now: int) -> List[Split]:
        hot = self._hot_cache
        if hot is None:
            if not self.stack:
                hot = []
            else:
                top = self.stack[-1]
                hot = [] if top.parked else [top]
            self._hot_cache = hot
        return hot

    def all_splits(self) -> Iterable[Split]:
        return iter(self.stack)

    def live_mask(self) -> int:
        # Stack entries are nested: the bottom placeholder holds the
        # union of everything above it, so the union is the widest one.
        mask = 0
        for s in self.stack:
            mask |= s.mask
        return mask

    # -- helpers ----------------------------------------------------------

    def _pop_reconverged(self) -> None:
        """Pop contexts that reached their reconvergence point."""
        while self.stack:
            top = self.stack[-1]
            if top.rpc is not None and top.pc == top.rpc:
                self.stack.pop()
                self.merge_count += 1
            else:
                break

    def check_invariants(self) -> None:
        """Stack masks are nested: each entry within the one below."""
        for i in range(len(self.stack) - 1):
            below, above = self.stack[i], self.stack[i + 1]
            if above.mask & ~below.mask:
                # Only reconvergence placeholders nest strictly; paths
                # pushed together are disjoint siblings of the
                # placeholder below them.
                pass
        live = self.live_mask()
        expected = self.launch_mask & ~self.exited_mask
        if live != expected:
            raise AssertionError("live %#x != expected %#x" % (live, expected))

    # -- mutation ----------------------------------------------------------

    def branch(
        self,
        split: Split,
        taken_mask: int,
        target_pc: int,
        reconv_pc: Optional[int],
        now: int,
    ) -> bool:
        """Branch the top of stack; pushes IPDOM placeholder on divergence."""
        self._touch()
        if split is not self.stack[-1]:
            raise AssertionError("stack model can only branch the top of stack")
        ft_mask = split.mask & ~taken_mask
        taken_mask &= split.mask
        if not ft_mask or not taken_mask:
            split.pc = target_pc if taken_mask else split.pc + 1
            self._pop_reconverged()
            return False
        # Divergent: replace top by placeholder + two outcome contexts.
        outer_rpc = split.rpc
        self.stack.pop()
        perm = self.lane_perm
        if reconv_pc is not None:
            self.stack.append(Split(reconv_pc, split.mask, perm, rpc=outer_rpc))
            child_rpc: Optional[int] = reconv_pc
        else:
            child_rpc = outer_rpc
        ft = Split(split.pc + 1, ft_mask, perm, rpc=child_rpc)
        taken = Split(target_pc, taken_mask, perm, rpc=child_rpc)
        ft.redirect_ready_at = split.redirect_ready_at
        taken.redirect_ready_at = split.redirect_ready_at
        self.stack.append(ft)
        self.stack.append(taken)
        # An empty taken path (if-without-else jumping straight to the
        # reconvergence point) merges immediately.
        self._pop_reconverged()
        return True

    def advance(self, split: Split, now: int) -> None:
        self._touch()
        split.pc += 1
        self._pop_reconverged()

    def exit_threads(self, split: Split, mask: int, now: int) -> None:
        self._touch()
        self.exited_mask |= mask
        for entry in list(self.stack):
            entry.set_mask(entry.mask & ~mask)
        self.stack = [e for e in self.stack if e.mask]
        self._pop_reconverged()

    def park(self, split: Split, now: int) -> None:
        self._touch()
        split.parked = True
        self.parked_threads += split.mask.bit_count()

    def unpark_all(self, now: int) -> None:
        self._touch()
        for entry in self.stack:
            if entry.parked:
                entry.parked = False
                entry.pc += 1
        self.parked_threads = 0
        self._pop_reconverged()
