"""Run statistics.

``thread_instructions / cycles`` is the IPC metric of paper Figure 7
(thread instructions per cycle on the SM).  Issue-slot counters split
by origin (primary, SBI secondary, SWI secondary) support Figure 8a's
instruction-issue accounting, and the memory counters feed sanity
checks in the test suite.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List

from repro.core.policy.events import ORIGIN_PRIMARY, ORIGIN_SBI, ORIGIN_SWI


@dataclass(slots=True)
class Stats:
    """Counters for one simulation run."""

    cycles: int = 0
    busy_cycles: int = 0

    # Instruction accounting.
    instructions_issued: int = 0
    thread_instructions: int = 0
    issued_primary: int = 0
    issued_sbi_secondary: int = 0
    issued_swi_secondary: int = 0
    per_op_class: Dict[str, int] = field(default_factory=dict)

    # Control flow.
    branches: int = 0
    divergent_branches: int = 0
    merges: int = 0
    max_live_splits: int = 0
    sync_suspensions: int = 0

    # SWI scheduler.
    swi_lookups: int = 0
    swi_hits: int = 0
    scheduler_conflicts: int = 0

    # Memory system.  ``dram_bytes`` counts traffic *below this SM's
    # L1* (miss fills + write-through); on a private channel that is
    # DRAM traffic, but under a shared L2 some of it is absorbed —
    # device-level DRAM bytes live in :class:`DeviceStats`.
    l1_accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    dram_bytes: float = 0.0
    global_transactions: int = 0
    shared_transactions: int = 0
    memory_replays: int = 0

    # Occupancy.
    ctas_launched: int = 0
    warps_retired: int = 0

    @property
    def ipc(self) -> float:
        """Thread instructions per cycle (the paper's Figure 7 metric)."""
        return self.thread_instructions / self.cycles if self.cycles else 0.0

    @property
    def issue_ipc(self) -> float:
        """Instruction issues per cycle (front-end utilisation)."""
        return self.instructions_issued / self.cycles if self.cycles else 0.0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def avg_active_threads(self) -> float:
        """Mean active threads per issued instruction (SIMD efficiency)."""
        if not self.instructions_issued:
            return 0.0
        return self.thread_instructions / self.instructions_issued

    def record_issue(self, op_class: str, active: int, origin: str) -> None:
        self.instructions_issued += 1
        self.thread_instructions += active
        self.per_op_class[op_class] = self.per_op_class.get(op_class, 0) + active
        if origin == ORIGIN_PRIMARY:
            self.issued_primary += 1
        elif origin == ORIGIN_SBI:
            self.issued_sbi_secondary += 1
        elif origin == ORIGIN_SWI:
            self.issued_swi_secondary += 1
        else:
            raise ValueError("unknown issue origin %r" % origin)

    def merge(self, other: "Stats") -> None:
        """Accumulate another SM's counters into this one.

        SMs run concurrently, so ``cycles`` (and the structural
        high-water mark ``max_live_splits``) take the max while every
        throughput counter sums; ``busy_cycles`` becomes total
        SM-busy-cycles across the device.
        """
        for f in fields(self):
            if f.name == "per_op_class":
                continue
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if f.name in ("cycles", "max_live_splits"):
                setattr(self, f.name, max(mine, theirs))
            else:
                setattr(self, f.name, mine + theirs)
        for op, count in other.per_op_class.items():
            self.per_op_class[op] = self.per_op_class.get(op, 0) + count

    def to_dict(self) -> Dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "Stats":
        return cls(**data)

    def summary(self) -> str:
        lines = [
            "cycles              %10d" % self.cycles,
            "instructions        %10d" % self.instructions_issued,
            "thread instructions %10d" % self.thread_instructions,
            "IPC                 %10.2f" % self.ipc,
            "issue IPC           %10.3f" % self.issue_ipc,
            "avg active threads  %10.2f" % self.avg_active_threads,
            "issue slots         primary=%d sbi=%d swi=%d"
            % (self.issued_primary, self.issued_sbi_secondary, self.issued_swi_secondary),
            "branches            %10d (%d divergent, %d merges)"
            % (self.branches, self.divergent_branches, self.merges),
            "L1                  %d accesses, %.1f%% hits"
            % (self.l1_accesses, 100.0 * self.l1_hit_rate),
            "traffic below L1    %10.0f bytes" % self.dram_bytes,
            "CTAs launched       %10d" % self.ctas_launched,
        ]
        return "\n".join(lines)


@dataclass(slots=True)
class DeviceStats:
    """Statistics for one multi-SM device run.

    ``sm_stats`` keeps the per-SM :class:`Stats` (each with its own
    retire cycle); the ``total`` property aggregates them under the
    device-level cycle count, so ``DeviceStats.ipc`` is whole-device
    thread instructions per cycle.
    """

    cycles: int = 0
    sm_stats: List[Stats] = field(default_factory=list)

    # Shared memory system (zero when the L2 is disabled).
    l2_accesses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l2_sector_fills: int = 0
    dram_bytes: float = 0.0

    @property
    def sm_count(self) -> int:
        return len(self.sm_stats)

    @property
    def total(self) -> Stats:
        """All SM counters summed, under the device cycle count."""
        merged = Stats()
        for s in self.sm_stats:
            merged.merge(s)
        merged.cycles = self.cycles
        return merged

    @property
    def thread_instructions(self) -> int:
        return sum(s.thread_instructions for s in self.sm_stats)

    @property
    def instructions_issued(self) -> int:
        return sum(s.instructions_issued for s in self.sm_stats)

    @property
    def ctas_launched(self) -> int:
        return sum(s.ctas_launched for s in self.sm_stats)

    @property
    def ipc(self) -> float:
        """Device thread instructions per cycle (Figure-7 metric x N)."""
        return self.thread_instructions / self.cycles if self.cycles else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["sm_stats"] = [s.to_dict() for s in self.sm_stats]
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "DeviceStats":
        data = dict(data)
        data["sm_stats"] = [Stats.from_dict(s) for s in data.get("sm_stats", [])]
        return cls(**data)

    def summary(self) -> str:
        lines = [
            "SMs                 %10d" % self.sm_count,
            "device cycles       %10d" % self.cycles,
            "thread instructions %10d" % self.thread_instructions,
            "device IPC          %10.2f" % self.ipc,
            "CTAs launched       %10d (%s per SM)"
            % (
                self.ctas_launched,
                "/".join(str(s.ctas_launched) for s in self.sm_stats),
            ),
            "L2                  %d accesses, %.1f%% hits"
            % (self.l2_accesses, 100.0 * self.l2_hit_rate),
            "DRAM traffic        %10.0f bytes" % self.dram_bytes,
        ]
        return "\n".join(lines)
