"""Run statistics.

``thread_instructions / cycles`` is the IPC metric of paper Figure 7
(thread instructions per cycle on the SM).  Issue-slot counters split
by origin (primary, SBI secondary, SWI secondary) support Figure 8a's
instruction-issue accounting, and the memory counters feed sanity
checks in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Stats:
    """Counters for one simulation run."""

    cycles: int = 0
    busy_cycles: int = 0

    # Instruction accounting.
    instructions_issued: int = 0
    thread_instructions: int = 0
    issued_primary: int = 0
    issued_sbi_secondary: int = 0
    issued_swi_secondary: int = 0
    per_op_class: Dict[str, int] = field(default_factory=dict)

    # Control flow.
    branches: int = 0
    divergent_branches: int = 0
    merges: int = 0
    max_live_splits: int = 0
    sync_suspensions: int = 0

    # SWI scheduler.
    swi_lookups: int = 0
    swi_hits: int = 0
    scheduler_conflicts: int = 0

    # Memory system.
    l1_accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    dram_bytes: float = 0.0
    global_transactions: int = 0
    shared_transactions: int = 0
    memory_replays: int = 0

    # Occupancy.
    ctas_launched: int = 0
    warps_retired: int = 0

    @property
    def ipc(self) -> float:
        """Thread instructions per cycle (the paper's Figure 7 metric)."""
        return self.thread_instructions / self.cycles if self.cycles else 0.0

    @property
    def issue_ipc(self) -> float:
        """Instruction issues per cycle (front-end utilisation)."""
        return self.instructions_issued / self.cycles if self.cycles else 0.0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def avg_active_threads(self) -> float:
        """Mean active threads per issued instruction (SIMD efficiency)."""
        if not self.instructions_issued:
            return 0.0
        return self.thread_instructions / self.instructions_issued

    def record_issue(self, op_class: str, active: int, origin: str) -> None:
        self.instructions_issued += 1
        self.thread_instructions += active
        self.per_op_class[op_class] = self.per_op_class.get(op_class, 0) + active
        if origin == "primary":
            self.issued_primary += 1
        elif origin == "sbi":
            self.issued_sbi_secondary += 1
        elif origin == "swi":
            self.issued_swi_secondary += 1
        else:
            raise ValueError("unknown issue origin %r" % origin)

    def summary(self) -> str:
        lines = [
            "cycles              %10d" % self.cycles,
            "instructions        %10d" % self.instructions_issued,
            "thread instructions %10d" % self.thread_instructions,
            "IPC                 %10.2f" % self.ipc,
            "issue IPC           %10.3f" % self.issue_ipc,
            "avg active threads  %10.2f" % self.avg_active_threads,
            "issue slots         primary=%d sbi=%d swi=%d"
            % (self.issued_primary, self.issued_sbi_secondary, self.issued_swi_secondary),
            "branches            %10d (%d divergent, %d merges)"
            % (self.branches, self.divergent_branches, self.merges),
            "L1                  %d accesses, %.1f%% hits"
            % (self.l1_accesses, 100.0 * self.l1_hit_rate),
            "DRAM traffic        %10.0f bytes" % self.dram_bytes,
            "CTAs launched       %10d" % self.ctas_launched,
        ]
        return "\n".join(lines)
