"""Instruction buffers and the fetch/decode engine.

Each warp owns a small pool of instruction-buffer entries (one per hot
context: one in the baseline, two for SBI's dual front-end).  Entries
are *tagged by PC*, not bound to a context slot: when the HCT sorter
swaps the primary and secondary contexts (their PCs cross, which
happens constantly around loop back edges), the buffered instructions
remain valid for whichever slot the split now occupies — exactly like
a real per-warp instruction buffer indexed by warp id.

The fetch engine refills up to ``fetch_width`` unmatched entries per
cycle (the baseline's two fetch-decode units, Figure 1), round-robin
over warps.  A fetched instruction decodes in one cycle
(``ready_at = fetch + 1``).  Branch redirects gate fetch through
``Split.redirect_ready_at``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.timing.divergence import Split


@dataclass
class IBufEntry:
    """One decoded instruction waiting in a warp's buffer pool."""

    pc: int
    instr: Instruction
    fetch_cycle: int
    ready_at: int
    index: int  # position in the warp's buffer pool


class FetchEngine:
    """Shared fetch/decode bandwidth across all warps."""

    def __init__(self, program, fetch_width: int, hot_capacity: int) -> None:
        self.program = program
        self.fetch_width = fetch_width
        self.hot_capacity = hot_capacity
        self.buffers: Dict[Tuple[int, int], Optional[IBufEntry]] = {}
        self._rr = 0

    # ------------------------------------------------------------------

    def entry_for(self, wid: int, split: Split, now: int) -> Optional[IBufEntry]:
        """A decoded entry whose tag matches the split's PC, if any."""
        for index in range(self.hot_capacity):
            entry = self.buffers.get((wid, index))
            if entry is not None and entry.pc == split.pc and entry.ready_at <= now:
                return entry
        return None

    def consume(self, wid: int, entry: IBufEntry) -> None:
        key = (wid, entry.index)
        if self.buffers.get(key) is entry:
            self.buffers[key] = None

    def flush_warp(self, wid: int) -> None:
        for index in range(self.hot_capacity):
            self.buffers[(wid, index)] = None

    # ------------------------------------------------------------------

    def _refill_one(self, warp, hot_pcs: List[int], now: int) -> bool:
        """Fetch the first hot split lacking a matching buffer entry."""
        wid = warp.wid
        entries = [self.buffers.get((wid, i)) for i in range(self.hot_capacity)]
        tags = [e.pc for e in entries if e is not None]
        for split in warp.model.hot_splits(now)[: self.hot_capacity]:
            if split.parked or split.pending:
                continue
            if split.redirect_ready_at > now:
                continue
            if split.pc in tags:
                continue
            # Victim: an empty way, else a way whose tag matches no hot PC.
            victim = None
            for i, entry in enumerate(entries):
                if entry is None:
                    victim = i
                    break
            if victim is None:
                for i, entry in enumerate(entries):
                    if entry.pc not in hot_pcs:
                        victim = i
                        break
            if victim is None:
                continue
            self.buffers[(wid, victim)] = IBufEntry(
                pc=split.pc,
                instr=self.program[split.pc],
                fetch_cycle=now,
                ready_at=now + 1,
                index=victim,
            )
            return True
        return False

    def tick(self, now: int, warps: List) -> int:
        """Refill unmatched buffers; returns the number of fetches."""
        if not warps:
            return 0
        fetched = 0
        n = len(warps)
        start = self._rr % n
        for i in range(n):
            if fetched >= self.fetch_width:
                break
            warp = warps[(start + i) % n]
            if warp is None or warp.done:
                continue
            hot_pcs = [
                s.pc for s in warp.model.hot_splits(now)[: self.hot_capacity]
            ]
            while fetched < self.fetch_width and self._refill_one(warp, hot_pcs, now):
                fetched += 1
        self._rr += 1
        return fetched

    def next_ready_after(self, now: int) -> Optional[int]:
        """Earliest future decode-ready time (event skipping)."""
        times = [
            e.ready_at
            for e in self.buffers.values()
            if e is not None and e.ready_at > now
        ]
        return min(times) if times else None
