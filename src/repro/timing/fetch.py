"""Instruction buffers and the fetch/decode engine.

Each warp owns a small pool of instruction-buffer entries (one per hot
context: one in the baseline, two for SBI's dual front-end).  Entries
are *tagged by PC*, not bound to a context slot: when the HCT sorter
swaps the primary and secondary contexts (their PCs cross, which
happens constantly around loop back edges), the buffered instructions
remain valid for whichever slot the split now occupies — exactly like
a real per-warp instruction buffer indexed by warp id.

The fetch engine refills up to ``fetch_width`` unmatched entries per
cycle (the baseline's two fetch-decode units, Figure 1), round-robin
over warps.  A fetched instruction decodes in one cycle
(``ready_at = fetch + 1``).  Branch redirects gate fetch through
``Split.redirect_ready_at``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.isa.instructions import Instruction
from repro.timing.divergence import Split

#: Retry sentinel: fetch idle until invalidated (consume / mutation).
_NEVER = 1 << 62


@dataclass(slots=True)
class IBufEntry:
    """One decoded instruction waiting in a warp's buffer pool."""

    pc: int
    instr: Instruction
    fetch_cycle: int
    ready_at: int
    index: int  # position in the warp's buffer pool


class FetchEngine:
    """Shared fetch/decode bandwidth across all warps.

    Buffers are per-warp lists indexed by way (``buffers[wid][way]``),
    which keeps the hot ``entry_for`` lookup a couple of list probes.
    """

    __slots__ = (
        "program",
        "fetch_width",
        "hot_capacity",
        "buffers",
        "_rr",
        "_latest_ready",
        "_sleep_until",
    )

    def __init__(self, program, fetch_width: int, hot_capacity: int) -> None:
        self.program = program
        self.fetch_width = fetch_width
        self.hot_capacity = hot_capacity
        self.buffers: Dict[int, List[Optional[IBufEntry]]] = {}
        self._rr = 0
        # Decode-ready high-water mark: nothing in any buffer becomes
        # ready after this cycle, so idle scans can bail immediately.
        self._latest_ready = -1
        # Engine-wide sleep: a full scan that fetched nothing proves no
        # warp can fetch before the earliest of their stall cycles.
        # Any stall-clearing site (consume, model change, CTA launch)
        # must zero this along with the per-warp stall.
        self._sleep_until = 0

    # ------------------------------------------------------------------

    def ways_for(self, wid: int) -> List[Optional[IBufEntry]]:
        """The warp's buffer ways (created on first use); the SM binds
        this list onto the TimingWarp so hot paths skip the dict."""
        ways = self.buffers.get(wid)
        if ways is None:
            ways = self.buffers[wid] = [None] * self.hot_capacity
        return ways

    def entry_for(self, wid: int, split: Split, now: int) -> Optional[IBufEntry]:
        """A decoded entry whose tag matches the split's PC, if any."""
        ways = self.buffers.get(wid)
        if ways is None:
            return None
        pc = split.pc
        for entry in ways:
            if entry is not None and entry.pc == pc and entry.ready_at <= now:
                return entry
        return None

    def consume(self, wid: int, entry: IBufEntry) -> None:
        ways = self.buffers.get(wid)
        if ways is not None and ways[entry.index] is entry:
            ways[entry.index] = None

    def flush_warp(self, wid: int) -> None:
        ways = self.buffers.get(wid)
        if ways is not None:
            for i in range(self.hot_capacity):
                ways[i] = None

    # ------------------------------------------------------------------

    def tick(self, now: int, warps: List) -> int:
        """Refill unmatched buffers; returns the number of fetches.

        One pass per warp: each eligible hot split lacking a matching
        tag fetches into an empty way, else into a way whose tag
        matches no hot PC (exactly the repeated first-unmatched scan
        of the original engine, without re-walking served splits).
        """
        if not warps:
            return 0
        if now < self._sleep_until:
            # Proven idle: a prior full scan left every warp stalled
            # past this cycle and nothing cleared a stall since.  A
            # real scan would skip every warp and write nothing, so
            # only the round-robin pointer needs to advance.
            self._rr += 1
            return 0
        fetched = 0
        n = len(warps)
        start = self._rr % n
        cap = self.hot_capacity
        width = self.fetch_width
        program = self.program
        sleep = _NEVER
        scanning = True
        for lo, hi in ((start, n), (0, start)):
            if not scanning:
                break
            for j in range(lo, hi):
                if fetched >= width:
                    # Bandwidth exhausted before the scan finished:
                    # unvisited warps leave no idle verdict.
                    sleep = 0
                    scanning = False
                    break
                warp = warps[j]
                # Fetch-stall fast path: nothing to fetch for this warp
                # until a model change (cleared via the on_change hook),
                # an entry consume (cleared by the SM), or the recorded
                # redirect-gate / settle-wake cycle.
                stall = warp.fetch_stall
                if now < stall:
                    if stall < sleep:
                        sleep = stall
                    continue
                if warp.done:
                    continue
                model = warp.model
                hot = model._hot_cache
                if hot is None:
                    hot = model.hot_splits(now)
                if len(hot) > cap:
                    hot = hot[:cap]
                ways = warp.ibuf or self.ways_for(warp.wid)
                hot_pcs = None
                fetched_here = False
                retry = _NEVER
                for split in hot:
                    if fetched >= width:
                        # Out of bandwidth mid-warp: no idle verdict.
                        retry = None
                        break
                    if split.parked or split.pending:
                        continue
                    gate = split.redirect_ready_at
                    if gate > now:
                        if retry is not None and gate < retry:
                            retry = gate
                        continue
                    pc = split.pc
                    matched = False
                    for entry in ways:
                        if entry is not None and entry.pc == pc:
                            matched = True
                            break
                    if matched:
                        continue
                    # Victim: empty way, else a way matching no hot PC.
                    victim = None
                    for vi, entry in enumerate(ways):
                        if entry is None:
                            victim = vi
                            break
                    if victim is None:
                        if hot_pcs is None:
                            hot_pcs = [s.pc for s in hot]
                        for vi, entry in enumerate(ways):
                            if entry.pc not in hot_pcs:
                                victim = vi
                                break
                    if victim is None:
                        continue
                    ways[victim] = IBufEntry(
                        pc=pc,
                        instr=program[pc],
                        fetch_cycle=now,
                        ready_at=now + 1,
                        index=victim,
                    )
                    # A fill wakes the scheduler's stall memos.
                    warp.stall0 = 0
                    warp.stall1 = 0
                    fetched += 1
                    fetched_here = True
                if fetched_here or retry is None:
                    warp.fetch_stall = 0
                    sleep = 0
                else:
                    wake = model._settle_wake
                    stall = retry if retry < wake else wake
                    warp.fetch_stall = stall
                    if stall < sleep:
                        sleep = stall
        if fetched:
            if now + 1 > self._latest_ready:
                self._latest_ready = now + 1
            self._sleep_until = 0
        else:
            self._sleep_until = sleep
        self._rr += 1
        return fetched

    def next_ready_after(self, now: int) -> Optional[int]:
        """Earliest future decode-ready time (event skipping).

        O(1): every entry decodes one cycle after its fetch and fetch
        cycles never exceed the driver's (non-decreasing) ``now``, so
        the only possible *future* ready time is the high-water mark —
        held exactly when the latest fetch happened this cycle.
        """
        latest = self._latest_ready
        return latest if latest > now else None
