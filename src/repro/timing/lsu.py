"""Load-store unit: coalescing, replay, bank conflicts, atomics.

The LSU owns a single 128-byte port to the L1 (paper section 2).  A
memory instruction is broken into *transactions*:

* **global**: one per distinct 128 B block touched by active threads
  (perfect intra-warp coalescing).  Additional transactions replay on
  subsequent cycles, occupying the port — this is the paper's
  "memory instructions that encounter conflicts are replayed with an
  updated activity mask".
* **shared**: one per maximal conflict-free bank access; threads
  reading the same word broadcast for free, distinct words in the same
  bank serialise (32 banks).
* **atomics**: serialise per active thread (Fermi-era behaviour);
  global atomics additionally fetch their blocks through the L1 and
  spend write-through bandwidth.

Coalescing operates on *thread-space* addresses, so lane shuffling
(which permutes threads to physical lanes) never changes transaction
counts — one of the paper's arguments for shuffling over dynamic warp
formation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.functional.executor import ExecOutcome
from repro.isa.instructions import Instruction, MemSpace, Op
from repro.timing.cache import L1Cache
from repro.timing.dram import DRAMChannel
from repro.timing.masks import bools_to_indices
from repro.timing.stats import Stats


class LoadStoreUnit:
    """Transaction generation and timing for one memory instruction.

    ``dram`` is anything with the channel interface — a private
    :class:`DRAMChannel` (the paper's single-SM model) or a shared
    :class:`repro.timing.l2.L2System` injected by the device layer.
    """

    __slots__ = ("config", "cache", "dram", "stats", "_pending_fills")

    def __init__(self, config, cache: L1Cache, dram: DRAMChannel, stats: Stats) -> None:
        self.config = config
        self.cache = cache
        self.dram = dram
        self.stats = stats
        # MSHR merge table: block address -> fill-complete cycle.
        self._pending_fills: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def access(self, instr: Instruction, outcome: ExecOutcome, now: int) -> Tuple[int, int]:
        """Process a memory instruction issued at ``now``.

        Returns ``(occupancy_cycles, writeback_cycle)``: the number of
        cycles the LSU port is held (1 + replays) and the cycle the
        result is architecturally complete (scoreboard release for
        loads/atomics; port drain for stores).
        """
        addrs = outcome.addresses[bools_to_indices(outcome.active)]
        if addrs.size == 0:
            return 1, now + self.config.l1_latency
        if outcome.space is MemSpace.SHARED:
            return self._shared(instr, addrs, now)
        return self._global(instr, addrs, now)

    # ------------------------------------------------------------------
    # Shared memory
    # ------------------------------------------------------------------

    def _shared_conflicts(self, addrs: np.ndarray, serialize_all: bool) -> int:
        # Loads/stores broadcast identical words for free, so distinct
        # addresses per bank count; atomics serialise every access.
        # (Addresses are word-aligned here — the functional access
        # already succeeded — so distinct address == distinct word.)
        if not serialize_all:
            addrs = np.unique(addrs)
        banks = (addrs // 4) % self.config.shared_banks
        return max(1, int(np.bincount(banks).max()))

    def _shared(self, instr: Instruction, addrs: np.ndarray, now: int) -> Tuple[int, int]:
        serialize_all = instr.op not in (Op.LD, Op.ST)
        transactions = self._shared_conflicts(addrs, serialize_all)
        self.stats.shared_transactions += transactions
        self.stats.memory_replays += transactions - 1
        wb = now + transactions - 1 + self.config.shared_latency
        return transactions, wb

    # ------------------------------------------------------------------
    # Global memory
    # ------------------------------------------------------------------

    def _blocks_of(self, addrs: np.ndarray) -> List[int]:
        # sorted(set(...)) beats np.unique at warp-sized inputs, and
        # the block walk below wants plain ints anyway.
        return sorted(set((addrs // self.config.l1_block).tolist()))

    def _fetch_block(self, block: int, at: int) -> int:
        """Read one block through L1/MSHR/DRAM; returns data-ready cycle."""
        self.stats.l1_accesses += 1
        ready = self.cache.lookup(block * self.config.l1_block)
        if ready is not None:
            self.stats.l1_hits += 1
            return max(at + self.config.l1_latency, ready)
        self.stats.l1_misses += 1
        pending = self._pending_fills.get(block)
        if pending is not None and pending > at:
            return pending  # MSHR merge with an in-flight fill
        block_addr = block * self.config.l1_block
        fill = self.dram.request(self.config.l1_block, at, block_addr)
        self.stats.dram_bytes += self.config.l1_block
        self._pending_fills[block] = fill
        self.cache.fill(block_addr, fill)
        return fill

    def _store_traffic(self, addrs: np.ndarray, at: int) -> None:
        seg_bytes = self.config.store_segment
        segments = sorted(set((addrs // seg_bytes).tolist()))
        self.dram.post_write_segments(segments, seg_bytes, at)
        self.stats.dram_bytes += len(segments) * seg_bytes

    def _global(self, instr: Instruction, addrs: np.ndarray, now: int) -> Tuple[int, int]:
        if instr.op is Op.LD:
            blocks = self._blocks_of(addrs)
            occupancy = len(blocks)
            wb = now
            for i, block in enumerate(blocks):
                wb = max(wb, self._fetch_block(block, now + i))
            self.stats.global_transactions += occupancy
            self.stats.memory_replays += occupancy - 1
            return occupancy, wb
        if instr.op is Op.ST:
            # One pass over the sorted unique segment ids replaces the
            # per-block boolean rescan of ``addrs``: the store segment
            # divides the L1 block, so consecutive runs of equal
            # ``segment -> block`` ids are exactly the per-block chunks
            # the scalar walk produced (same order, same segments).
            seg_bytes = self.config.store_segment
            segs = np.unique(addrs // seg_bytes)
            seg_blocks = segs * seg_bytes // self.config.l1_block
            starts = np.concatenate(
                ([0], np.flatnonzero(seg_blocks[1:] != seg_blocks[:-1]) + 1)
            )
            ends = np.append(starts[1:], segs.size)
            occupancy = int(starts.size)
            for i in range(occupancy):
                segments = segs[starts[i] : ends[i]].tolist()
                self.dram.post_write_segments(segments, seg_bytes, now + i)
                self.stats.dram_bytes += len(segments) * seg_bytes
            self.stats.global_transactions += occupancy
            self.stats.memory_replays += occupancy - 1
            return occupancy, now + occupancy - 1 + 1
        # Atomics: fetch each block once, then serialise one thread/cycle.
        blocks = self._blocks_of(addrs)
        occupancy = int(addrs.size)
        data_ready = now
        for i, block in enumerate(blocks):
            data_ready = max(data_ready, self._fetch_block(block, now + i))
        self._store_traffic(addrs, now)
        self.stats.global_transactions += occupancy
        self.stats.memory_replays += occupancy - 1
        wb = max(data_ready, now + occupancy - 1) + 1
        return occupancy, wb
