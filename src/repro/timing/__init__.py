"""Cycle-level timing substrate of the Fermi-like SM.

Modules
-------
``config``      SM configuration (paper Table 2 parameters).
``stats``       Cycle/instruction statistics collected per run.
``masks``       Bit-mask helpers (thread and lane space).
``lanes``       Lane-shuffling policies (paper Table 1).
``units``       SIMD execution groups with wave occupancy.
``cache``       L1 data cache (48 KB, 6-way, 128 B blocks).
``l2``          Shared device L2: sectored, set-associative, address-
                partitioned across per-partition DRAM channels.
``dram``        Throughput-limited constant-latency memory.
``lsu``         Load-store unit: coalescing, replay, bank conflicts.
``scoreboard``  Warp-granular / exact-mask / dependency-matrix scoreboards.
``divergence``  Warp-split structure and the three reconvergence models
                (IPDOM stack, thread frontier, SBI HCT+CCT heap).
``fetch``       Instruction buffers and the fetch/decode engine.
"""

from repro.timing.config import GPUConfig, SMConfig
from repro.timing.stats import DeviceStats, Stats

__all__ = ["DeviceStats", "GPUConfig", "SMConfig", "Stats"]
