"""SIMD execution groups (paper Figure 1 / Figure 3 back end).

The baseline SM has four groups: two 32-lane MAD groups, one 8-lane
SFU group and one 32-lane LSU.  The 64-wide configurations fuse the
MAD lanes into a single 64-lane group (Figure 3).  A warp instruction
whose width exceeds the group width streams through in *waves*; the
group cannot accept another instruction until its waves drain
(initiation interval = wave count).

Co-issue (the heart of SBI/SWI): up to two instructions may be accepted
by the *same* group in the same cycle when their lane masks are
disjoint — per-lane multiplexers pick instruction I1 or I2 from the
dual broadcast network.  The occupancy is then computed on the union
mask.  The LSU is transaction-serial, so co-issued memory instructions
add their transaction counts instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.instructions import OpClass
from repro.timing.masks import wave_count


@dataclass(slots=True)
class ExecGroup:
    """One SIMD unit group with an issue port."""

    name: str
    kind: OpClass
    width: int
    warp_width: int
    free_at: int = 0
    # Per-cycle co-issue bookkeeping.
    cycle: int = -1
    lane_mask: int = 0
    issue_count: int = 0
    busy_until_samples: int = 0

    def _roll(self, now: int) -> None:
        if self.cycle != now:
            self.cycle = now
            self.lane_mask = 0
            self.issue_count = 0

    # ------------------------------------------------------------------

    def can_accept(self, now: int, lane_mask: int, co_issue: bool) -> bool:
        """Can an instruction with ``lane_mask`` issue here this cycle?

        ``co_issue=True`` permits sharing with one instruction already
        accepted this cycle, provided masks are disjoint (dual
        broadcast limit: two instructions per group per cycle).
        """
        self._roll(now)
        if self.issue_count == 0:
            return self.free_at <= now
        if not co_issue or self.issue_count >= 2:
            return False
        return (self.lane_mask & lane_mask) == 0

    def accept(self, now: int, lane_mask: int) -> int:
        """Issue an instruction; returns its wave count.

        Occupancy is recomputed on the union mask so that a co-issued
        pair costs ``waves(m1 | m2)`` (MAD/SFU) — the LSU overrides
        this with transaction counts via :meth:`hold`.
        """
        self._roll(now)
        if self.issue_count >= 2:
            raise RuntimeError("more than two instructions on group %s" % self.name)
        if self.issue_count and (self.lane_mask & lane_mask):
            raise RuntimeError("overlapping co-issue on group %s" % self.name)
        self.lane_mask |= lane_mask
        self.issue_count += 1
        if self.width >= self.warp_width:
            # Full-width unit: any mask is a single wave.
            if self.free_at < now + 1:
                self.free_at = now + 1
            return 1
        waves = wave_count(self.lane_mask, self.width, self.warp_width)
        self.free_at = max(self.free_at, now + waves)
        return wave_count(lane_mask, self.width, self.warp_width)

    def hold(self, until: int) -> None:
        """Extend the busy window (LSU transaction replay)."""
        self.free_at = max(self.free_at, until)


class Backend:
    """The SM's set of execution groups, with issue routing."""

    __slots__ = (
        "config",
        "groups",
        "lsu",
        "sfu",
        "_mad_route",
        "_sfu_route",
        "_lsu_route",
    )

    def __init__(self, config) -> None:
        self.config = config
        self.groups: List[ExecGroup] = []
        for i in range(config.mad_group_count):
            self.groups.append(
                ExecGroup("MAD%d" % i, OpClass.MAD, config.warp_width, config.warp_width)
            )
        self.groups.append(
            ExecGroup("SFU", OpClass.SFU, config.sfu_width, config.warp_width)
        )
        self.groups.append(
            ExecGroup("LSU", OpClass.LSU, config.lsu_width, config.warp_width)
        )
        self.lsu = self.groups[-1]
        self.sfu = self.groups[-2]
        # Issue routing is static: resolve it once (CTRL rides MAD).
        # Identity-chained rather than dict-keyed: enum hashing showed
        # up in profiles at two lookups per issue.
        self._mad_route = [g for g in self.groups if g.kind is OpClass.MAD]
        self._sfu_route = [self.sfu]
        self._lsu_route = [self.lsu]

    def candidates(self, op_class: OpClass) -> List[ExecGroup]:
        """Groups an op class can issue to (CTRL rides the MAD groups)."""
        if op_class is OpClass.SFU:
            return self._sfu_route
        if op_class is OpClass.LSU:
            return self._lsu_route
        return self._mad_route

    def pick_group(
        self, op_class: OpClass, now: int, lane_mask: int, co_issue: bool
    ) -> Optional[ExecGroup]:
        """First group that can accept the instruction this cycle.

        Prefers a completely free group before co-issue sharing, which
        both maximises throughput and keeps baseline (no co-issue)
        behaviour natural.  (``can_accept``'s checks are inlined: this
        is the single hottest backend query.)
        """
        if op_class is OpClass.SFU:
            options = self._sfu_route
        elif op_class is OpClass.LSU:
            options = self._lsu_route
        else:
            options = self._mad_route
        for group in options:
            if group.cycle != now:
                group.cycle = now
                group.lane_mask = 0
                group.issue_count = 0
            if group.issue_count == 0 and group.free_at <= now:
                return group
        if co_issue:
            for group in options:
                # Rolled above; share with one accepted instruction on
                # disjoint lanes (dual broadcast limit).
                if 0 < group.issue_count < 2 and not (group.lane_mask & lane_mask):
                    return group
        return None

    def next_free_cycle(self, now: int) -> Optional[int]:
        """Earliest future cycle any busy group frees (event skipping)."""
        future = [g.free_at for g in self.groups if g.free_at > now]
        return min(future) if future else None
