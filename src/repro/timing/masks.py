"""Bit-mask helpers.

Activity masks are Python integers with one bit per thread of a warp
(bit ``i`` = thread ``i`` in *thread* space).  Lane-space masks are the
same integers after the per-warp lane-shuffle permutation
(:mod:`repro.timing.lanes`).  Warp widths up to 64 keep these in a
single machine word.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

#: Interning caps: conversion memos are cleared (not disabled) past
#: this many entries, bounding memory on adversarial mask streams.
_MEMO_LIMIT = 1 << 16


def full_mask(width: int) -> int:
    """Mask with the low ``width`` bits set."""
    return (1 << width) - 1


def popcount(mask: int) -> int:
    return mask.bit_count()


def bits(mask: int) -> Iterator[int]:
    """Indices of the set bits, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


#: Interned ``(mask, width) -> bool[width]`` expansions.  The arrays
#: are shared across every call site, so they are marked read-only;
#: identity of the full-warp array doubles as an "all active" test in
#: the compiled executor.
_BOOLS_MEMO: Dict[Tuple[int, int], np.ndarray] = {}


def mask_to_bools(mask: int, width: int) -> np.ndarray:
    """Expand to a ``bool[width]`` numpy array (thread order).

    Results are interned per ``(mask, width)`` and read-only: the hot
    path converts the same few masks over and over, so the expansion
    loop runs once per distinct mask instead of once per issue.
    """
    key = (mask, width)
    out = _BOOLS_MEMO.get(key)
    if out is None:
        if len(_BOOLS_MEMO) >= _MEMO_LIMIT:
            _BOOLS_MEMO.clear()
        out = np.zeros(width, dtype=bool)
        for i in bits(mask):
            out[i] = True
        out.setflags(write=False)
        _BOOLS_MEMO[key] = out
    return out


#: Interned ``flatnonzero`` results keyed by the identity of an
#: interned (read-only) bool array; holding the array in the value
#: keeps its ``id`` stable for the lifetime of the entry.  Writable
#: arrays (fresh predicated masks) are never memoized.
_INDICES_MEMO: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def bools_to_indices(active: np.ndarray) -> np.ndarray:
    """Indices of the True lanes (ascending), as an index array.

    Index-array gathers/scatters are ~2x cheaper than boolean fancy
    indexing at warp sizes, and for the interned masks from
    :func:`mask_to_bools` the ``flatnonzero`` runs once per distinct
    mask instead of once per issue.
    """
    # Identity-keyed on purpose: only read-only *interned* arrays are
    # stored, the hit path re-checks `is`, and the memo never leaves
    # this process — addresses cannot reach any simulated state.
    key = id(active)  # repro-lint: disable=id-keyed-dict
    hit = _INDICES_MEMO.get(key)
    if hit is not None and hit[0] is active:
        return hit[1]
    idx = np.flatnonzero(active)
    if not active.flags.writeable:
        if len(_INDICES_MEMO) >= _MEMO_LIMIT:
            _INDICES_MEMO.clear()
        idx.setflags(write=False)
        _INDICES_MEMO[key] = (active, idx)
    return idx


def bools_to_mask(values: Sequence[bool]) -> int:
    arr = np.asarray(values, dtype=bool)
    if arr.size == 0:
        return 0
    return int.from_bytes(
        np.packbits(arr, bitorder="little").tobytes(), "little"
    )


def permute_mask(mask: int, perm: Sequence[int]) -> int:
    """Map thread-space bits through ``perm`` (thread -> lane)."""
    out = 0
    for i in bits(mask):
        out |= 1 << perm[i]
    return out


#: Memoized wave counts (two lookups per issued instruction).
_WAVES_MEMO: Dict[Tuple[int, int, int], int] = {}


def wave_count(lane_mask: int, group_width: int, warp_width: int) -> int:
    """Pipeline waves a lane mask occupies on a ``group_width``-wide unit.

    Lanes stream through the unit in chunks of ``group_width``
    consecutive lane positions; chunks with no active lane are skipped.
    An empty mask still costs one wave (the instruction occupies the
    issue port).
    """
    if group_width >= warp_width:
        return 1
    key = (lane_mask, group_width, warp_width)
    waves = _WAVES_MEMO.get(key)
    if waves is None:
        if len(_WAVES_MEMO) >= _MEMO_LIMIT:
            _WAVES_MEMO.clear()
        chunk_mask = full_mask(group_width)
        waves = 0
        for base in range(0, warp_width, group_width):
            if (lane_mask >> base) & chunk_mask:
                waves += 1
        waves = max(waves, 1)
        _WAVES_MEMO[key] = waves
    return waves


def mask_str(mask: int, width: int) -> str:
    """Visual mask, thread 0 leftmost: ``'X..X'``."""
    return "".join("X" if mask & (1 << i) else "." for i in range(width))


def split_masks_disjoint(masks: List[int]) -> bool:
    seen = 0
    for m in masks:
        if seen & m:
            return False
        seen |= m
    return True
