"""Bit-mask helpers.

Activity masks are Python integers with one bit per thread of a warp
(bit ``i`` = thread ``i`` in *thread* space).  Lane-space masks are the
same integers after the per-warp lane-shuffle permutation
(:mod:`repro.timing.lanes`).  Warp widths up to 64 keep these in a
single machine word.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np


def full_mask(width: int) -> int:
    """Mask with the low ``width`` bits set."""
    return (1 << width) - 1


def popcount(mask: int) -> int:
    return mask.bit_count()


def bits(mask: int) -> Iterator[int]:
    """Indices of the set bits, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_to_bools(mask: int, width: int) -> np.ndarray:
    """Expand to a ``bool[width]`` numpy array (thread order)."""
    out = np.zeros(width, dtype=bool)
    for i in bits(mask):
        out[i] = True
    return out


def bools_to_mask(values: Sequence[bool]) -> int:
    mask = 0
    for i, v in enumerate(values):
        if v:
            mask |= 1 << i
    return mask


def permute_mask(mask: int, perm: Sequence[int]) -> int:
    """Map thread-space bits through ``perm`` (thread -> lane)."""
    out = 0
    for i in bits(mask):
        out |= 1 << perm[i]
    return out


def wave_count(lane_mask: int, group_width: int, warp_width: int) -> int:
    """Pipeline waves a lane mask occupies on a ``group_width``-wide unit.

    Lanes stream through the unit in chunks of ``group_width``
    consecutive lane positions; chunks with no active lane are skipped.
    An empty mask still costs one wave (the instruction occupies the
    issue port).
    """
    if group_width >= warp_width:
        return 1
    chunk_mask = full_mask(group_width)
    waves = 0
    for base in range(0, warp_width, group_width):
        if (lane_mask >> base) & chunk_mask:
            waves += 1
    return max(waves, 1)


def mask_str(mask: int, width: int) -> str:
    """Visual mask, thread 0 leftmost: ``'X..X'``."""
    return "".join("X" if mask & (1 << i) else "." for i in range(width))


def split_masks_disjoint(masks: List[int]) -> bool:
    seen = 0
    for m in masks:
        if seen & m:
            return False
        seen |= m
    return True
