"""SM configuration — the knobs of paper Table 2 plus model options.

A configuration names a scheduler *mode* — an entry of the policy
registry (:data:`repro.core.policy.POLICIES`).  The paper ships five:

``baseline``   Fermi-like: 32 warps x 32 threads, two warp pools
               (even/odd ids) with one scheduler each, IPDOM
               reconvergence stack.
``warp64``     Reference point from Figure 7: thread-frontier
               reconvergence with 64-wide warps, single scheduler.
``sbi``        Simultaneous Branch Interweaving: 64-wide warps, HCT/CCT
               heap, dual front-end issuing CPC1/CPC2 of one warp.
``swi``        Simultaneous Warp Interweaving: 64-wide warps, frontier
               reconvergence, cascaded primary/secondary schedulers
               filling free lanes from other warps.
``sbi_swi``    Both: secondary slot filled by the same warp's CPC2
               when possible, else by another warp (SWI).

and any registered :class:`~repro.core.policy.PolicySpec` name — or
the spec itself — is equally valid: ``mode`` stays a plain string
after construction, so cache keys for the paper modes are unchanged by
the registry and new policies key cleanly by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # import cycle: policy modules configure from here
    from repro.core.policy.spec import PolicySpec

#: The paper's five modes.  Kept for reference and back-compat; the
#: authoritative list is ``repro.core.policy.POLICIES.names()``.
VALID_MODES = ("baseline", "warp64", "sbi", "swi", "sbi_swi")
VALID_SCOREBOARDS = ("warp", "mask", "matrix")
VALID_SHUFFLES = ("identity", "mirror_odd", "mirror_half", "xor", "xor_rev")


class _PolicyCacheBase:
    """Carries the one non-field slot of :class:`SMConfig`.

    ``@dataclass(slots=True)`` builds ``__slots__`` from the fields
    alone; the resolved-policy cache is deliberately *not* a field (it
    must stay out of asdict/config_key/pickle payloads), so its slot
    comes from this base.
    """

    __slots__ = ("_policy",)


@dataclass(slots=True)
class SMConfig(_PolicyCacheBase):
    """All timing parameters of one streaming multiprocessor.

    ``mode`` accepts a registered policy name or a
    :class:`~repro.core.policy.PolicySpec` (normalised to its name);
    the resolved spec is exposed as :attr:`policy`.
    """

    mode: str = "baseline"
    warp_count: int = 32
    warp_width: int = 32

    # Front end (Table 2).
    scheduler_latency: int = 1
    delivery_latency: int = 0
    fetch_width: int = 2
    scoreboard_entries: int = 6
    scoreboard_kind: str = "warp"

    # Back end.
    exec_latency: int = 8
    mad_lanes: int = 64          # total MAD lanes; split into groups of warp_width
    sfu_width: int = 8
    lsu_width: int = 32

    # SBI options.
    sbi_constraints: bool = True
    cct_capacity: int = 8        # cold contexts per warp
    cct_insert_delay: int = 2    # sideband-sorter cycles per insertion

    # SWI options.
    lane_shuffle: str = "identity"
    swi_ways: Optional[int] = None   # None = fully associative lookup

    # Memory system (Table 2).
    l1_size: int = 48 * 1024
    l1_ways: int = 6
    l1_block: int = 128
    l1_latency: int = 3
    shared_latency: int = 3
    shared_banks: int = 32
    dram_bandwidth: float = 10.0     # bytes per cycle (10 GB/s at 1 GHz)
    dram_latency: int = 330          # cycles (330 ns at 1 GHz)
    store_segment: int = 32          # write-through granularity in bytes

    # Launch / control.
    cta_launch_latency: int = 10
    max_cycles: int = 5_000_000
    seed: int = 1

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------

    def validate(self) -> None:
        # Resolve (and normalise) the policy through the registry; an
        # unknown name raises with the registered list.  The spec is
        # cached on the instance — it is not a dataclass field, so
        # asdict/config_key/pickle payloads are exactly as before.
        from repro.core.policy import coerce_policy

        spec = coerce_policy(self.mode)
        self.mode = spec.name
        self._policy = spec
        if self.scoreboard_kind not in VALID_SCOREBOARDS:
            raise ValueError("scoreboard_kind must be one of %s" % (VALID_SCOREBOARDS,))
        if self.lane_shuffle not in VALID_SHUFFLES:
            raise ValueError("lane_shuffle must be one of %s" % (VALID_SHUFFLES,))
        if self.warp_width not in (4, 8, 16, 32, 64):
            raise ValueError("warp_width must be a power of two in [4, 64]")
        if self.mad_lanes % self.warp_width:
            raise ValueError("mad_lanes must be a multiple of warp_width")
        if self.swi_ways is not None and self.swi_ways < 1:
            raise ValueError("swi_ways must be >= 1 (or None for full)")

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def policy(self) -> "PolicySpec":
        """The registered :class:`~repro.core.policy.PolicySpec` of
        :attr:`mode` (re-resolved if ``mode`` was mutated in place)."""
        spec = getattr(self, "_policy", None)
        if spec is None or spec.name != self.mode:
            from repro.core.policy import POLICIES

            spec = POLICIES.get(self.mode)
            self._policy = spec
        return spec

    @property
    def mad_group_count(self) -> int:
        """MAD groups are warp-wide; Fermi-like 2x32 or one 64-wide."""
        return max(1, self.mad_lanes // self.warp_width)

    @property
    def branch_latency(self) -> int:
        """Cycles from branch issue to redirected fetch."""
        return self.scheduler_latency + self.delivery_latency + self.exec_latency

    @property
    def issue_to_writeback(self) -> int:
        """Base latency from issue to scoreboard release (1 wave)."""
        return self.delivery_latency + self.exec_latency

    @property
    def uses_two_pools(self) -> bool:
        return self.policy.two_pools

    @property
    def uses_sbi(self) -> bool:
        return self.policy.uses_sbi

    @property
    def uses_swi(self) -> bool:
        return self.policy.uses_swi

    @property
    def issue_width(self) -> int:
        return self.policy.issue_width

    @property
    def peak_ipc(self) -> float:
        """Thread-instruction retire bound (64 baseline, 104 SBI/SWI)."""
        issue_bound = self.issue_width * self.warp_width
        if not self.policy.unit_bound_peak:
            return float(issue_bound)
        unit_bound = self.mad_lanes + self.sfu_width + self.lsu_width
        return float(min(issue_bound, unit_bound))

    @property
    def total_threads(self) -> int:
        return self.warp_count * self.warp_width

    def replace(self, **kwargs) -> "SMConfig":
        """Copy with overrides (post-init re-validates)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Table-2-style one-liner."""
        return (
            "%s: %dx%d warps, sched %dc, delivery %dc, exec %dc, "
            "L1 %dKB/%d-way/%dB, mem %.0f B/c %dc, shuffle=%s, ways=%s"
            % (
                self.mode,
                self.warp_count,
                self.warp_width,
                self.scheduler_latency,
                self.delivery_latency,
                self.exec_latency,
                self.l1_size // 1024,
                self.l1_ways,
                self.l1_block,
                self.dram_bandwidth,
                self.dram_latency,
                self.lane_shuffle,
                "full" if self.swi_ways is None else self.swi_ways,
            )
        )


@dataclass(slots=True)
class GPUConfig:
    """A whole device: ``sm_count`` SMs behind a shared memory system.

    ``l2_size == 0`` disables the shared L2: each SM then owns a
    private DRAM channel carrying its ``1/sm_count`` share of the
    device bandwidth — with ``sm_count=1`` that is byte-for-byte the
    single-SM model of :func:`repro.core.simulator.simulate`.  With an
    L2, every SM's L1 misses and write-through traffic meet in a
    sectored, set-associative cache that is partitioned by address
    across ``dram_partitions`` independent DRAM channels.
    """

    sm: SMConfig = field(default_factory=SMConfig)
    sm_count: int = 1

    # Shared L2 (disabled by default so the device defaults reproduce
    # the paper's per-SM memory model exactly).
    l2_size: int = 0
    l2_ways: int = 16
    l2_block: int = 128
    l2_sector: int = 32
    l2_latency: int = 30

    # Device DRAM.  ``None`` scales the paper's per-SM share with the
    # SM count (10 B/cycle per SM), keeping per-SM pressure constant.
    dram_partitions: int = 1
    dram_bandwidth: Optional[float] = None
    dram_latency: Optional[int] = None

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------

    def validate(self) -> None:
        if not isinstance(self.sm, SMConfig):
            raise ValueError("sm must be an SMConfig")
        if self.sm_count < 1:
            raise ValueError("sm_count must be >= 1")
        if self.dram_partitions < 1:
            raise ValueError("dram_partitions must be >= 1")
        if self.dram_bandwidth is not None and self.dram_bandwidth <= 0:
            raise ValueError("dram_bandwidth must be positive")
        if self.l2_size < 0:
            raise ValueError("l2_size must be >= 0")
        if self.l2_size:
            if self.l2_ways < 1 or self.l2_block < 1 or self.l2_sector < 1:
                raise ValueError("l2_ways, l2_block and l2_sector must be >= 1")
            if self.l2_block % self.l2_sector:
                raise ValueError("l2_block must be a multiple of l2_sector")
            if self.l2_block % self.sm.l1_block:
                raise ValueError("l2_block must be a multiple of the L1 block")
            if self.l2_size % self.dram_partitions:
                raise ValueError("l2_size must split evenly across partitions")
            slice_size = self.l2_size // self.dram_partitions
            if slice_size % (self.l2_ways * self.l2_block):
                raise ValueError(
                    "per-partition L2 slice must be sets * ways * block"
                )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def uses_l2(self) -> bool:
        return self.l2_size > 0

    @property
    def total_dram_bandwidth(self) -> float:
        """Device bandwidth in bytes/cycle (default: per-SM share x N)."""
        if self.dram_bandwidth is not None:
            return self.dram_bandwidth
        return self.sm.dram_bandwidth * self.sm_count

    @property
    def effective_dram_latency(self) -> int:
        return self.sm.dram_latency if self.dram_latency is None else self.dram_latency

    @property
    def partition_bandwidth(self) -> float:
        """Bytes/cycle on each DRAM partition behind the L2."""
        return self.total_dram_bandwidth / self.dram_partitions

    @property
    def sm_dram_share(self) -> float:
        """Private-channel bandwidth per SM when the L2 is disabled."""
        return self.total_dram_bandwidth / self.sm_count

    @property
    def l2_slice_size(self) -> int:
        """Bytes of L2 owned by one partition."""
        return self.l2_size // self.dram_partitions if self.l2_size else 0

    @property
    def total_threads(self) -> int:
        return self.sm_count * self.sm.total_threads

    def replace(self, **kwargs) -> "GPUConfig":
        """Copy with overrides (post-init re-validates)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        mem = (
            "no L2"
            if not self.uses_l2
            else "L2 %dKB/%d-way/%dB (%dB sectors, %d partitions)"
            % (
                self.l2_size // 1024,
                self.l2_ways,
                self.l2_block,
                self.l2_sector,
                self.dram_partitions,
            )
        )
        return "%d x [%s], %s, dram %.0f B/c %dc" % (
            self.sm_count,
            self.sm.describe(),
            mem,
            self.total_dram_bandwidth,
            self.effective_dram_latency,
        )
