"""SM configuration — the knobs of paper Table 2 plus model options.

A configuration picks one of five scheduler *modes*:

``baseline``   Fermi-like: 32 warps x 32 threads, two warp pools
               (even/odd ids) with one scheduler each, IPDOM
               reconvergence stack.
``warp64``     Reference point from Figure 7: thread-frontier
               reconvergence with 64-wide warps, single scheduler.
``sbi``        Simultaneous Branch Interweaving: 64-wide warps, HCT/CCT
               heap, dual front-end issuing CPC1/CPC2 of one warp.
``swi``        Simultaneous Warp Interweaving: 64-wide warps, frontier
               reconvergence, cascaded primary/secondary schedulers
               filling free lanes from other warps.
``sbi_swi``    Both: secondary slot filled by the same warp's CPC2
               when possible, else by another warp (SWI).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

VALID_MODES = ("baseline", "warp64", "sbi", "swi", "sbi_swi")
VALID_SCOREBOARDS = ("warp", "mask", "matrix")
VALID_SHUFFLES = ("identity", "mirror_odd", "mirror_half", "xor", "xor_rev")


@dataclass
class SMConfig:
    """All timing parameters of one streaming multiprocessor."""

    mode: str = "baseline"
    warp_count: int = 32
    warp_width: int = 32

    # Front end (Table 2).
    scheduler_latency: int = 1
    delivery_latency: int = 0
    fetch_width: int = 2
    scoreboard_entries: int = 6
    scoreboard_kind: str = "warp"

    # Back end.
    exec_latency: int = 8
    mad_lanes: int = 64          # total MAD lanes; split into groups of warp_width
    sfu_width: int = 8
    lsu_width: int = 32

    # SBI options.
    sbi_constraints: bool = True
    cct_capacity: int = 8        # cold contexts per warp
    cct_insert_delay: int = 2    # sideband-sorter cycles per insertion

    # SWI options.
    lane_shuffle: str = "identity"
    swi_ways: Optional[int] = None   # None = fully associative lookup

    # Memory system (Table 2).
    l1_size: int = 48 * 1024
    l1_ways: int = 6
    l1_block: int = 128
    l1_latency: int = 3
    shared_latency: int = 3
    shared_banks: int = 32
    dram_bandwidth: float = 10.0     # bytes per cycle (10 GB/s at 1 GHz)
    dram_latency: int = 330          # cycles (330 ns at 1 GHz)
    store_segment: int = 32          # write-through granularity in bytes

    # Launch / control.
    cta_launch_latency: int = 10
    max_cycles: int = 5_000_000
    seed: int = 1

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------

    def validate(self) -> None:
        if self.mode not in VALID_MODES:
            raise ValueError("mode must be one of %s" % (VALID_MODES,))
        if self.scoreboard_kind not in VALID_SCOREBOARDS:
            raise ValueError("scoreboard_kind must be one of %s" % (VALID_SCOREBOARDS,))
        if self.lane_shuffle not in VALID_SHUFFLES:
            raise ValueError("lane_shuffle must be one of %s" % (VALID_SHUFFLES,))
        if self.warp_width not in (4, 8, 16, 32, 64):
            raise ValueError("warp_width must be a power of two in [4, 64]")
        if self.mad_lanes % self.warp_width:
            raise ValueError("mad_lanes must be a multiple of warp_width")
        if self.swi_ways is not None and self.swi_ways < 1:
            raise ValueError("swi_ways must be >= 1 (or None for full)")

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def mad_group_count(self) -> int:
        """MAD groups are warp-wide; Fermi-like 2x32 or one 64-wide."""
        return max(1, self.mad_lanes // self.warp_width)

    @property
    def branch_latency(self) -> int:
        """Cycles from branch issue to redirected fetch."""
        return self.scheduler_latency + self.delivery_latency + self.exec_latency

    @property
    def issue_to_writeback(self) -> int:
        """Base latency from issue to scoreboard release (1 wave)."""
        return self.delivery_latency + self.exec_latency

    @property
    def uses_two_pools(self) -> bool:
        return self.mode == "baseline"

    @property
    def uses_sbi(self) -> bool:
        return self.mode in ("sbi", "sbi_swi")

    @property
    def uses_swi(self) -> bool:
        return self.mode in ("swi", "sbi_swi")

    @property
    def issue_width(self) -> int:
        return 1 if self.mode == "warp64" else 2

    @property
    def peak_ipc(self) -> float:
        """Thread-instruction retire bound (64 baseline, 104 SBI/SWI)."""
        issue_bound = self.issue_width * self.warp_width
        unit_bound = self.mad_lanes + self.sfu_width + self.lsu_width
        if self.mode in ("baseline", "warp64"):
            return float(min(issue_bound, self.issue_width * self.warp_width))
        return float(min(issue_bound, unit_bound))

    @property
    def total_threads(self) -> int:
        return self.warp_count * self.warp_width

    def replace(self, **kwargs) -> "SMConfig":
        """Copy with overrides (post-init re-validates)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Table-2-style one-liner."""
        return (
            "%s: %dx%d warps, sched %dc, delivery %dc, exec %dc, "
            "L1 %dKB/%d-way/%dB, mem %.0f B/c %dc, shuffle=%s, ways=%s"
            % (
                self.mode,
                self.warp_count,
                self.warp_width,
                self.scheduler_latency,
                self.delivery_latency,
                self.exec_latency,
                self.l1_size // 1024,
                self.l1_ways,
                self.l1_block,
                self.dram_bandwidth,
                self.dram_latency,
                self.lane_shuffle,
                "full" if self.swi_ways is None else self.swi_ways,
            )
        )
