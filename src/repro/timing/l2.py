"""Shared L2 cache: sectored, set-associative, partitioned by address.

The device-level memory system between the per-SM L1s and DRAM.  The
L2 is split into ``dram_partitions`` independent slices, each owning a
private DRAM channel; a request is routed to the slice of its line
address (low-order line-interleaving, as GPUs stripe their L2 across
memory controllers).  Lines are *sectored*: a line allocates tag state
for ``l2_block`` bytes but fills only the ``l2_sector``-byte sectors a
miss actually touches, so sparse access patterns do not pay full-line
fill bandwidth.  Like the L1 it is write-through/no-write-allocate and
therefore always clean — evictions are silent and no inclusion
traffic back to the L1s is modelled.

Timing mirrors :class:`repro.timing.cache.L1Cache`: each sector
records the cycle its fill completes, so a hit under an in-flight fill
waits for the data rather than the tag, and per-sector MSHRs merge
concurrent misses from different SMs into one DRAM transfer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.timing.dram import DRAMChannel


class L2Cache:
    """One partition's sectored set-associative tag/sector store.

    ``interleave`` is the device's partition count: a slice only ever
    sees line indices congruent to its partition id, so the partition
    bits must be stripped before set selection or only
    ``n_sets / interleave`` sets would ever be used.
    """

    __slots__ = (
        "size",
        "ways",
        "block",
        "sector",
        "interleave",
        "sectors_per_line",
        "n_sets",
        "_sets",
        "_use_counter",
        "evictions",
    )

    def __init__(
        self, size: int, ways: int, block: int, sector: int, interleave: int = 1
    ) -> None:
        if block % sector:
            raise ValueError("block must be a multiple of sector")
        if size % (ways * block):
            raise ValueError("cache size must be sets * ways * block")
        if interleave < 1:
            raise ValueError("interleave must be >= 1")
        self.size = size
        self.ways = ways
        self.block = block
        self.sector = sector
        self.interleave = interleave
        self.sectors_per_line = block // sector
        self.n_sets = size // (ways * block)
        # Per set: {line_addr: [last_use, {sector_index: ready_at}]}
        self._sets: List[Dict[int, list]] = [dict() for _ in range(self.n_sets)]
        self._use_counter = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def _set_of(self, line_addr: int) -> Dict[int, list]:
        return self._sets[(line_addr // self.block // self.interleave) % self.n_sets]

    def line_of(self, addr: int) -> int:
        return addr // self.block * self.block

    def sectors_of(self, addr: int, nbytes: int) -> range:
        """Sector indices (within the line) covering [addr, addr+nbytes)."""
        offset = addr - self.line_of(addr)
        first = offset // self.sector
        last = (offset + max(nbytes, 1) - 1) // self.sector
        return range(first, min(last, self.sectors_per_line - 1) + 1)

    def _touch(self, entry: list) -> None:
        self._use_counter += 1
        entry[0] = self._use_counter

    # ------------------------------------------------------------------

    def probe(self, line_addr: int, sectors: range) -> Tuple[Optional[int], List[int]]:
        """Look up ``sectors`` of one line.

        Returns ``(ready_at, missing)``: the latest fill-complete cycle
        over the present sectors (None when the line itself is absent)
        and the list of absent sector indices.  Touches LRU state.
        """
        lines = self._set_of(line_addr)
        entry = lines.get(line_addr)
        if entry is None:
            return None, list(sectors)
        self._touch(entry)
        present = entry[1]
        ready = 0
        missing: List[int] = []
        for s in sectors:
            if s in present:
                ready = max(ready, present[s])
            else:
                missing.append(s)
        return ready, missing

    def fill(self, line_addr: int, sectors: List[int], ready_at: int) -> None:
        """Install sectors whose data arrives at ``ready_at``.

        Allocates the line (evicting the LRU way) if needed; refills of
        a present sector keep the earliest ready time, as a second fill
        can only be a merge of the same DRAM transfer.
        """
        lines = self._set_of(line_addr)
        entry = lines.get(line_addr)
        if entry is None:
            if len(lines) >= self.ways:
                victim = min(lines, key=lambda b: lines[b][0])
                del lines[victim]
                self.evictions += 1
            self._use_counter += 1
            entry = lines[line_addr] = [self._use_counter, {}]
        else:
            self._touch(entry)
        present = entry[1]
        for s in sectors:
            if s in present:
                present[s] = min(present[s], ready_at)
            else:
                present[s] = ready_at

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._set_of(line_addr)

    def invalidate_all(self) -> None:
        for s in self._sets:
            s.clear()


class L2Partition:
    """One L2 slice plus its private DRAM channel and sector MSHRs."""

    __slots__ = (
        "cache",
        "dram",
        "latency",
        "_pending",
        "accesses",
        "hits",
        "misses",
        "sector_fills",
    )

    def __init__(
        self,
        size: int,
        ways: int,
        block: int,
        sector: int,
        latency: int,
        dram: DRAMChannel,
        interleave: int = 1,
    ) -> None:
        self.cache = L2Cache(size, ways, block, sector, interleave)
        self.dram = dram
        self.latency = latency
        # (line_addr, sector_index) -> cycle the in-flight fill lands.
        self._pending: Dict[Tuple[int, int], int] = {}
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.sector_fills = 0

    def read(self, addr: int, nbytes: int, now: int) -> int:
        """Serve one read; returns the cycle data reaches the L1."""
        self.accesses += 1
        cache = self.cache
        line = cache.line_of(addr)
        sectors = cache.sectors_of(addr, nbytes)
        present_ready, missing = cache.probe(line, sectors)
        ready = now if present_ready is None else max(now, present_ready)
        if not missing:
            self.hits += 1
            return ready + self.latency
        self.misses += 1
        to_fetch: List[int] = []
        for s in missing:
            pending = self._pending.get((line, s))
            if pending is not None and pending > now:
                ready = max(ready, pending)  # MSHR merge
            else:
                if pending is not None:
                    del self._pending[(line, s)]  # fill landed: retire MSHR
                to_fetch.append(s)
        if to_fetch:
            fill = self.dram.request(len(to_fetch) * cache.sector, now)
            self.sector_fills += len(to_fetch)
            for s in to_fetch:
                self._pending[(line, s)] = fill
            cache.fill(line, to_fetch, fill)
            ready = max(ready, fill)
        return ready + self.latency

    def write(self, addr: int, nbytes: int, now: int) -> int:
        """Write-through: spend DRAM bandwidth, never allocate."""
        return self.dram.post_write(nbytes, now, addr)

    @property
    def dram_bytes(self) -> float:
        return self.dram.bytes_transferred


class L2System:
    """The shared memory side of a :class:`repro.core.gpu.GPUDevice`.

    Implements the same ``request``/``post_write`` interface as
    :class:`~repro.timing.dram.DRAMChannel`, so an SM's load-store unit
    is agnostic to whether it talks to a private channel or the shared
    hierarchy.  All SMs of a device hold the same ``L2System``.
    """

    __slots__ = ("block", "partitions")

    def __init__(self, config) -> None:
        if not config.uses_l2:
            raise ValueError("L2System requires l2_size > 0")
        self.block = config.l2_block
        self.partitions = [
            L2Partition(
                config.l2_slice_size,
                config.l2_ways,
                config.l2_block,
                config.l2_sector,
                config.l2_latency,
                DRAMChannel(config.partition_bandwidth, config.effective_dram_latency),
                interleave=config.dram_partitions,
            )
            for _ in range(config.dram_partitions)
        ]

    def partition_of(self, addr: int) -> L2Partition:
        return self.partitions[(addr // self.block) % len(self.partitions)]

    def request(self, nbytes: int, now: int, addr: int = 0) -> int:
        return self.partition_of(addr).read(addr, nbytes, now)

    def post_write(self, nbytes: int, now: int, addr: int = 0) -> int:
        return self.partition_of(addr).write(addr, nbytes, now)

    def post_write_segments(self, segments, seg_bytes: int, now: int) -> None:
        """Route each touched store segment to its partition's channel."""
        for seg in segments:
            addr = int(seg) * seg_bytes
            self.post_write(seg_bytes, now, addr)

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return sum(p.accesses for p in self.partitions)

    @property
    def hits(self) -> int:
        return sum(p.hits for p in self.partitions)

    @property
    def misses(self) -> int:
        return sum(p.misses for p in self.partitions)

    @property
    def sector_fills(self) -> int:
        return sum(p.sector_fills for p in self.partitions)

    @property
    def dram_bytes(self) -> float:
        return sum(p.dram_bytes for p in self.partitions)
