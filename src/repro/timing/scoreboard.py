"""Scoreboards: warp-granular, exact-mask, and dependency-matrix.

The baseline tracks in-flight destination registers per warp (6
entries, paper Table 2) and stalls any instruction whose sources or
destination match — warp-granular, so disjoint warp-splits create
false dependencies.

SBI needs finer tracking because threads "jump" between warp-splits at
divergence and reconvergence: a dependency exists only if *common
threads* execute both instructions.  Two implementations:

* :class:`MaskScoreboard` — the brute-force design the paper mentions:
  store the execution mask of every in-flight instruction; dependency
  iff register match AND mask intersection.  Exact; used as the
  reference in property tests.
* :class:`MatrixScoreboard` — the paper's design (section 3.4, Figure
  6): each entry keeps a 3-slot boolean row saying which of the
  current contexts (primary, secondary, rest-of-heap ``I3``) still
  contain threads that executed the entry.  Rows are advanced by
  multiplying with the per-cycle transition matrix ``D(t, t+1)`` of
  the divergence-convergence graph.  Storage is independent of warp
  width; the closure is conservative (may flag a dependency between
  disjoint splits after a merge-then-split chain) but never unsafe.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.isa.instructions import Instruction

#: Number of context slots tracked by the matrix scoreboard:
#: primary (CPC1), secondary (CPC2), and I3 = everything else.
N_SLOTS = 3

Transition = Tuple[Tuple[bool, bool, bool], ...]


class Entry:
    """One in-flight instruction's scoreboard record."""

    __slots__ = ("dst", "mask", "row", "released")

    def __init__(self, dst: int, mask: int, slot: int) -> None:
        self.dst = dst
        self.mask = mask
        row = [False] * N_SLOTS
        row[slot] = True
        self.row = row
        self.released = False


class ScoreboardBase:
    """Per-warp dependency tracking with bounded entries.

    ``_dst_mask`` mirrors the in-flight destination registers as a
    bit-mask (with per-register counts for releases), so the common
    can-issue query resolves with a single AND against the
    instruction's cached read/write mask instead of walking entries.

    ``gen`` counts state changes (add/release/transition): schedulers
    memoize negative readiness verdicts against it, so a data-stalled
    warp is not re-probed every cycle until something here moves.
    """

    __slots__ = ("capacity", "entries", "gen", "_dst_mask", "_dst_counts")

    kind = "base"

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: List[Entry] = []
        self.gen = 0
        self._dst_mask = 0
        self._dst_counts: dict = {}

    # -- capacity ------------------------------------------------------

    def has_room(self, instr: Instruction) -> bool:
        if instr.dst is None:
            return True  # only destination registers occupy entries
        return len(self.entries) < self.capacity

    # -- dependency query ---------------------------------------------

    def _conflicts(self, entry: Entry, mask: int, slot: int) -> bool:
        raise NotImplementedError

    def can_issue(self, instr: Instruction, mask: int, slot: int) -> bool:
        """True when ``instr`` (for threads ``mask``, context ``slot``)
        has no RAW/WAW hazard against in-flight instructions."""
        entries = self.entries
        if instr.dst is not None and len(entries) >= self.capacity:
            return False
        if not entries or not (self._dst_mask & instr.hazard_mask):
            return True
        sources = instr.hazard_regs
        dst = instr.dst
        for entry in entries:
            if entry.dst in sources or (dst is not None and entry.dst == dst):
                if self._conflicts(entry, mask, slot):
                    return False
        return True

    # -- lifecycle ------------------------------------------------------

    def add(self, instr: Instruction, mask: int, slot: int) -> Optional[Entry]:
        if instr.dst is None:
            return None
        dst = instr.dst
        entry = Entry(dst, mask, slot)
        self.entries.append(entry)
        self.gen += 1
        counts = self._dst_counts
        counts[dst] = counts.get(dst, 0) + 1
        self._dst_mask |= 1 << dst
        return entry

    def release(self, entry: Entry) -> None:
        if not entry.released:
            entry.released = True
            self.entries.remove(entry)
            self.gen += 1
            counts = self._dst_counts
            left = counts[entry.dst] - 1
            if left:
                counts[entry.dst] = left
            else:
                del counts[entry.dst]
                self._dst_mask &= ~(1 << entry.dst)

    def on_transition(self, transition: Transition) -> None:
        """Advance context rows after a divergence/merge event."""
        # Only the matrix scoreboard uses transitions.

    def __len__(self) -> int:
        return len(self.entries)


class WarpScoreboard(ScoreboardBase):
    """Baseline: any register match is a dependency (warp-granular)."""

    __slots__ = ()

    kind = "warp"

    def _conflicts(self, entry: Entry, mask: int, slot: int) -> bool:
        return True


class MaskScoreboard(ScoreboardBase):
    """Exact: dependency iff the thread masks intersect."""

    __slots__ = ()

    kind = "mask"

    def _conflicts(self, entry: Entry, mask: int, slot: int) -> bool:
        return (entry.mask & mask) != 0


class MatrixScoreboard(ScoreboardBase):
    """The paper's transitive-closure scoreboard (section 3.4)."""

    __slots__ = ()

    kind = "matrix"

    def _conflicts(self, entry: Entry, mask: int, slot: int) -> bool:
        return entry.row[slot]

    def on_transition(self, transition: Transition) -> None:
        self.gen += 1
        for entry in self.entries:
            row = entry.row
            entry.row = [
                any(row[i] and transition[i][j] for i in range(N_SLOTS))
                for j in range(N_SLOTS)
            ]


def make_scoreboard(kind: str, capacity: int) -> ScoreboardBase:
    if kind == "warp":
        return WarpScoreboard(capacity)
    if kind == "mask":
        return MaskScoreboard(capacity)
    if kind == "matrix":
        return MatrixScoreboard(capacity)
    raise ValueError("unknown scoreboard kind %r" % kind)


def build_transition(
    old_masks: Sequence[int], new_masks: Sequence[int]
) -> Transition:
    """``D(t, t+1)``: ``T[i][j]`` = some thread moved slot i -> slot j."""
    return tuple(
        tuple((old & new) != 0 for new in new_masks) for old in old_masks
    )
