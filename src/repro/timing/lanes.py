"""Lane shuffling — static thread-to-lane permutations (paper Table 1).

Many kernels give thread 0 of every warp more work than its neighbours;
with the straightforward mapping those threads contend for the same
physical lane, defeating SWI's lane-filling.  Shuffling the
thread-to-lane mapping per warp decorrelates the patterns.  The mapping
is static (computed from ``tid`` and ``wid`` only), so it costs no
hardware and no data movement, and coalescing — which works on thread
ids — is unaffected.

Functions (``n = warp_width - 1``, ``m = warp_count``):

=============  ===================================================
``identity``   ``tid``
``mirror_odd`` ``n - tid`` if ``wid`` odd else ``tid``
``mirror_half````n - tid`` if ``wid > m/2`` else ``tid``
``xor``        ``tid XOR (wid mod warp_width)``
``xor_rev``    ``tid XOR bitrev(wid)`` (bit-reversal over log2(width))
=============  ===================================================
"""

from __future__ import annotations

from typing import Tuple

POLICIES = ("identity", "mirror_odd", "mirror_half", "xor", "xor_rev")


def bitrev(value: int, bit_count: int) -> int:
    """Reverse the low ``bit_count`` bits of ``value``."""
    out = 0
    for i in range(bit_count):
        if value & (1 << i):
            out |= 1 << (bit_count - 1 - i)
    return out


def lane_of(policy: str, tid: int, wid: int, warp_width: int, warp_count: int) -> int:
    """Physical lane of thread ``tid`` in warp ``wid``."""
    n = warp_width - 1
    if policy == "identity":
        return tid
    if policy == "mirror_odd":
        return n - tid if wid % 2 == 1 else tid
    if policy == "mirror_half":
        return n - tid if wid > warp_count // 2 else tid
    if policy == "xor":
        return tid ^ (wid % warp_width)
    if policy == "xor_rev":
        bits = warp_width.bit_length() - 1
        return tid ^ bitrev(wid % warp_width, bits)
    raise ValueError("unknown lane shuffle policy %r" % policy)


def permutation(policy: str, wid: int, warp_width: int, warp_count: int) -> Tuple[int, ...]:
    """Thread->lane permutation for one warp (validated bijection)."""
    perm = tuple(
        lane_of(policy, tid, wid, warp_width, warp_count) for tid in range(warp_width)
    )
    if sorted(perm) != list(range(warp_width)):
        raise ValueError(
            "policy %r is not a permutation for wid=%d width=%d"
            % (policy, wid, warp_width)
        )
    return perm


def diagram(policy: str, warp_width: int = 4, warp_count: int = 4) -> str:
    """ASCII rendition of the Table 1 illustrations: lane id as a
    function of ``warp_width * wid + tid``."""
    rows = []
    for lane in reversed(range(warp_width)):
        cells = []
        for wid in range(warp_count):
            for tid in range(warp_width):
                hit = lane_of(policy, tid, wid, warp_width, warp_count) == lane
                cells.append("*" if hit else ".")
        rows.append("lane %d |%s|" % (lane, "".join(cells)))
    return "\n".join(rows)
