"""Dynamic warp resizing — a DWR-inspired reconvergence model.

Lashgar, Baniasadi & Khonsari ("Dynamic Warp Resizing in
High-Performance SIMT") observe that large warps amortise front-end
work under convergence but pay serialisation under divergence, and
propose resizing: run divergent code as independent narrow sub-warps,
re-gang them once control reconverges.

:class:`DWRModel` grafts that idea onto thread-frontier scheduling: a
64-wide warp executes as one full-width split while converged; a
divergent branch additionally slices each outcome split along fixed
``subwarp_width`` (default 32) lane windows, so each sub-warp chases
its own control path independently — a narrow sub-warp occupies only
its half of the execution group, which an SWI-style cascaded scheduler
can fill from another warp.  Merging is restricted to splits of the
same sub-warp window while any divergence is live; once every live
split stands at one PC the window restriction lifts and the sub-warps
regroup into a full-width split (the "resize up" step).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.timing.frontier import FrontierModel
from repro.timing.divergence import Split


class DWRModel(FrontierModel):
    """Frontier reconvergence with sub-warp slicing under divergence."""

    __slots__ = ("subwarp_width", "resize_downs", "resize_ups")

    def __init__(
        self, launch_mask: int, lane_perm: Sequence[int], subwarp_width: int = 32
    ) -> None:
        if subwarp_width < 1:
            raise ValueError("subwarp_width must be >= 1")
        super().__init__(launch_mask, lane_perm)
        self.subwarp_width = subwarp_width
        #: Sub-warp splits created (resize-down events).
        self.resize_downs = 0
        #: Cross-window merges performed at reconvergence (resize-ups).
        self.resize_ups = 0

    # -- sub-warp geometry ----------------------------------------------

    def _window(self, mask: int) -> Optional[int]:
        """Index of the sub-warp window containing ``mask``, or None
        when the mask spans several windows."""
        if not mask:
            return None
        w = self.subwarp_width
        index = (mask.bit_length() - 1) // w
        window_mask = ((1 << w) - 1) << (index * w)
        return index if not (mask & ~window_mask) else None

    def _subdivide(self, split: Split) -> None:
        """Slice ``split`` into one split per populated sub-warp window."""
        if split.pending or self._window(split.mask) is not None:
            return  # in flight, or already confined to one window
        w = self.subwarp_width
        mask = split.mask
        parts = []
        index = 0
        while mask:
            window_mask = ((1 << w) - 1) << (index * w)
            part = mask & window_mask
            if part:
                parts.append(part)
            mask &= ~window_mask
            index += 1
        split.set_mask(parts[0])
        for part in parts[1:]:
            sibling = Split(split.pc, part, self.lane_perm)
            sibling.redirect_ready_at = split.redirect_ready_at
            self.splits.append(sibling)
        self.resize_downs += len(parts) - 1

    # -- overrides -------------------------------------------------------

    def _try_merge(self, split: Split) -> None:
        """Same-PC merge, gated by sub-warp windows.

        While several PCs are live (divergence in flight) only splits
        of the *same* window may merge, keeping sub-warps independent;
        when one PC remains the warp has reconverged and cross-window
        merges regroup it to full width.
        """
        if split.pending or split not in self.splits:
            return
        reconverged = len({s.pc for s in self.splits}) == 1
        for other in self.splits:
            if other is split or other.pending or other.pc != split.pc:
                continue
            same_window = (
                self._window(split.mask) is not None
                and self._window(split.mask) == self._window(other.mask)
            )
            if not (reconverged or same_window):
                continue
            if not same_window:
                self.resize_ups += 1
            other.set_mask(other.mask | split.mask)
            other.redirect_ready_at = max(
                other.redirect_ready_at, split.redirect_ready_at
            )
            self.splits.remove(split)
            split.set_mask(0)  # dead: any stale scheduler pick is void
            self.merge_count += 1
            return

    def branch(
        self,
        split: Split,
        taken_mask: int,
        target_pc: int,
        reconv_pc: Optional[int],
        now: int,
    ) -> bool:
        diverged = super().branch(split, taken_mask, target_pc, reconv_pc, now)
        if diverged:
            # Resize down: every live split spanning several windows is
            # sliced, so each sub-warp follows its own control path.
            for s in list(self.splits):
                self._subdivide(s)
        return diverged
