"""SBI's sorted heap of warp-split contexts: HCT + CCT (paper §3.4).

The **Hot Context Table** holds the two minimum-PC contexts of each
warp — the primary (``CPC1``) and secondary (``CPC2``) warp-splits that
the dual front-end can issue simultaneously.  The **Cold Context
Table** holds the remaining contexts as a sorted list per warp.

Hardware behaviours modelled:

* the HCT sorter sorts/compacts/merges at most three contexts per
  cycle (two hot + one new, since at most one divergence per cycle);
* insertions into the CCT go through an asynchronous *sideband sorter*
  — an inserted context only becomes poppable ``cct_insert_delay``
  cycles later, and insertions serialise (the paper's degraded-stack
  behaviour under pressure shows up as delayed availability);
* when hot slots free up (merge, exit, barrier park), the minimum
  *ready* cold context is popped in;
* two hot contexts whose PCs meet merge — this is also how SBI's
  selective synchronization barrier releases a suspended secondary
  (paper §3.3: "no additional hardware is needed").

The selective-synchronization *check* itself lives in the scheduler
(it is an issue-eligibility rule); this module only provides the
context structure.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.timing.divergence import DivergenceModel, Split

#: Settle wake sentinel: no pending sideband insertion.
_NEVER = 1 << 62


class SBIModel(DivergenceModel):
    """Dual hot context (HCT) + sorted cold contexts (CCT)."""

    __slots__ = (
        "hot",
        "cold",
        "parked",
        "cct_capacity",
        "insert_delay",
        "sideband_busy_until",
        "cct_overflows",
        "cct_high_water",
        "_dirty",
    )

    hot_capacity = 2

    def __init__(
        self,
        launch_mask: int,
        lane_perm: Sequence[int],
        cct_capacity: int = 8,
        insert_delay: int = 2,
    ) -> None:
        super().__init__(launch_mask, lane_perm)
        self.hot: List[Split] = [Split(0, launch_mask, lane_perm)]
        self.cold: List[Split] = []
        self.parked: List[Split] = []
        self.cct_capacity = cct_capacity
        self.insert_delay = insert_delay
        self.sideband_busy_until = 0
        self.cct_overflows = 0
        self.cct_high_water = 0
        # Settle gating: ``_dirty`` is raised by every mutation and
        # ``_settle_wake`` is the earliest cycle a sideband insertion
        # joins the sorted order — between those events a settle is a
        # no-op, so the (hot) read path skips it entirely.
        self._dirty = True
        self._settle_wake = 0

    def _touch(self) -> None:
        self.version += 1
        self._dirty = True
        cb = self.on_change
        if cb is not None:
            cb()

    # -- views -----------------------------------------------------------

    def hot_splits(self, now: int) -> List[Split]:
        if self._dirty or now >= self._settle_wake:
            self._settle(now)
        return self.hot

    def all_splits(self) -> Iterable[Split]:
        yield from self.hot
        yield from self.cold
        yield from self.parked

    def live_mask(self) -> int:
        # Contexts partition the live threads (check_invariants), so
        # the union is launch minus exited — no context walk needed.
        return self.launch_mask & ~self.exited_mask

    # -- HCT/CCT mechanics --------------------------------------------------

    def _settle(self, now: int) -> None:
        """Restore the sorted-heap invariant over hot + sorted cold.

        The HCT sorter + CCT sorter together expose the two minimum-PC
        contexts and *compact* contexts whose PCs meet (paper Figure 5:
        "sort + compact", "merge").  Entries still travelling through
        the sideband sorter (``ready_at > now``) cannot be promoted or
        merged yet; in-flight (pending) contexts are frozen.
        """
        old_hot = self.hot
        pool = list(old_hot)
        settled_cold = []
        for s in self.cold:
            if s.ready_at <= now:
                pool.append(s)
            else:
                settled_cold.append(s)
        pool.sort(key=lambda s: s.pc)
        merged: List[Split] = []
        merges_before = self.merge_count
        for s in pool:
            last = merged[-1] if merged else None
            if (
                last is not None
                and last.pc == s.pc
                and not last.pending
                and not s.pending
            ):
                last.set_mask(last.mask | s.mask)
                last.redirect_ready_at = max(
                    last.redirect_ready_at, s.redirect_ready_at
                )
                s.set_mask(0)  # dead: any stale scheduler pick is void
                self.merge_count += 1
            else:
                merged.append(s)
        self.hot = merged[:2]
        self.cold = merged[2:] + settled_cold
        self.cct_high_water = max(self.cct_high_water, len(self.cold))
        if len(self.cold) > self.cct_capacity:
            self.cct_overflows += 1
        if self.merge_count != merges_before or self.hot != old_hot:
            # State changes happen on the read path too: a merge, or a
            # cold context waking through the sideband sorter and
            # (re)ordering the hot pair.  Stall memos and wake caches
            # must see it, so the change hook fires here as well.
            self.version += 1
            cb = self.on_change
            if cb is not None:
                cb()
        self._dirty = False
        wake = None
        for s in self.cold:
            r = s.ready_at
            if r > now and (wake is None or r < wake):
                wake = r
        self._settle_wake = wake if wake is not None else _NEVER

    def _insert_cold(self, split: Split, now: int) -> None:
        """Sideband-sorter insertion: the entry is stored immediately
        but joins the sorted order ``insert_delay`` cycles later (while
        unsorted it cannot be promoted — the paper's degraded window)."""
        self._touch()
        start = max(now, self.sideband_busy_until)
        split.ready_at = start + self.insert_delay
        self.sideband_busy_until = split.ready_at
        self.cold.append(split)

    def _place(self, split: Split, now: int) -> None:
        """HCT sorter: keep the two minimum contexts hot, spill the max."""
        self.hot.append(split)
        self.hot.sort(key=lambda s: s.pc)
        if len(self.hot) > 2:
            spill = self.hot.pop()  # maximum PC
            self._insert_cold(spill, now)
        self._settle(now)

    # -- mutation ----------------------------------------------------------

    def branch(
        self,
        split: Split,
        taken_mask: int,
        target_pc: int,
        reconv_pc: Optional[int],
        now: int,
    ) -> bool:
        self._touch()
        ft_mask = split.mask & ~taken_mask
        taken_mask &= split.mask
        if not ft_mask or not taken_mask:
            split.pc = target_pc if taken_mask else split.pc + 1
            self._settle(now)
            return False
        fall_through_pc = split.pc + 1
        split.set_mask(taken_mask)
        split.pc = target_pc
        sibling = Split(fall_through_pc, ft_mask, self.lane_perm)
        sibling.redirect_ready_at = split.redirect_ready_at
        self._place(sibling, now)
        return True

    def advance(self, split: Split, now: int) -> None:
        self._touch()
        split.pc += 1
        self._settle(now)

    def exit_threads(self, split: Split, mask: int, now: int) -> None:
        self._touch()
        self.exited_mask |= mask
        split.set_mask(split.mask & ~mask)
        if not split.mask:
            if split in self.hot:
                self.hot.remove(split)
            elif split in self.cold:
                self.cold.remove(split)
        self._settle(now)

    def park(self, split: Split, now: int) -> None:
        self._touch()
        split.parked = True
        self.parked_threads += split.mask.bit_count()
        self.hot.remove(split)
        self.parked.append(split)
        self._settle(now)

    def unpark_all(self, now: int) -> None:
        self._touch()
        for split in self.parked:
            split.parked = False
            split.pc += 1
            self.cold.append(split)  # rejoin through the heap
        self.parked.clear()
        self.parked_threads = 0
        self._settle(now)
