"""Warp-split representation and the divergence-model interface.

A *warp-split* is a (PC, activity-mask) pair: a maximal group of
threads of one warp executing in lockstep.  The three reconvergence
models of the reproduction manage splits differently:

* :class:`repro.timing.stack.StackModel` — baseline IPDOM stack, one
  runnable split (the top of stack).
* :class:`repro.timing.frontier.FrontierModel` — thread-frontier
  scheduling: the minimum-PC split is runnable (Warp64 reference and
  the SWI configuration).
* :class:`repro.timing.hct.SBIModel` — the paper's HCT/CCT heap with
  *two* runnable splits (``CPC1``/``CPC2``) for simultaneous branch
  interweaving.

All models speak the same interface so the SM pipeline and schedulers
are mode-agnostic; the matrix scoreboard observes slot transitions
through :meth:`DivergenceModel.slot_masks`.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.timing.masks import permute_mask, popcount

#: "No scheduled self-wake" sentinel (shared with hct/schedulers/fetch).
_NEVER = 1 << 62


class Split:
    """One warp-split: PC, thread mask, and scheduling state."""

    __slots__ = (
        "pc",
        "mask",
        "rpc",
        "parked",
        "pending",
        "redirect_ready_at",
        "ready_at",
        "_lane_mask",
        "_perm",
    )

    def __init__(
        self, pc: int, mask: int, perm: Sequence[int], rpc: Optional[int] = None
    ) -> None:
        self.pc = pc
        self.mask = mask
        self.rpc = rpc  # reconvergence PC (stack model only)
        self.parked = False
        self.pending = False  # picked by a cascaded scheduler, not yet issued
        self.redirect_ready_at = 0  # fetch gate after a branch resolves
        self.ready_at = 0  # CCT sideband-sorter availability
        self._perm = perm
        self._lane_mask: Optional[int] = None

    @property
    def lane_mask(self) -> int:
        """Mask in physical-lane space (after the warp's shuffle)."""
        if self._lane_mask is None:
            self._lane_mask = permute_mask(self.mask, self._perm)
        return self._lane_mask

    def set_mask(self, mask: int) -> None:
        self.mask = mask
        self._lane_mask = None

    @property
    def active_threads(self) -> int:
        return popcount(self.mask)

    def __repr__(self) -> str:
        flags = "".join(
            f for f, on in (("P", self.parked), ("*", self.pending)) if on
        )
        return "Split(pc=%d, mask=%#x%s)" % (self.pc, self.mask, flags)


class DivergenceModel:
    """Common interface of the three reconvergence models."""

    __slots__ = (
        "launch_mask",
        "lane_perm",
        "merge_count",
        "exited_mask",
        "version",
        "parked_threads",
        "_hot_cache",
        "on_change",
        "_settle_wake",
    )

    #: Number of simultaneously runnable splits the model exposes
    #: (class-level: a property of the model kind, never per instance).
    hot_capacity = 1

    def __init__(self, launch_mask: int, lane_perm: Sequence[int]) -> None:
        self.launch_mask = launch_mask
        self.lane_perm = lane_perm
        self.merge_count = 0
        self.exited_mask = 0
        #: Mutation counter: bumped by every state change so readers
        #: (hot-split caches, the SM's wake-cycle cache) can memoize
        #: derived views between mutations.
        self.version = 0
        #: Threads currently suspended at a CTA barrier (fast path for
        #: StreamingMultiprocessor._check_barrier).
        self.parked_threads = 0
        #: Memoized :meth:`hot_splits` result, or None when it must be
        #: recomputed.  Models that can serve reads straight from a
        #: cache (stack, frontier) keep it fresh; models with read-path
        #: state (SBI's settle) leave it None so every read goes
        #: through the method.  Schedulers read this attribute directly
        #: on their hottest per-warp-per-cycle scans.
        self._hot_cache: Optional[List[Split]] = None
        #: Change-notification hook, bound by the SM at warp launch.
        #: Fired on every version bump so the engine can clear the
        #: warp's stall memos and re-enqueue its wake event without
        #: polling the counter.
        self.on_change: Optional[Callable[[], None]] = None
        #: Earliest future cycle the model can change state *on its
        #: own* (SBI's sideband-sorter promotions on the read path);
        #: ``_NEVER`` for purely mutation-driven models.  Stall memos
        #: written while the model is quiescent are capped here.
        self._settle_wake = _NEVER

    def _touch(self) -> None:
        """Invalidate memoized views after a state change."""
        self.version += 1
        self._hot_cache = None
        cb = self.on_change
        if cb is not None:
            cb()

    # -- scheduling view ------------------------------------------------

    def hot_splits(self, now: int) -> List[Split]:
        """Runnable splits ordered by priority (index 0 = primary)."""
        raise NotImplementedError

    def all_splits(self) -> Iterable[Split]:
        raise NotImplementedError

    def slot_of(self, split: Split, now: int) -> int:
        """Context slot of ``split``: 0 (primary), 1 (secondary), 2 (rest)."""
        hot = self.hot_splits(now)
        for i, s in enumerate(hot[:2]):
            if s is split:
                return i
        return 2

    def slot_masks(self, now: int) -> Tuple[int, int, int]:
        """Thread masks of the three context slots (matrix scoreboard)."""
        hot = self.hot_splits(now)
        m0 = hot[0].mask if len(hot) > 0 else 0
        m1 = hot[1].mask if len(hot) > 1 else 0
        rest = self.live_mask() & ~(m0 | m1)
        return m0, m1, rest

    def live_mask(self) -> int:
        mask = 0
        for s in self.all_splits():
            mask |= s.mask
        return mask

    @property
    def done(self) -> bool:
        return not any(True for _ in self.all_splits())

    # -- mutation --------------------------------------------------------

    def branch(
        self,
        split: Split,
        taken_mask: int,
        target_pc: int,
        reconv_pc: Optional[int],
        now: int,
    ) -> bool:
        """Apply a branch outcome; returns True when it diverged.

        ``reconv_pc`` is the compiler-computed IPDOM — used by the
        stack model, ignored by the PC-ordered models.
        """
        raise NotImplementedError

    def advance(self, split: Split, now: int) -> None:
        """Move past a non-branch instruction (PC + 1)."""
        raise NotImplementedError

    def exit_threads(self, split: Split, mask: int, now: int) -> None:
        """Retire ``mask`` threads (EXIT instruction)."""
        raise NotImplementedError

    def park(self, split: Split, now: int) -> None:
        """Suspend at a CTA barrier."""
        raise NotImplementedError

    def unpark_all(self, now: int) -> None:
        """Barrier release: every parked split resumes at PC + 1."""
        raise NotImplementedError

    # -- invariants (used by tests) --------------------------------------

    def check_invariants(self) -> None:
        """Masks are pairwise disjoint and partition the live threads."""
        seen = 0
        for s in self.all_splits():
            if s.mask == 0:
                raise AssertionError("empty split %r" % s)
            if seen & s.mask:
                raise AssertionError("overlapping splits in %r" % self)
            seen |= s.mask
        expected = self.launch_mask & ~self.exited_mask
        if seen != expected:
            raise AssertionError(
                "live mask %#x != launch-exited %#x" % (seen, expected)
            )


def make_split(pc: int, mask: int, perm: Sequence[int], rpc: Optional[int] = None) -> Split:
    return Split(pc, mask, perm, rpc)
