"""Thread-frontier reconvergence (Diamos et al., used by Warp64/SWI).

Warp-splits are kept ordered by PC and the minimum-PC split runs.
With thread-frontier-compatible code layout this reconverges at the
earliest possible point: a lagging split always has the smallest PC,
so it catches up, and two splits whose PCs meet merge immediately.
No placeholder contexts, no compiler reconvergence annotations —
reconvergence emerges from the scheduling order.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.timing.divergence import DivergenceModel, Split


def _by_pc(split: Split) -> int:
    return split.pc


class FrontierModel(DivergenceModel):
    """PC-sorted warp-splits; one runnable (the minimum PC)."""

    __slots__ = ("splits", "parked")

    hot_capacity = 1

    def __init__(self, launch_mask: int, lane_perm: Sequence[int]) -> None:
        super().__init__(launch_mask, lane_perm)
        self.splits: List[Split] = [Split(0, launch_mask, lane_perm)]
        self.parked: List[Split] = []

    # -- views -----------------------------------------------------------

    def hot_splits(self, now: int) -> List[Split]:
        hot = self._hot_cache
        if hot is None:
            if self.splits:
                hot = [min(self.splits, key=_by_pc)]
            else:
                hot = []
            self._hot_cache = hot
        return hot

    def all_splits(self) -> Iterable[Split]:
        yield from self.splits
        yield from self.parked

    def live_mask(self) -> int:
        # Splits partition the live threads (check_invariants), so the
        # union is just launch minus exited — no split walk needed.
        return self.launch_mask & ~self.exited_mask

    # -- helpers -----------------------------------------------------------

    def _try_merge(self, split: Split) -> None:
        """Fold ``split`` into a same-PC runnable sibling if possible."""
        if split.pending:
            return
        for other in self.splits:
            if other is split or other.pending:
                continue
            if other.pc == split.pc:
                other.set_mask(other.mask | split.mask)
                other.redirect_ready_at = max(
                    other.redirect_ready_at, split.redirect_ready_at
                )
                self.splits.remove(split)
                split.set_mask(0)  # dead: any stale scheduler pick is void
                self.merge_count += 1
                return

    # -- mutation ----------------------------------------------------------

    def branch(
        self,
        split: Split,
        taken_mask: int,
        target_pc: int,
        reconv_pc: Optional[int],
        now: int,
    ) -> bool:
        self._touch()
        ft_mask = split.mask & ~taken_mask
        taken_mask &= split.mask
        if not ft_mask or not taken_mask:
            split.pc = target_pc if taken_mask else split.pc + 1
            self._try_merge(split)
            return False
        fall_through_pc = split.pc + 1
        split.set_mask(taken_mask)
        split.pc = target_pc
        sibling = Split(fall_through_pc, ft_mask, self.lane_perm)
        sibling.redirect_ready_at = split.redirect_ready_at
        self.splits.append(sibling)
        self._try_merge(sibling)
        if split in self.splits:
            self._try_merge(split)
        return True

    def advance(self, split: Split, now: int) -> None:
        self._touch()
        split.pc += 1
        self._try_merge(split)

    def exit_threads(self, split: Split, mask: int, now: int) -> None:
        self._touch()
        self.exited_mask |= mask
        split.set_mask(split.mask & ~mask)
        if not split.mask:
            self.splits.remove(split)

    def park(self, split: Split, now: int) -> None:
        self._touch()
        split.parked = True
        self.parked_threads += split.mask.bit_count()
        self.splits.remove(split)
        self.parked.append(split)

    def unpark_all(self, now: int) -> None:
        self._touch()
        for split in self.parked:
            split.parked = False
            split.pc += 1
            self.splits.append(split)
        self.parked.clear()
        self.parked_threads = 0
        for split in list(self.splits):
            if split in self.splits:
                self._try_merge(split)
