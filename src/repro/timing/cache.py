"""L1 data cache model — 48 KB, 6-way, 128 B blocks, LRU (Table 2).

Write-through, no write-allocate (Fermi-style for global stores): loads
allocate on miss, stores only update a present line and always spend
DRAM store bandwidth.  Each line records the cycle its fill completes,
so a hit under a pending fill waits for the data rather than the tag.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class L1Cache:
    """Set-associative cache with per-line fill timestamps."""

    __slots__ = (
        "size",
        "ways",
        "block",
        "latency",
        "n_sets",
        "_sets",
        "_use_counter",
        "hits",
        "misses",
    )

    def __init__(self, size: int, ways: int, block: int, latency: int) -> None:
        if size % (ways * block):
            raise ValueError("cache size must be sets * ways * block")
        self.size = size
        self.ways = ways
        self.block = block
        self.latency = latency
        self.n_sets = size // (ways * block)
        # Per set: {block_addr: (last_use, ready_at)}
        self._sets: List[Dict[int, List[int]]] = [dict() for _ in range(self.n_sets)]
        self._use_counter = 0
        self.hits = 0
        self.misses = 0

    def _set_of(self, block_addr: int) -> Dict[int, List[int]]:
        index = (block_addr // self.block) % self.n_sets
        return self._sets[index]

    def _touch(self, entry: List[int]) -> None:
        self._use_counter += 1
        entry[0] = self._use_counter

    # ------------------------------------------------------------------

    def lookup(self, block_addr: int) -> Optional[int]:
        """Probe; returns the line's data-ready cycle on hit, else None.

        Counts hit/miss statistics; does not allocate.
        """
        lines = self._set_of(block_addr)
        entry = lines.get(block_addr)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touch(entry)
        return entry[1]

    def contains(self, block_addr: int) -> bool:
        """Tag probe without statistics (store write-through check)."""
        return block_addr in self._set_of(block_addr)

    def fill(self, block_addr: int, ready_at: int) -> None:
        """Allocate a line whose data arrives at ``ready_at`` (LRU victim).

        Write-through keeps lines clean, so evictions are silent.
        """
        lines = self._set_of(block_addr)
        if block_addr in lines:
            entry = lines[block_addr]
            entry[1] = min(entry[1], ready_at)
            self._touch(entry)
            return
        if len(lines) >= self.ways:
            victim = min(lines, key=lambda b: lines[b][0])
            del lines[victim]
        self._use_counter += 1
        lines[block_addr] = [self._use_counter, ready_at]

    def invalidate_all(self) -> None:
        for s in self._sets:
            s.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses
