"""Off-chip memory: throughput-limited, constant latency.

The paper follows Gebhart et al.'s methodology: memory is modelled as a
fixed-latency pipe with a hard bandwidth cap (10 GB/s per SM, 330 ns).
Requests serialise on a single channel at ``bandwidth`` bytes/cycle;
data returns a constant ``latency`` after a request's slot on the
channel.  Outstanding fills to the same block are merged (MSHR
behaviour) by the LSU layer.
"""

from __future__ import annotations


class DRAMChannel:
    """Bandwidth-serialised request channel."""

    __slots__ = (
        "bandwidth",
        "latency",
        "_free_at",
        "bytes_transferred",
        "requests",
    )

    def __init__(self, bandwidth: float, latency: int) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self.latency = latency
        self._free_at = 0.0
        self.bytes_transferred = 0.0
        self.requests = 0

    def request(self, nbytes: int, now: int, addr: int = 0) -> int:
        """Schedule a transfer; returns the data-arrival cycle.

        ``addr`` is accepted for interface compatibility with the
        address-partitioned L2 system and is ignored by a flat channel.
        """
        start = max(float(now), self._free_at)
        self._free_at = start + nbytes / self.bandwidth
        self.bytes_transferred += nbytes
        self.requests += 1
        return int(self._free_at + self.latency) + 1

    def post_write(self, nbytes: int, now: int, addr: int = 0) -> int:
        """Write traffic: consumes bandwidth; completion is when the
        channel slot drains (stores are fire-and-forget through a
        store buffer)."""
        start = max(float(now), self._free_at)
        self._free_at = start + nbytes / self.bandwidth
        self.bytes_transferred += nbytes
        self.requests += 1
        return int(self._free_at) + 1

    def post_write_segments(self, segments, seg_bytes: int, now: int) -> None:
        """Write-through traffic for a set of touched store segments.

        On a flat channel one aggregate transfer costs exactly the
        same bandwidth as per-segment transfers, so collapse them; an
        address-partitioned sink overrides this to route each segment.
        """
        self.post_write(len(segments) * seg_bytes, now)

    @property
    def busy_until(self) -> float:
        return self._free_at
