"""Off-chip memory: throughput-limited, constant latency.

The paper follows Gebhart et al.'s methodology: memory is modelled as a
fixed-latency pipe with a hard bandwidth cap (10 GB/s per SM, 330 ns).
Requests serialise on a single channel at ``bandwidth`` bytes/cycle;
data returns a constant ``latency`` after a request's slot on the
channel.  Outstanding fills to the same block are merged (MSHR
behaviour) by the LSU layer.
"""

from __future__ import annotations


class DRAMChannel:
    """Bandwidth-serialised request channel."""

    def __init__(self, bandwidth: float, latency: int) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self.latency = latency
        self._free_at = 0.0
        self.bytes_transferred = 0.0
        self.requests = 0

    def request(self, nbytes: int, now: int) -> int:
        """Schedule a transfer; returns the data-arrival cycle."""
        start = max(float(now), self._free_at)
        self._free_at = start + nbytes / self.bandwidth
        self.bytes_transferred += nbytes
        self.requests += 1
        return int(self._free_at + self.latency) + 1

    def post_write(self, nbytes: int, now: int) -> int:
        """Write traffic: consumes bandwidth; completion is when the
        channel slot drains (stores are fire-and-forget through a
        store buffer)."""
        start = max(float(now), self._free_at)
        self._free_at = start + nbytes / self.bandwidth
        self.bytes_transferred += nbytes
        self.requests += 1
        return int(self._free_at) + 1

    @property
    def busy_until(self) -> float:
        return self._free_at
