"""Control-flow graph construction and dominance analyses.

Used by two compiler passes of the reproduction:

* the baseline stack model needs, for every divergent branch, its
  *reconvergence point* = immediate post-dominator of the branch
  (Fermi/Tesla behaviour, paper section 2);
* SBI's selective synchronization barriers need, for every
  reconvergence point, the *divergence point* ``PCdiv`` = last
  instruction of the immediate dominator of the join block (paper
  section 3.3).

The analyses work on arbitrary (unstructured) CFGs; the iterative
dominator algorithm is Cooper–Harvey–Kennedy on a reverse-postorder
numbering, run on the reverse graph for post-dominators with a virtual
exit node collecting ``exit`` instructions and the fall-off end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Op
from repro.isa.program import Program

#: Virtual exit node id used for post-dominator computation.
VIRTUAL_EXIT = -1


@dataclass
class BasicBlock:
    """Half-open instruction range ``[start, end)`` with CFG edges."""

    index: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    @property
    def last_pc(self) -> int:
        return self.end - 1

    def pcs(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:
        return "BB%d[%d:%d]->%s" % (self.index, self.start, self.end, self.successors)


class ControlFlowGraph:
    """CFG over a :class:`Program`, with dominator/post-dominator trees."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.blocks: List[BasicBlock] = []
        self.block_of_pc: List[int] = []
        self._build_blocks()
        self._build_edges()
        self.idom = self._dominators(reverse=False)
        self.ipdom = self._dominators(reverse=True)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _leader_pcs(self) -> List[int]:
        instrs = self.program.instructions
        leaders = {0}
        for pc, instr in enumerate(instrs):
            if instr.op is Op.BRA:
                leaders.add(instr.target)
                if pc + 1 < len(instrs):
                    leaders.add(pc + 1)
            elif instr.op is Op.EXIT and pc + 1 < len(instrs):
                leaders.add(pc + 1)
        return sorted(leaders)

    def _build_blocks(self) -> None:
        leaders = self._leader_pcs()
        n = len(self.program)
        bounds = leaders + [n]
        for i in range(len(leaders)):
            self.blocks.append(BasicBlock(i, bounds[i], bounds[i + 1]))
        self.block_of_pc = [0] * n
        for block in self.blocks:
            for pc in block.pcs():
                self.block_of_pc[pc] = block.index

    def _build_edges(self) -> None:
        n = len(self.program)
        for block in self.blocks:
            last = self.program[block.last_pc]
            succs: List[int] = []
            if last.op is Op.BRA:
                succs.append(self.block_of_pc[last.target])
                if last.is_conditional and block.end < n:
                    succs.append(self.block_of_pc[block.end])
            elif last.op is Op.EXIT:
                pass
            elif block.end < n:
                succs.append(self.block_of_pc[block.end])
            seen = set()
            for s in succs:
                if s not in seen:
                    seen.add(s)
                    block.successors.append(s)
                    self.blocks[s].predecessors.append(block.index)

    # ------------------------------------------------------------------
    # Dominators (Cooper-Harvey-Kennedy)
    # ------------------------------------------------------------------

    def _graph(self, reverse: bool) -> Tuple[int, Dict[int, List[int]]]:
        """Adjacency (entry, succ-map) incl. :data:`VIRTUAL_EXIT` if reverse."""
        if not reverse:
            return 0, {b.index: list(b.successors) for b in self.blocks}
        succ: Dict[int, List[int]] = {b.index: list(b.predecessors) for b in self.blocks}
        succ[VIRTUAL_EXIT] = [
            b.index
            for b in self.blocks
            if not b.successors  # exit blocks and fall-off ends
        ]
        return VIRTUAL_EXIT, succ

    def _dominators(self, reverse: bool) -> Dict[int, Optional[int]]:
        entry, succ = self._graph(reverse)
        order: List[int] = []
        visited = set()

        def dfs(node: int) -> None:
            stack = [(node, iter(succ.get(node, ())))]
            visited.add(node)
            while stack:
                current, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, iter(succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        dfs(entry)
        rpo = list(reversed(order))
        rpo_index = {node: i for i, node in enumerate(rpo)}
        idom: Dict[int, Optional[int]] = {node: None for node in rpo}
        idom[entry] = entry
        preds: Dict[int, List[int]] = {node: [] for node in rpo}
        for node in rpo:
            for s in succ.get(node, ()):
                if s in preds:
                    preds[s].append(node)

        def intersect(a: int, b: int) -> int:
            while a != b:
                while rpo_index[a] > rpo_index[b]:
                    a = idom[a]
                while rpo_index[b] > rpo_index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in rpo:
                if node == entry:
                    continue
                candidates = [p for p in preds[node] if idom[p] is not None]
                if not candidates:
                    continue
                new = candidates[0]
                for p in candidates[1:]:
                    new = intersect(new, p)
                if idom[node] != new:
                    idom[node] = new
                    changed = True
        idom[entry] = None
        return idom

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def reconvergence_pc(self, branch_pc: int) -> Optional[int]:
        """PC of the immediate post-dominator block of a branch.

        This is the reconvergence point the baseline stack pushes.
        ``None`` when the branch only post-dominated by the virtual
        exit (paths never rejoin before exiting).
        """
        block = self.blocks[self.block_of_pc[branch_pc]]
        ip = self.ipdom.get(block.index)
        if ip is None or ip == VIRTUAL_EXIT:
            return None
        return self.blocks[ip].start

    def join_blocks(self) -> List[int]:
        """Blocks that are reconvergence points of some divergent branch."""
        joins = set()
        for block in self.blocks:
            last = self.program[block.last_pc]
            if last.op is Op.BRA and last.is_conditional:
                rec = self.reconvergence_pc(block.last_pc)
                if rec is not None:
                    joins.add(self.block_of_pc[rec])
        return sorted(joins)

    def divergence_pc_for_join(self, join_block: int) -> Optional[int]:
        """``PCdiv`` for a join block: last instruction of its immediate
        dominator (paper's conservative choice for unstructured flow)."""
        dom = self.idom.get(join_block)
        if dom is None or dom == VIRTUAL_EXIT:
            return None
        return self.blocks[dom].last_pc

    def dominates(self, a: int, b: int) -> bool:
        """Whether block ``a`` dominates block ``b``."""
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            parent = self.idom.get(node)
            node = parent if parent != node else None
        return False

    def back_edges(self) -> List[Tuple[int, int]]:
        """Edges (src, dst) where dst dominates src (natural loops)."""
        edges = []
        for block in self.blocks:
            for s in block.successors:
                if self.dominates(s, block.index):
                    edges.append((block.index, s))
        return edges
