"""Instruction set definition for the SIMT reproduction ISA.

The ISA is a small predicated RISC machine modelled after the subset of
the Tesla/Fermi ISA that the paper's workloads exercise.  Each opcode
belongs to one :class:`OpClass`, which determines the execution-unit
group it issues to in the timing model (paper Figure 1):

* ``MAD``  — integer/float arithmetic, logic, comparisons, selects.
* ``SFU``  — transcendentals (reciprocal, square root, sin, cos, ...).
* ``LSU``  — loads, stores and atomics (global and shared spaces).
* ``CTRL`` — branches, barriers and thread exit.  Control instructions
  occupy an issue slot and a MAD-group cycle, like on Fermi where the
  branch unit shares the main datapath issue port.

Values are dynamically typed at the functional level: registers hold
64-bit floats, and integer operations round-trip through ``int64``.
This is exact for the integer ranges used by addresses and indices in
the workloads (``|x| < 2**53``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Tuple, Union


class OpClass(enum.Enum):
    """Execution-unit class an opcode issues to."""

    MAD = "mad"
    SFU = "sfu"
    LSU = "lsu"
    CTRL = "ctrl"


class Op(enum.Enum):
    """Opcodes.  The value is the assembly mnemonic."""

    # MAD-class arithmetic / logic.
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAD = "mad"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    ABS = "abs"
    NEG = "neg"
    FLOOR = "floor"
    I2F = "i2f"
    F2I = "f2i"
    SETP = "setp"
    SEL = "sel"
    NOP = "nop"
    # SFU-class transcendentals.
    RCP = "rcp"
    DIV = "div"
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    SIN = "sin"
    COS = "cos"
    EX2 = "ex2"
    LG2 = "lg2"
    # LSU-class memory operations.
    LD = "ld"
    ST = "st"
    ATOM_ADD = "atom.add"
    ATOM_MIN = "atom.min"
    ATOM_MAX = "atom.max"
    # Control flow.
    BRA = "bra"
    BAR = "bar"
    EXIT = "exit"


_OP_CLASS = {
    Op.MOV: OpClass.MAD,
    Op.ADD: OpClass.MAD,
    Op.SUB: OpClass.MAD,
    Op.MUL: OpClass.MAD,
    Op.MAD: OpClass.MAD,
    Op.MIN: OpClass.MAD,
    Op.MAX: OpClass.MAD,
    Op.AND: OpClass.MAD,
    Op.OR: OpClass.MAD,
    Op.XOR: OpClass.MAD,
    Op.NOT: OpClass.MAD,
    Op.SHL: OpClass.MAD,
    Op.SHR: OpClass.MAD,
    Op.ABS: OpClass.MAD,
    Op.NEG: OpClass.MAD,
    Op.FLOOR: OpClass.MAD,
    Op.I2F: OpClass.MAD,
    Op.F2I: OpClass.MAD,
    Op.SETP: OpClass.MAD,
    Op.SEL: OpClass.MAD,
    Op.NOP: OpClass.MAD,
    Op.RCP: OpClass.SFU,
    Op.DIV: OpClass.SFU,
    Op.SQRT: OpClass.SFU,
    Op.RSQRT: OpClass.SFU,
    Op.SIN: OpClass.SFU,
    Op.COS: OpClass.SFU,
    Op.EX2: OpClass.SFU,
    Op.LG2: OpClass.SFU,
    Op.LD: OpClass.LSU,
    Op.ST: OpClass.LSU,
    Op.ATOM_ADD: OpClass.LSU,
    Op.ATOM_MIN: OpClass.LSU,
    Op.ATOM_MAX: OpClass.LSU,
    Op.BRA: OpClass.CTRL,
    Op.BAR: OpClass.CTRL,
    Op.EXIT: OpClass.CTRL,
}

#: Opcodes that read memory.
MEMORY_READ_OPS = frozenset({Op.LD, Op.ATOM_ADD, Op.ATOM_MIN, Op.ATOM_MAX})
#: Opcodes that write memory.
MEMORY_WRITE_OPS = frozenset({Op.ST, Op.ATOM_ADD, Op.ATOM_MIN, Op.ATOM_MAX})
#: Opcodes that may change control flow.
BRANCH_OPS = frozenset({Op.BRA})


class CmpOp(enum.Enum):
    """Comparison operators for :data:`Op.SETP`."""

    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"


class MemSpace(enum.Enum):
    """Address spaces for memory operations."""

    GLOBAL = "global"
    SHARED = "shared"


class OperandKind(enum.Enum):
    REG = "r"
    IMM = "i"
    SPECIAL = "s"


#: Special register names readable through :func:`special`.
SPECIAL_NAMES = ("tid", "ctaid", "ntid", "nctaid", "laneid", "warpid")


@dataclass(frozen=True)
class Operand:
    """A source operand: register, immediate or special value.

    ``value`` is the register index for ``REG``, the literal for
    ``IMM``, and either a special-register name or ``("param", i)``
    for ``SPECIAL``.
    """

    kind: OperandKind
    value: Union[int, float, str, Tuple[str, int]]

    def __repr__(self) -> str:
        if self.kind is OperandKind.REG:
            return "r%d" % self.value
        if self.kind is OperandKind.IMM:
            return repr(self.value)
        if isinstance(self.value, tuple):
            return "%%%s%d" % self.value
        return "%%%s" % self.value


def reg(index: int) -> Operand:
    """Register operand ``r<index>``."""
    if index < 0:
        raise ValueError("register index must be non-negative, got %d" % index)
    return Operand(OperandKind.REG, index)


def imm(value: Union[int, float]) -> Operand:
    """Immediate operand."""
    return Operand(OperandKind.IMM, value)


def special(name: str, index: Optional[int] = None) -> Operand:
    """Special-register operand (``%tid``, ``%ctaid``, ``%param0``...)."""
    if name == "param":
        if index is None:
            raise ValueError("param specials need an index")
        return Operand(OperandKind.SPECIAL, ("param", index))
    if name not in SPECIAL_NAMES:
        raise ValueError("unknown special register %r" % name)
    return Operand(OperandKind.SPECIAL, name)


@dataclass
class Instruction:
    """One decoded instruction.

    Fields filled by compiler passes after assembly:

    * ``reconv_pc`` — for divergent branches, the immediate
      post-dominator PC used by the baseline stack model.
    * ``sync_pcdiv`` — when this instruction sits at a reconvergence
      point, the divergence-point address ``PCdiv`` (last instruction of
      the immediate dominator).  Used by SBI's selective
      synchronization barrier (paper section 3.3).
    """

    op: Op
    dst: Optional[int] = None
    srcs: Tuple[Operand, ...] = ()
    target: Optional[Union[str, int]] = None
    space: Optional[MemSpace] = None
    cmp: Optional[CmpOp] = None
    pred: Optional[int] = None
    pred_neg: bool = False
    offset: int = 0
    # Filled by repro.isa.cfg / repro.isa.layout.
    reconv_pc: Optional[int] = None
    sync_pcdiv: Optional[int] = None
    pc: int = field(default=-1)

    # Opcode, operands and predicate never change once a program is
    # assembled, so the derived views below are computed once per
    # instruction (they sit on scheduler/scoreboard hot paths).

    @cached_property
    def op_class(self) -> OpClass:
        return _OP_CLASS[self.op]

    @cached_property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_conditional(self) -> bool:
        return self.op is Op.BRA and self.srcs != ()

    @cached_property
    def is_memory(self) -> bool:
        return self.op_class is OpClass.LSU

    @property
    def reads_memory(self) -> bool:
        return self.op in MEMORY_READ_OPS

    @property
    def writes_memory(self) -> bool:
        return self.op in MEMORY_WRITE_OPS

    def source_registers(self) -> Tuple[int, ...]:
        """Register indices read by this instruction (incl. predicate)."""
        regs = [s.value for s in self.srcs if s.kind is OperandKind.REG]
        if self.pred is not None:
            regs.append(self.pred)
        return tuple(regs)

    @cached_property
    def hazard_regs(self) -> Tuple[int, ...]:
        """Cached :meth:`source_registers` for the scoreboard."""
        return self.source_registers()

    @cached_property
    def hazard_mask(self) -> int:
        """Bit-mask of every register this instruction reads or writes
        (sources, predicate, destination) — the scoreboard's one-AND
        conflict prefilter."""
        mask = 0
        for r in self.hazard_regs:
            mask |= 1 << r
        if self.dst is not None:
            mask |= 1 << self.dst
        return mask

    def __repr__(self) -> str:
        parts = []
        if self.pred is not None:
            parts.append("@%sr%d" % ("!" if self.pred_neg else "", self.pred))
        name = self.op.value
        if self.cmp is not None:
            name += "." + self.cmp.value
        if self.space is not None:
            name += "." + self.space.value
        parts.append(name)
        ops = []
        if self.dst is not None:
            ops.append("r%d" % self.dst)
        ops.extend(repr(s) for s in self.srcs)
        if self.target is not None:
            ops.append(str(self.target))
        if ops:
            parts.append(", ".join(ops))
        text = " ".join(parts)
        if self.offset:
            text += " +%d" % self.offset
        return text


def op_class_of(op: Op) -> OpClass:
    """Execution-unit class of an opcode."""
    return _OP_CLASS[op]
