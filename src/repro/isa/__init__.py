"""SIMT instruction set, assembler, kernel builder and CFG analyses.

This package is the compiler-side substrate of the reproduction: it
plays the role that nvcc + the Tesla ISA play in the paper.  Kernels are
written against :class:`repro.isa.builder.KernelBuilder`, assembled into
a :class:`repro.isa.program.Program`, and post-processed by
:mod:`repro.isa.layout` which validates thread-frontier code layout and
inserts the selective-synchronization markers used by SBI reconvergence
constraints (paper section 3.3).
"""

from repro.isa.instructions import (
    CmpOp,
    Instruction,
    MemSpace,
    Op,
    OpClass,
    Operand,
    imm,
    reg,
    special,
)
from repro.isa.program import Program
from repro.isa.builder import KernelBuilder, Kernel

__all__ = [
    "CmpOp",
    "Instruction",
    "Kernel",
    "KernelBuilder",
    "MemSpace",
    "Op",
    "OpClass",
    "Operand",
    "Program",
    "imm",
    "reg",
    "special",
]
