"""Kernel construction DSL.

:class:`KernelBuilder` is the front end used to write the workloads: a
thin structured-assembly layer over :class:`repro.isa.program.Program`.
It allocates registers by name, resolves labels, and runs the layout /
reconvergence / sync-marker pipeline on :meth:`KernelBuilder.build`.

Example
-------
>>> kb = KernelBuilder("saxpy")
>>> i, x, y, a = kb.regs("i", "x", "y", "a")
>>> kb.mov(i, kb.tid)
>>> kb.mul(i, i, 4)
>>> kb.ld(x, kb.param(0), index=i)
>>> kb.ld(y, kb.param(1), index=i)
>>> kb.mad(y, x, kb.param(2), y)
>>> kb.st(kb.param(1), y, index=i)
>>> kb.exit_()
>>> kernel = kb.build(cta_size=64, grid_size=4)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.isa import layout as layout_pass
from repro.isa.instructions import (
    CmpOp,
    Instruction,
    MemSpace,
    Op,
    Operand,
    OperandKind,
    imm,
    reg,
    special,
)
from repro.isa.program import AssemblyError, Program

#: Anything accepted as a source operand by the builder.
SrcLike = Union[Operand, int, float]


@dataclass
class Kernel:
    """A launchable kernel: program + geometry + launch parameters.

    ``params`` are scalar launch arguments (base addresses, sizes...)
    read through ``%param<i>`` specials.  ``shared_bytes`` is the
    per-CTA shared-memory allocation.
    """

    name: str
    program: Program
    cta_size: int
    grid_size: int
    params: Tuple[float, ...] = ()
    shared_bytes: int = 0
    nregs: int = 32

    @property
    def total_threads(self) -> int:
        return self.cta_size * self.grid_size

    def with_params(self, *params: float) -> "Kernel":
        """Copy of the kernel with different launch parameters."""
        return Kernel(
            self.name,
            self.program,
            self.cta_size,
            self.grid_size,
            tuple(params),
            self.shared_bytes,
            self.nregs,
        )


class KernelBuilder:
    """Structured assembler for the reproduction ISA."""

    def __init__(self, name: str, nregs: int = 32) -> None:
        self.name = name
        self.nregs = nregs
        self._instrs: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._reg_names: Dict[str, int] = {}
        self._next_reg = 0
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Registers and operands
    # ------------------------------------------------------------------

    def reg(self, name: str) -> Operand:
        """Allocate (or look up) a named register."""
        if name not in self._reg_names:
            if self._next_reg >= self.nregs:
                raise AssemblyError(
                    "out of registers (%d) in kernel %s" % (self.nregs, self.name)
                )
            self._reg_names[name] = self._next_reg
            self._next_reg += 1
        return reg(self._reg_names[name])

    def regs(self, *names: str) -> Tuple[Operand, ...]:
        """Allocate several named registers at once."""
        return tuple(self.reg(n) for n in names)

    @property
    def tid(self) -> Operand:
        """Thread index within the CTA (``%tid``)."""
        return special("tid")

    @property
    def ctaid(self) -> Operand:
        return special("ctaid")

    @property
    def ntid(self) -> Operand:
        return special("ntid")

    @property
    def nctaid(self) -> Operand:
        return special("nctaid")

    @property
    def laneid(self) -> Operand:
        return special("laneid")

    @property
    def warpid(self) -> Operand:
        return special("warpid")

    def param(self, index: int) -> Operand:
        """Launch parameter ``%param<index>``."""
        return special("param", index)

    @staticmethod
    def _src(value: SrcLike) -> Operand:
        if isinstance(value, Operand):
            return value
        if isinstance(value, (int, float)):
            return imm(value)
        raise AssemblyError("bad source operand %r" % (value,))

    @staticmethod
    def _dst(value: Operand) -> int:
        if not isinstance(value, Operand) or value.kind is not OperandKind.REG:
            raise AssemblyError("destination must be a register, got %r" % (value,))
        return value.value

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit(self, instr: Instruction) -> Instruction:
        self._instrs.append(instr)
        return instr

    def _alu(
        self,
        op: Op,
        dst: Operand,
        *srcs: SrcLike,
        pred: Optional[Operand] = None,
        pred_neg: bool = False,
    ) -> Instruction:
        return self._emit(
            Instruction(
                op,
                dst=self._dst(dst),
                srcs=tuple(self._src(s) for s in srcs),
                pred=None if pred is None else self._dst(pred),
                pred_neg=pred_neg,
            )
        )

    # MAD-class -------------------------------------------------------

    def mov(self, dst, src, **kw) -> Instruction:
        return self._alu(Op.MOV, dst, src, **kw)

    def add(self, dst, a, b, **kw) -> Instruction:
        return self._alu(Op.ADD, dst, a, b, **kw)

    def sub(self, dst, a, b, **kw) -> Instruction:
        return self._alu(Op.SUB, dst, a, b, **kw)

    def mul(self, dst, a, b, **kw) -> Instruction:
        return self._alu(Op.MUL, dst, a, b, **kw)

    def mad(self, dst, a, b, c, **kw) -> Instruction:
        """``dst = a * b + c`` (the unit the MAD group is named after)."""
        return self._alu(Op.MAD, dst, a, b, c, **kw)

    def min_(self, dst, a, b, **kw) -> Instruction:
        return self._alu(Op.MIN, dst, a, b, **kw)

    def max_(self, dst, a, b, **kw) -> Instruction:
        return self._alu(Op.MAX, dst, a, b, **kw)

    def and_(self, dst, a, b, **kw) -> Instruction:
        return self._alu(Op.AND, dst, a, b, **kw)

    def or_(self, dst, a, b, **kw) -> Instruction:
        return self._alu(Op.OR, dst, a, b, **kw)

    def xor(self, dst, a, b, **kw) -> Instruction:
        return self._alu(Op.XOR, dst, a, b, **kw)

    def not_(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.NOT, dst, a, **kw)

    def shl(self, dst, a, b, **kw) -> Instruction:
        return self._alu(Op.SHL, dst, a, b, **kw)

    def shr(self, dst, a, b, **kw) -> Instruction:
        return self._alu(Op.SHR, dst, a, b, **kw)

    def abs_(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.ABS, dst, a, **kw)

    def neg(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.NEG, dst, a, **kw)

    def floor(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.FLOOR, dst, a, **kw)

    def i2f(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.I2F, dst, a, **kw)

    def f2i(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.F2I, dst, a, **kw)

    def sel(self, dst, cond, a, b, **kw) -> Instruction:
        """``dst = a if cond != 0 else b`` (branch-free select)."""
        return self._alu(Op.SEL, dst, cond, a, b, **kw)

    def nop(self) -> Instruction:
        return self._emit(Instruction(Op.NOP))

    def setp(self, dst, cmp: CmpOp, a, b, **kw) -> Instruction:
        """Set predicate register: ``dst = 1 if (a cmp b) else 0``."""
        instr = self._alu(Op.SETP, dst, a, b, **kw)
        instr.cmp = cmp
        return instr

    # SFU-class -------------------------------------------------------

    def rcp(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.RCP, dst, a, **kw)

    def div(self, dst, a, b, **kw) -> Instruction:
        return self._alu(Op.DIV, dst, a, b, **kw)

    def sqrt(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.SQRT, dst, a, **kw)

    def rsqrt(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.RSQRT, dst, a, **kw)

    def sin(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.SIN, dst, a, **kw)

    def cos(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.COS, dst, a, **kw)

    def ex2(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.EX2, dst, a, **kw)

    def lg2(self, dst, a, **kw) -> Instruction:
        return self._alu(Op.LG2, dst, a, **kw)

    # LSU-class -------------------------------------------------------

    def _address(self, base: SrcLike, index: Optional[SrcLike]) -> Tuple[Operand, ...]:
        srcs = [self._src(base)]
        if index is not None:
            srcs.append(self._src(index))
        return tuple(srcs)

    def ld(
        self,
        dst,
        base: SrcLike,
        index: Optional[SrcLike] = None,
        offset: int = 0,
        space: MemSpace = MemSpace.GLOBAL,
        pred: Optional[Operand] = None,
        pred_neg: bool = False,
    ) -> Instruction:
        """``dst = mem[base + index + offset]`` (4-byte word).

        ``index`` is a per-thread byte offset register; ``offset`` a
        static byte displacement.
        """
        return self._emit(
            Instruction(
                Op.LD,
                dst=self._dst(dst),
                srcs=self._address(base, index),
                space=space,
                offset=offset,
                pred=None if pred is None else self._dst(pred),
                pred_neg=pred_neg,
            )
        )

    def st(
        self,
        base: SrcLike,
        src: SrcLike,
        index: Optional[SrcLike] = None,
        offset: int = 0,
        space: MemSpace = MemSpace.GLOBAL,
        pred: Optional[Operand] = None,
        pred_neg: bool = False,
    ) -> Instruction:
        """``mem[base + index + offset] = src``."""
        return self._emit(
            Instruction(
                Op.ST,
                dst=None,
                srcs=self._address(base, index) + (self._src(src),),
                space=space,
                offset=offset,
                pred=None if pred is None else self._dst(pred),
                pred_neg=pred_neg,
            )
        )

    def atom_add(
        self,
        dst: Optional[Operand],
        base: SrcLike,
        src: SrcLike,
        index: Optional[SrcLike] = None,
        offset: int = 0,
        space: MemSpace = MemSpace.GLOBAL,
        pred: Optional[Operand] = None,
        pred_neg: bool = False,
    ) -> Instruction:
        """Atomic ``mem[addr] += src``; old value to ``dst`` if given."""
        return self._emit(
            Instruction(
                Op.ATOM_ADD,
                dst=None if dst is None else self._dst(dst),
                srcs=self._address(base, index) + (self._src(src),),
                space=space,
                offset=offset,
                pred=None if pred is None else self._dst(pred),
                pred_neg=pred_neg,
            )
        )

    # Control flow ----------------------------------------------------

    def label(self, name: Optional[str] = None) -> str:
        """Define a label at the current position; returns its name."""
        if name is None:
            name = "L%d" % self._label_counter
            self._label_counter += 1
        if name in self._labels:
            raise AssemblyError("duplicate label %r" % name)
        self._labels[name] = len(self._instrs)
        return name

    def bra(
        self,
        target: str,
        cond: Optional[Operand] = None,
        neg: bool = False,
    ) -> Instruction:
        """Branch to ``target``; taken per-thread iff ``cond != 0``
        (or ``== 0`` with ``neg=True``).  Unconditional without ``cond``."""
        srcs: Tuple[Operand, ...] = ()
        if cond is not None:
            srcs = (self._src(cond),)
        return self._emit(
            Instruction(Op.BRA, srcs=srcs, target=target, pred_neg=neg)
        )

    def bar(self) -> Instruction:
        """CTA-wide synchronization barrier (``__syncthreads``)."""
        return self._emit(Instruction(Op.BAR))

    def exit_(self) -> Instruction:
        return self._emit(Instruction(Op.EXIT))

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    @property
    def used_registers(self) -> int:
        return self._next_reg

    def build(
        self,
        cta_size: int,
        grid_size: int = 1,
        params: Tuple[float, ...] = (),
        shared_bytes: int = 0,
        layout: str = "frontier",
    ) -> Kernel:
        """Assemble, run layout passes, and wrap into a :class:`Kernel`."""
        program = Program(list(self._instrs), dict(self._labels))
        program = layout_pass.finalize(program, layout=layout)
        return Kernel(
            name=self.name,
            program=program,
            cta_size=cta_size,
            grid_size=grid_size,
            params=tuple(float(p) for p in params),
            shared_bytes=shared_bytes,
            nregs=max(self.nregs, self._next_reg),
        )
