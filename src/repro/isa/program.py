"""Program container and label resolution (the assembler back half).

A :class:`Program` is an ordered list of :class:`Instruction` with
branch targets resolved to instruction indices (PCs are instruction
indices, which is equivalent to fixed-width encoding).  Programs are
built through :class:`repro.isa.builder.KernelBuilder`; this module
performs resolution, validation and pretty-printing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.isa.instructions import Instruction, Op


class AssemblyError(Exception):
    """Raised for malformed programs (unknown labels, bad operands...)."""


class Program:
    """An assembled kernel body.

    Parameters
    ----------
    instructions:
        Instruction sequence.  Branch ``target`` fields may be label
        strings, resolved against ``labels``.
    labels:
        Mapping from label name to instruction index.
    """

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Optional[Dict[str, int]] = None,
    ) -> None:
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self._resolve()
        self._validate()

    def _resolve(self) -> None:
        for pc, instr in enumerate(self.instructions):
            instr.pc = pc
            if instr.op is Op.BRA and isinstance(instr.target, str):
                if instr.target not in self.labels:
                    raise AssemblyError("undefined label %r" % instr.target)
                instr.target = self.labels[instr.target]

    def _validate(self) -> None:
        n = len(self.instructions)
        if n == 0:
            raise AssemblyError("empty program")
        for instr in self.instructions:
            if instr.op is Op.BRA:
                if not isinstance(instr.target, int):
                    raise AssemblyError("unresolved branch target %r" % instr.target)
                if not 0 <= instr.target < n:
                    raise AssemblyError(
                        "branch target %d out of range [0, %d)" % (instr.target, n)
                    )
        last = self.instructions[-1]
        if last.op not in (Op.EXIT, Op.BRA):
            raise AssemblyError(
                "program must end with exit or an unconditional branch, got %r" % last
            )

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def __iter__(self) -> Iterable[Instruction]:
        return iter(self.instructions)

    def label_at(self, pc: int) -> Optional[str]:
        """Label attached to ``pc``, if any (first match)."""
        for name, target in self.labels.items():
            if target == pc:
                return name
        return None

    def listing(self) -> str:
        """Human-readable assembly listing with PCs, labels and markers."""
        lines = []
        by_pc: Dict[int, List[str]] = {}
        for name, target in self.labels.items():
            by_pc.setdefault(target, []).append(name)
        for pc, instr in enumerate(self.instructions):
            for name in sorted(by_pc.get(pc, ())):
                lines.append("%s:" % name)
            notes = []
            if instr.sync_pcdiv is not None:
                notes.append("sync(PCdiv=%d)" % instr.sync_pcdiv)
            if instr.reconv_pc is not None:
                notes.append("reconv=%d" % instr.reconv_pc)
            note = ("   ; " + ", ".join(notes)) if notes else ""
            lines.append("  %3d: %s%s" % (pc, instr, note))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "Program(%d instructions, %d labels)" % (
            len(self.instructions),
            len(self.labels),
        )
