"""Thread-frontier code layout and synchronization-marker insertion.

The paper relies on two compiler-side guarantees (sections 3.1 and 3.3):

1. Code is laid out in thread-frontier order, so that scheduling the
   minimum-PC warp-split reconverges threads at the earliest point.
   The paper observes nvcc already produces this order for every kernel
   but one (TMD1).  :func:`reorder_frontier` enforces the order
   (topological order of forward edges, stable w.r.t. source order) and
   :func:`validate_frontier_layout` reports violations.
   :func:`permute_blocks` deliberately produces a *bad* layout, used to
   reproduce the TMD1 data point.

2. Each reconvergence point carries a synchronization marker whose
   payload is ``PCdiv``, the last instruction of the immediate
   dominator of the join block.  The SBI secondary warp-split is
   suspended at the marker while ``PCdiv < CPC1 < PCrec``.  Markers are
   metadata on the join-point instruction (like Tesla's ``.join``
   flags): they cost no issue slot, matching "placed at the same
   addresses as reconvergence markers in the Tesla binary code".

:func:`finalize` bundles the passes and is called by
:meth:`repro.isa.builder.KernelBuilder.build`.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Optional, Sequence

from repro.isa.cfg import ControlFlowGraph
from repro.isa.instructions import Instruction, Op
from repro.isa.program import AssemblyError, Program


def annotate_reconvergence(program: Program) -> ControlFlowGraph:
    """Set ``reconv_pc`` on every conditional branch (IPDOM)."""
    cfg = ControlFlowGraph(program)
    for instr in program:
        if instr.op is Op.BRA and instr.is_conditional:
            instr.reconv_pc = cfg.reconvergence_pc(instr.pc)
    return cfg


def insert_sync_markers(program: Program, cfg: Optional[ControlFlowGraph] = None) -> int:
    """Attach ``sync_pcdiv`` to the first instruction of each join block.

    Returns the number of markers placed.
    """
    if cfg is None:
        cfg = ControlFlowGraph(program)
    count = 0
    for join in cfg.join_blocks():
        pcdiv = cfg.divergence_pc_for_join(join)
        if pcdiv is None:
            continue
        head = cfg.blocks[join].start
        program[head].sync_pcdiv = pcdiv
        count += 1
    return count


def validate_frontier_layout(program: Program) -> List[str]:
    """Check the thread-frontier layout property.

    For every conditional branch, every *forward* successor and the
    reconvergence point must sit at a higher address than the branch;
    backward successors must be back edges (loop headers that dominate
    the branch).  Returns a list of human-readable violations (empty =
    layout is frontier-compatible).
    """
    cfg = ControlFlowGraph(program)
    violations = []
    for block in cfg.blocks:
        last = program[block.last_pc]
        for succ in block.successors:
            start = cfg.blocks[succ].start
            if start > block.last_pc:
                continue
            if cfg.dominates(succ, block.index):
                continue  # back edge to a loop header: allowed
            violations.append(
                "control transfer at pc %d targets lower non-dominating "
                "block at pc %d" % (block.last_pc, start)
            )
        if last.op is not Op.BRA or not last.is_conditional:
            continue
        rec = cfg.reconvergence_pc(block.last_pc)
        if rec is not None and rec <= block.last_pc:
            if not cfg.dominates(cfg.block_of_pc[rec], block.index):
                violations.append(
                    "reconvergence point %d below divergent branch %d"
                    % (rec, block.last_pc)
                )
    return violations


def _rebuild(program: Program, cfg: ControlFlowGraph, order: Sequence[int]) -> Program:
    """Re-emit ``program`` with blocks in ``order``, fixing fall-through.

    Blocks whose fall-through successor is no longer adjacent get an
    explicit unconditional branch appended.
    """
    if sorted(order) != list(range(len(cfg.blocks))):
        raise AssemblyError("order must be a permutation of block indices")
    n = len(program)
    new_instrs: List[Instruction] = []
    new_pc_of_old: Dict[int, int] = {}
    pending_fallthrough: List[tuple] = []  # (position in new_instrs, old target pc)
    for pos, bidx in enumerate(order):
        block = cfg.blocks[bidx]
        for pc in block.pcs():
            new_pc_of_old[pc] = len(new_instrs)
            new_instrs.append(dataclasses.replace(program[pc]))
        last = program[block.last_pc]
        falls_through = last.op not in (Op.EXIT,) and not (
            last.op is Op.BRA and not last.is_conditional
        )
        if falls_through and block.end < n:
            next_is_adjacent = (
                pos + 1 < len(order) and cfg.blocks[order[pos + 1]].start == block.end
            )
            if not next_is_adjacent:
                pending_fallthrough.append((len(new_instrs), block.end))
                new_instrs.append(Instruction(Op.BRA))
        elif falls_through and block.end >= n:
            pass  # fall-off end; validation in Program will catch if last
    for position, old_target in pending_fallthrough:
        new_instrs[position].target = old_target  # still old pc; remapped below
    for instr in new_instrs:
        if instr.op is Op.BRA:
            if not isinstance(instr.target, int):
                raise AssemblyError("rebuild expects resolved branch targets")
            instr.target = new_pc_of_old[instr.target]
        instr.reconv_pc = None
        instr.sync_pcdiv = None
    labels = {name: new_pc_of_old[pc] for name, pc in program.labels.items()}
    return Program(new_instrs, labels)


def reorder_frontier(program: Program) -> Program:
    """Reorder blocks into thread-frontier order.

    Topological order over forward edges (back edges removed), with
    ties broken by source order — the practical equivalent of laying
    out blocks by thread-frontier priority for the structured and
    mildly unstructured kernels in the suite.  Idempotent on programs
    that already satisfy the property.
    """
    cfg = ControlFlowGraph(program)
    back = set(cfg.back_edges())
    indegree = {b.index: 0 for b in cfg.blocks}
    succs: Dict[int, List[int]] = {b.index: [] for b in cfg.blocks}
    for block in cfg.blocks:
        for s in block.successors:
            if (block.index, s) in back:
                continue
            succs[block.index].append(s)
            indegree[s] += 1
    heap = [b.index for b in cfg.blocks if indegree[b.index] == 0]
    heapq.heapify(heap)
    order: List[int] = []
    while heap:
        node = heapq.heappop(heap)
        order.append(node)
        for s in succs[node]:
            indegree[s] -= 1
            if indegree[s] == 0:
                heapq.heappush(heap, s)
    if len(order) != len(cfg.blocks):
        raise AssemblyError("CFG has a cycle through forward edges only")
    if order == [b.index for b in cfg.blocks]:
        return program  # already in frontier order
    return _rebuild(program, cfg, order)


def permute_blocks(program: Program, order: Sequence[int]) -> Program:
    """Apply an explicit block permutation (used to build TMD1's bad layout)."""
    cfg = ControlFlowGraph(program)
    return _rebuild(program, cfg, order)


def finalize(program: Program, layout: str = "frontier") -> Program:
    """Run the full compiler pipeline on an assembled program.

    ``layout``:

    * ``"frontier"`` — reorder into thread-frontier order (default),
    * ``"as_is"``    — keep source order (used for deliberately bad
      layouts such as TMD1).

    Both variants then annotate branch reconvergence points and insert
    SBI synchronization markers.
    """
    if layout == "frontier":
        program = reorder_frontier(program)
    elif layout != "as_is":
        raise ValueError("unknown layout mode %r" % layout)
    cfg = annotate_reconvergence(program)
    insert_sync_markers(program, cfg)
    return program
