"""Analysis and reporting tools: pipeline traces (Figure 2), table
formatting, and the experiment harness shared by the benchmarks."""

from repro.analysis.pipeline_trace import trace_kernel, render_trace, figure2_example
from repro.analysis.report import format_table, gmean, speedup_table
from repro.analysis.experiments import run_suite, suite_ipc_table

__all__ = [
    "figure2_example",
    "format_table",
    "gmean",
    "render_trace",
    "run_suite",
    "speedup_table",
    "suite_ipc_table",
    "trace_kernel",
]
