"""Analysis and reporting tools: pipeline traces (Figure 2), table
formatting, and the legacy experiment shim shared by the benchmarks.

``experiments`` is imported lazily: it sits on top of
:mod:`repro.api`, whose result types import
:mod:`repro.analysis.report` — loading it eagerly here would close an
import cycle.
"""

from repro.analysis.pipeline_trace import trace_kernel, render_trace, figure2_example
from repro.analysis.report import format_table, gmean, hmean, speedup_table

__all__ = [
    "figure2_example",
    "format_table",
    "gmean",
    "hmean",
    "render_trace",
    "run_suite",
    "speedup_table",
    "suite_ipc_table",
    "trace_kernel",
]

_LAZY = ("experiments", "run_suite", "suite_ipc_table")


def __getattr__(name):
    if name in _LAZY:
        import importlib

        experiments = importlib.import_module("repro.analysis.experiments")
        if name == "experiments":
            return experiments
        return getattr(experiments, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
