"""Analysis and reporting tools: pipeline traces (Figure 2) and table
formatting.  Experiment running lives in :mod:`repro.api` (the
deprecated ``repro.analysis.experiments`` shim has been removed).
"""

from repro.analysis.pipeline_trace import trace_kernel, render_trace, figure2_example
from repro.analysis.report import format_table, gmean, hmean, speedup_table

__all__ = [
    "figure2_example",
    "format_table",
    "gmean",
    "hmean",
    "render_trace",
    "speedup_table",
    "trace_kernel",
]
