"""Experiment engine: parallel sweeps with process- and disk-level caches.

Used by the ``benchmarks/`` tree (one module per table/figure) and by
``examples``.  Every (workload, size, config) cell is memoised at two
levels:

* an in-process cache, so a pytest-benchmark session reuses
  simulations across reporting fixtures, and
* an optional on-disk JSON cache (``cache_dir`` argument or the
  ``REPRO_CACHE_DIR`` environment variable), so re-running a sweep
  with a warm cache performs no simulation at all.

Both caches key on *every* field of the configuration dataclass
(nested :class:`~repro.timing.config.SMConfig` included), so sweeps
over scoreboard kind, CCT capacity, L1 geometry or DRAM parameters
never collide.  :func:`run_suite` can fan uncached cells out over a
``ProcessPoolExecutor``; simulations are single-threaded and
independent, so the Figure-7 grid parallelises embarrassingly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core import presets
from repro.core.gpu import simulate_device
from repro.core.simulator import simulate
from repro.timing.config import GPUConfig, SMConfig
from repro.timing.stats import DeviceStats, Stats
from repro.workloads import get_workload
from repro.workloads.suite import IRREGULAR, MEAN_EXCLUDED, REGULAR

AnyConfig = Union[SMConfig, GPUConfig]
AnyStats = Union[Stats, DeviceStats]

#: In-process memo: (workload, size, config_key) -> stats.
_CACHE: Dict[Tuple, AnyStats] = {}

#: Environment variable naming the persistent on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump when the result schema or simulator semantics change; stale
#: disk entries are ignored rather than mis-loaded.
CACHE_VERSION = 1


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------


def _freeze(value):
    if isinstance(value, dict):
        return tuple((k, _freeze(v)) for k, v in sorted(value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def config_key(config: AnyConfig) -> Tuple:
    """Hashable key covering every field of ``config``.

    Derived from ``dataclasses.asdict``, so new fields are picked up
    automatically and nested configs (``GPUConfig.sm``) are included.
    """
    return (type(config).__name__,) + _freeze(dataclasses.asdict(config))


def config_hash(config: AnyConfig) -> str:
    """Stable hex digest of the complete configuration."""
    payload = {
        "type": type(config).__name__,
        "fields": dataclasses.asdict(config),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def _cell_hash(workload: str, size: str, config: AnyConfig) -> str:
    payload = {
        "version": CACHE_VERSION,
        "workload": workload,
        "size": size,
        "config": config_hash(config),
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------


def _resolve_cache_dir(cache_dir: Optional[str]) -> Optional[str]:
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    return cache_dir


def _cache_path(cache_dir: str, workload: str, size: str, config: AnyConfig) -> str:
    name = "%s-%s-%s.json" % (workload, size, _cell_hash(workload, size, config)[:20])
    return os.path.join(cache_dir, name)


def _stats_to_payload(stats: AnyStats) -> Dict:
    kind = "device" if isinstance(stats, DeviceStats) else "sm"
    return {"kind": kind, "data": stats.to_dict()}


def _stats_from_payload(payload: Dict) -> AnyStats:
    if payload["kind"] == "device":
        return DeviceStats.from_dict(payload["data"])
    return Stats.from_dict(payload["data"])


def _disk_load(
    cache_dir: str, workload: str, size: str, config: AnyConfig
) -> Optional[AnyStats]:
    path = _cache_path(cache_dir, workload, size, config)
    try:
        with open(path) as f:
            entry = json.load(f)
    except (OSError, ValueError):
        return None
    if entry.get("version") != CACHE_VERSION:
        return None
    try:
        return _stats_from_payload(entry["stats"])
    except (KeyError, TypeError):
        return None


def _disk_store(
    cache_dir: str, workload: str, size: str, config: AnyConfig, stats: AnyStats
) -> None:
    os.makedirs(cache_dir, exist_ok=True)
    entry = {
        "version": CACHE_VERSION,
        "workload": workload,
        "size": size,
        "config": {
            "type": type(config).__name__,
            "fields": dataclasses.asdict(config),
        },
        "stats": _stats_to_payload(stats),
    }
    path = _cache_path(cache_dir, workload, size, config)
    tmp = path + ".tmp.%d" % os.getpid()
    with open(tmp, "w") as f:
        json.dump(entry, f, indent=1, sort_keys=True, default=repr)
    os.replace(tmp, path)  # atomic under concurrent writers


def clear_cache() -> None:
    """Drop the in-process cache (tests; the disk cache is untouched)."""
    _CACHE.clear()


# ----------------------------------------------------------------------
# Single cells
# ----------------------------------------------------------------------


def _simulate_cell(workload: str, size: str, config: AnyConfig) -> Tuple[AnyStats, object]:
    inst = get_workload(workload, size)
    if isinstance(config, GPUConfig):
        stats: AnyStats = simulate_device(inst.kernel, inst.memory, config)
    else:
        stats = simulate(inst.kernel, inst.memory, config)
    return stats, inst


def run_one(
    workload: str,
    config: AnyConfig,
    size: str = "bench",
    verify: bool = False,
    cache: bool = True,
    cache_dir: Optional[str] = None,
) -> AnyStats:
    """Simulate one (workload, config) cell, with optional caching.

    ``config`` may be an :class:`SMConfig` (single SM) or a
    :class:`GPUConfig` (whole device).  ``verify=True`` always
    simulates so the functional outputs exist to be checked.
    """
    key = (workload, size, config_key(config))
    if cache and not verify and key in _CACHE:
        return _CACHE[key]
    disk_dir = _resolve_cache_dir(cache_dir) if cache else None
    if disk_dir and not verify:
        stats = _disk_load(disk_dir, workload, size, config)
        if stats is not None:
            _CACHE[key] = stats
            return stats
    stats, inst = _simulate_cell(workload, size, config)
    if verify and inst.numpy_check is not None:
        inst.numpy_check(inst.memory)
    if cache:
        _CACHE[key] = stats
        if disk_dir:
            _disk_store(disk_dir, workload, size, config, stats)
    return stats


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------


def run_suite(
    configs: Dict[str, AnyConfig],
    workloads: Sequence[str],
    size: str = "bench",
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, Dict[str, AnyStats]]:
    """{workload: {config_name: Stats}} over a workload list.

    ``jobs >= 2`` fans the uncached cells out over a
    ``ProcessPoolExecutor``; each worker honours the same disk cache,
    and results are folded back into this process's cache so later
    sequential calls are free.
    """
    results: Dict[str, Dict[str, AnyStats]] = {w: {} for w in workloads}
    cells = [(w, name) for w in workloads for name in configs]
    if jobs is None or jobs <= 1:
        for w, name in cells:
            results[w][name] = run_one(w, configs[name], size, cache_dir=cache_dir)
        return results

    disk_dir = _resolve_cache_dir(cache_dir)
    pending: List[Tuple[str, str, Tuple]] = []
    for w, name in cells:
        key = (w, size, config_key(configs[name]))
        if key not in _CACHE and disk_dir:
            stats = _disk_load(disk_dir, w, size, configs[name])
            if stats is not None:
                _CACHE[key] = stats
        if key in _CACHE:
            results[w][name] = _CACHE[key]
        else:
            pending.append((w, name, key))
    if pending:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            # One future per distinct cell: aliased config names (or a
            # repeated workload) share a simulation, as sequentially.
            futures: Dict[Tuple, object] = {}
            for w, name, key in pending:
                if key not in futures:
                    futures[key] = pool.submit(
                        run_one, w, configs[name], size, False, True, disk_dir
                    )
            for w, name, key in pending:
                stats = futures[key].result()
                _CACHE[key] = stats
                results[w][name] = stats
    return results


def suite_ipc_table(
    results: Dict[str, Dict[str, AnyStats]]
) -> Dict[str, Dict[str, float]]:
    return {
        w: {c: stats.ipc for c, stats in row.items()} for w, row in results.items()
    }


def figure7_configs() -> Dict[str, SMConfig]:
    return {
        "baseline": presets.baseline(),
        "sbi": presets.sbi(),
        "swi": presets.swi(),
        "sbi_swi": presets.sbi_swi(),
        "warp64": presets.warp64(),
    }


def figure7_table(
    size: str = "bench",
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, Dict[str, float]]:
    """The paper's headline IPC grid as {workload: {config: ipc}}."""
    results = run_suite(
        figure7_configs(), list(REGULAR + IRREGULAR), size, jobs=jobs, cache_dir=cache_dir
    )
    return suite_ipc_table(results)


def included(workloads: Iterable[str]) -> List[str]:
    """Workloads that count toward suite means (TMD excluded)."""
    return [w for w in workloads if w not in MEAN_EXCLUDED]


def save_results(path: str, table: Dict[str, Dict[str, float]]) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as f:
        json.dump(table, f, indent=1, sort_keys=True)


REGULAR_SUITE = REGULAR
IRREGULAR_SUITE = IRREGULAR
