"""Experiment harness: runs the paper's sweeps and caches results.

Used by the ``benchmarks/`` tree (one module per table/figure) and by
``examples``.  Results are cached in-process per (workload, size,
config-key) so that a pytest-benchmark session reuses simulations
across reporting fixtures.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core import presets
from repro.core.simulator import simulate
from repro.timing.config import SMConfig
from repro.timing.stats import Stats
from repro.workloads import get_workload
from repro.workloads.suite import IRREGULAR, MEAN_EXCLUDED, REGULAR

_CACHE: Dict[Tuple, Stats] = {}


def config_key(config: SMConfig) -> Tuple:
    return (
        config.mode,
        config.sbi_constraints,
        config.lane_shuffle,
        config.swi_ways,
        config.warp_count,
        config.warp_width,
    )


def run_one(
    workload: str,
    config: SMConfig,
    size: str = "bench",
    verify: bool = False,
    cache: bool = True,
) -> Stats:
    """Simulate one (workload, config) cell, with optional caching."""
    key = (workload, size, config_key(config))
    if cache and key in _CACHE:
        return _CACHE[key]
    inst = get_workload(workload, size)
    stats = simulate(inst.kernel, inst.memory, config)
    if verify and inst.numpy_check is not None:
        inst.numpy_check(inst.memory)
    if cache:
        _CACHE[key] = stats
    return stats


def run_suite(
    configs: Dict[str, SMConfig],
    workloads: Sequence[str],
    size: str = "bench",
) -> Dict[str, Dict[str, Stats]]:
    """{workload: {config_name: Stats}} over a workload list."""
    results: Dict[str, Dict[str, Stats]] = {}
    for name in workloads:
        results[name] = {
            cfg_name: run_one(name, cfg, size) for cfg_name, cfg in configs.items()
        }
    return results


def suite_ipc_table(
    results: Dict[str, Dict[str, Stats]]
) -> Dict[str, Dict[str, float]]:
    return {
        w: {c: stats.ipc for c, stats in row.items()} for w, row in results.items()
    }


def figure7_configs() -> Dict[str, SMConfig]:
    return {
        "baseline": presets.baseline(),
        "sbi": presets.sbi(),
        "swi": presets.swi(),
        "sbi_swi": presets.sbi_swi(),
        "warp64": presets.warp64(),
    }


def included(workloads: Iterable[str]) -> List[str]:
    """Workloads that count toward suite means (TMD excluded)."""
    return [w for w in workloads if w not in MEAN_EXCLUDED]


def save_results(path: str, table: Dict[str, Dict[str, float]]) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as f:
        json.dump(table, f, indent=1, sort_keys=True)


REGULAR_SUITE = REGULAR
IRREGULAR_SUITE = IRREGULAR
