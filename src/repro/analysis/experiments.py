"""Legacy experiment helpers — a thin shim over :mod:`repro.api`.

This module predates the first-class experiment API and survives as a
compatibility layer: ``run_one`` / ``run_suite`` / ``figure7_table``
keep their original signatures and return values, but every call is
routed through :class:`repro.api.Engine`, so both surfaces share one
in-process memo (``repro.api.cache.MEMO``, aliased here as
``_CACHE``) and one on-disk cache (``cache_dir`` argument or the
``REPRO_CACHE_DIR`` environment variable).

New code should use :class:`repro.api.SweepSpec` +
:class:`repro.api.Engine` and work with :class:`repro.api.ResultSet`
values directly — or the ``repro`` CLI.  Importing this module emits a
:class:`DeprecationWarning`; nothing in-tree imports it any more
(benchmarks, examples and the API tests all use :mod:`repro.api`), and
it will be removed once out-of-tree callers have had a release to
migrate.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Dict, Iterable, List, Optional, Sequence

warnings.warn(
    "repro.analysis.experiments is deprecated: use repro.api "
    "(SweepSpec/Engine/ResultSet) or the `repro` CLI instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.api import cache as _api_cache
from repro.api.cache import (
    CACHE_DIR_ENV,
    CACHE_VERSION,
    AnyConfig,
    AnyStats,
    config_hash,
    config_key,
)
from repro.api.engine import Engine
from repro.api.spec import SweepSpec
from repro.core import presets
from repro.core.gpu import simulate_device
from repro.core.simulator import simulate
from repro.timing.config import SMConfig
from repro.workloads import get_workload
from repro.workloads.suite import IRREGULAR, MEAN_EXCLUDED, REGULAR

#: In-process memo: (workload, size, config_key) -> stats.  The very
#: dict the api-level Engine uses — warming one surface warms both.
_CACHE = _api_cache.MEMO

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_VERSION",
    "clear_cache",
    "config_hash",
    "config_key",
    "figure7_configs",
    "figure7_table",
    "included",
    "run_one",
    "run_suite",
    "save_results",
    "suite_ipc_table",
]


def clear_cache(disk_dir: Optional[str] = None) -> int:
    """Drop the in-process cache; with ``disk_dir``, purge that on-disk
    cache directory too (opt-in — never defaulted from the
    environment).  Returns the number of disk entries removed."""
    return _api_cache.clear(disk_dir=disk_dir)


def _engine(jobs: Optional[int] = None, cache_dir: Optional[str] = None) -> Engine:
    # The lambdas late-bind this module's globals, so tests that
    # monkeypatch ``experiments.simulate`` / ``experiments.get_workload``
    # keep intercepting the inline execution path.
    return Engine(
        jobs=jobs,
        cache_dir=cache_dir,
        workload_factory=lambda name, size: get_workload(name, size),
        simulate_fn=lambda kernel, memory, config: simulate(kernel, memory, config),
        simulate_device_fn=lambda kernel, memory, config: simulate_device(
            kernel, memory, config
        ),
    )


def run_one(
    workload: str,
    config: AnyConfig,
    size: str = "bench",
    verify: bool = False,
    cache: bool = True,
    cache_dir: Optional[str] = None,
) -> AnyStats:
    """Simulate one (workload, config) cell, with optional caching.

    ``config`` may be an :class:`SMConfig` (single SM) or a
    :class:`GPUConfig` (whole device).  ``verify=True`` always
    simulates so the functional outputs exist to be checked.
    """
    return _engine(cache_dir=cache_dir).run_cell(
        workload, size, config, verify=verify, cache=cache
    )


def run_suite(
    configs: Dict[str, AnyConfig],
    workloads: Sequence[str],
    size: str = "bench",
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, Dict[str, AnyStats]]:
    """{workload: {config_name: Stats}} over a workload list.

    ``jobs >= 2`` fans the uncached cells out over a
    ``ProcessPoolExecutor``; each worker honours the same disk cache,
    and results are folded back into this process's cache so later
    sequential calls are free.
    """
    spec = SweepSpec(workloads=workloads, configs=configs, sizes=size)
    return _engine(jobs=jobs, cache_dir=cache_dir).run(spec).nested()


def suite_ipc_table(
    results: Dict[str, Dict[str, AnyStats]]
) -> Dict[str, Dict[str, float]]:
    return {
        w: {c: stats.ipc for c, stats in row.items()} for w, row in results.items()
    }


def figure7_configs() -> Dict[str, SMConfig]:
    return {name: presets.by_name(name) for name in presets.FIGURE7_CONFIGS}


def figure7_table(
    size: str = "bench",
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, Dict[str, float]]:
    """The paper's headline IPC grid as {workload: {config: ipc}}."""
    results = run_suite(
        figure7_configs(), list(REGULAR + IRREGULAR), size, jobs=jobs, cache_dir=cache_dir
    )
    return suite_ipc_table(results)


def included(workloads: Iterable[str]) -> List[str]:
    """Workloads that count toward suite means (TMD excluded)."""
    return [w for w in workloads if w not in MEAN_EXCLUDED]


def save_results(path: str, table: Dict[str, Dict[str, float]]) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as f:
        json.dump(table, f, indent=1, sort_keys=True)


REGULAR_SUITE = REGULAR
IRREGULAR_SUITE = IRREGULAR
