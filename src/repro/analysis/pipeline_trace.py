"""Execution-pipeline traces — reproduces the paper's Figure 2.

Figure 2 contrasts the contents of the execution pipeline for classic
SIMT, SBI (with and without reconvergence constraints), SWI, and
SBI+SWI on a six-instruction if-then-else executed by two warps of
four threads.  :func:`figure2_example` builds that kernel and machine,
:func:`trace_kernel` records every issue, and :func:`render_trace`
draws an ASCII version of the figure (one row per issue slot, one
column per cycle, ``wX:N [mask]`` per issued instruction).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.policy import OBSERVERS, Observer
from repro.core.sm import StreamingMultiprocessor
from repro.functional.memory import MemoryImage
from repro.isa.builder import Kernel, KernelBuilder
from repro.timing.config import SMConfig
from repro.timing.masks import mask_str
from repro.timing.stats import Stats

#: One trace record: (cycle, warp id, pc, origin, mask, group name).
IssueEvent = Tuple[int, int, int, str, int, str]


@OBSERVERS.register("issue_trace")
class IssueTrace(Observer):
    """Records every issue as a legacy trace tuple — the first in-tree
    consumer of the cycle-level observer hooks."""

    def __init__(self) -> None:
        self.events: List[IssueEvent] = []

    def on_issue(self, event) -> None:
        self.events.append(
            (event.cycle, event.wid, event.pc, event.origin, event.mask, event.group)
        )


def trace_kernel(
    kernel: Kernel, memory: MemoryImage, config: SMConfig
) -> Tuple[Stats, List[IssueEvent]]:
    """Run a kernel and capture every instruction issue."""
    trace = IssueTrace()
    sm = StreamingMultiprocessor(kernel, memory, config, observers=[trace])
    stats = sm.run()
    return stats, trace.events


def render_trace(
    events: List[IssueEvent],
    warp_width: int,
    max_cycles: Optional[int] = None,
    label: str = "",
) -> str:
    """ASCII pipeline diagram: columns are cycles, rows are issue slots."""
    if not events:
        return "(no issues)"
    start = min(e[0] for e in events)
    end = max(e[0] for e in events)
    if max_cycles is not None:
        end = min(end, start + max_cycles - 1)
    by_cycle: Dict[int, List[IssueEvent]] = {}
    for e in events:
        if e[0] <= end:
            by_cycle.setdefault(e[0], []).append(e)
    slots = max((len(v) for v in by_cycle.values()), default=1)
    cell = warp_width + 8
    lines = []
    if label:
        lines.append(label)
    header = "cycle | " + " | ".join(
        ("%d" % (start + i)).center(cell) for i in range(end - start + 1)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for slot in range(slots):
        cells = []
        for cyc in range(start, end + 1):
            issued = by_cycle.get(cyc, [])
            if slot < len(issued):
                _, wid, pc, origin, mask, _ = issued[slot]
                tag = {"primary": " ", "sbi": "b", "swi": "w"}[origin]
                cells.append(
                    ("w%d:%-2d%s%s" % (wid, pc, tag, mask_str(mask, warp_width))).center(cell)
                )
            else:
                cells.append(" " * cell)
        lines.append("  I%d  | " % (slot + 1) + " | ".join(cells))
    return "\n".join(lines)


def figure2_kernel() -> KernelBuilder:
    """The paper's running example: a 6-instruction if-then-else.

    PCs after assembly: 0 = setp, 1 = branch, 2-4 = if path,
    5 = branch over else... laid out to match the paper's numbering
    closely (instruction "1" is the divergent branch, "2"-"4" the if
    path, "5" the else path, "6" the reconverged tail).
    """
    kb = KernelBuilder("figure2")
    t, p, v, addr = kb.regs("t", "p", "v", "addr")
    kb.and_(p, kb.tid, 1)  # pc 0: threads 1 and 3 of each warp take "else"
    kb.bra("else_path", cond=p)  # pc 1
    kb.mad(v, t, 2, 1)  # pc 2
    kb.mad(v, v, 3, 1)  # pc 3
    kb.mad(v, v, 5, 1)  # pc 4  (if path: instructions 2..4)
    kb.bra("join")  # pc 5
    kb.label("else_path")
    kb.mad(v, t, 7, 2)  # pc 6  (else path: instruction "5")
    kb.label("join")
    kb.mul(addr, kb.tid, 4)  # pc 7  (instruction "6": reconverged)
    kb.st(kb.param(0), v, index=addr)
    kb.exit_()
    return kb


def figure2_config(mode: str) -> SMConfig:
    """A 2-warp, 4-thread machine per Figure 2's illustration."""
    widths = dict(
        warp_count=2,
        warp_width=4,
        mad_lanes=4 if mode not in ("baseline",) else 8,
        sfu_width=2,
        lsu_width=4,
        fetch_width=2,
        dram_bandwidth=64.0,
        # Schematic timing, as in the paper's illustration: short
        # execution latency so the diagram stays compact.
        exec_latency=2,
    )
    from repro.core import presets

    if mode == "baseline":
        return presets.baseline(**widths)
    if mode == "warp64":
        return presets.warp64(**widths)
    if mode == "sbi":
        return presets.sbi(**widths)
    if mode == "sbi_nc":
        return presets.sbi(constraints=False, **widths)
    if mode == "swi":
        return presets.swi(lane_shuffle="identity", **widths)
    if mode == "sbi_swi":
        return presets.sbi_swi(lane_shuffle="identity", **widths)
    raise ValueError(mode)


def figure2_example(mode: str) -> Tuple[Stats, str]:
    """Trace the Figure 2 kernel under one scheduler mode."""
    kb = figure2_kernel()
    memory = MemoryImage()
    out = memory.alloc(8 * 4)
    kernel = kb.build(cta_size=8, grid_size=1, params=(out,))
    config = figure2_config(mode)
    stats, events = trace_kernel(kernel, memory, config)
    art = render_trace(events, config.warp_width, label="mode=%s" % mode)
    return stats, art
