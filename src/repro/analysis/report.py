"""Plain-text table formatting and summary statistics."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def gmean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's suite-aggregation statistic).

    An empty input is an error: a workload set filtered down to
    nothing must fail loudly instead of poisoning speedup tables
    with a silent ``0.0``.
    """
    vals = [v for v in values]
    if not vals:
        raise ValueError("gmean of an empty sequence is undefined")
    if any(v <= 0 for v in vals):
        raise ValueError("gmean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def hmean(values: Iterable[float]) -> float:
    """Harmonic mean (rate-style aggregation, e.g. per-cell IPC).

    Raises :class:`ValueError` for empty input, like :func:`gmean`.
    """
    vals = [v for v in values]
    if not vals:
        raise ValueError("hmean of an empty sequence is undefined")
    if any(v <= 0 for v in vals):
        raise ValueError("hmean requires positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    cols = len(headers)
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in cells), default=0))
        for i in range(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(row[i].ljust(widths[i]) for i in range(cols)))
    return "\n".join(out)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def speedup_table(
    ipc: Dict[str, Dict[str, float]],
    base: str,
    configs: Sequence[str],
    workloads: Sequence[str],
    excluded: Sequence[str] = (),
    title: str = "",
) -> str:
    """Per-workload speedups vs ``base`` plus the gmean row.

    ``excluded`` workloads are shown but left out of the gmean (the
    paper excludes TMD from its means).
    """
    rows: List[List[object]] = []
    per_config: Dict[str, List[float]] = {c: [] for c in configs}
    for name in workloads:
        row: List[object] = [name]
        for config in configs:
            s = ipc[name][config] / ipc[name][base]
            row.append(s)
            if name not in excluded:
                per_config[config].append(s)
        rows.append(row)
    mean_row: List[object] = ["gmean"]
    for config in configs:
        mean_row.append(gmean(per_config[config]) if per_config[config] else None)
    rows.append(mean_row)
    headers = ["workload"] + ["%s/%s" % (c, base) for c in configs]
    return format_table(headers, rows, title)
