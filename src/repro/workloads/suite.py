"""Workload registry and classification (paper Figure 7)."""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.workloads.common import SIZE_ALIASES, SIZES, Instance, normalize_size

#: Regular applications (Figure 7a), paper order.
REGULAR = (
    "3dfd",
    "backprop",
    "binomialoptions",
    "blackscholes",
    "dwthaar1d",
    "fastwalshtransform",
    "hotspot",
    "matrixmul",
    "montecarlo",
    "transpose",
)

#: Irregular applications (Figure 7b), paper order.
IRREGULAR = (
    "bfs",
    "convolutionseparable",
    "eigenvalues",
    "histogram",
    "lud",
    "mandelbrot",
    "needleman_wunsch",
    "sortingnetworks",
    "srad",
    "tmd1",
    "tmd2",
)

#: Excluded from suite means, as in the paper (they characterise
#: thread-frontier reconvergence rather than SBI/SWI).
MEAN_EXCLUDED = ("tmd1", "tmd2")

ALL_WORKLOADS = REGULAR + IRREGULAR

_MODULE_OF = {name: name for name in ALL_WORKLOADS}
_MODULE_OF["3dfd"] = "threedfd"  # module names cannot start with a digit
_MODULE_OF["tmd1"] = "tmd"
_MODULE_OF["tmd2"] = "tmd"


@dataclass(frozen=True)
class WorkloadInfo:
    """One registry entry, as reported by :func:`list_workloads`."""

    name: str
    category: str            # "regular" | "irregular"
    module: str              # implementing module under repro.workloads
    sizes: Tuple[str, ...]   # canonical sizes every workload supports
    mean_excluded: bool      # left out of suite means (paper: TMD)


def list_workloads(category: Optional[str] = None) -> List[WorkloadInfo]:
    """The public workload registry, in paper (Figure 7) order.

    ``category`` filters to ``"regular"`` or ``"irregular"``; the CLI
    (``repro workloads``) and :class:`repro.api.SweepSpec` validation
    are both built on this.
    """
    if category not in (None, "regular", "irregular"):
        raise ValueError(
            "category must be 'regular', 'irregular' or None, got %r" % (category,)
        )
    infos = [
        WorkloadInfo(
            name=name,
            category=category_of(name),
            module="repro.workloads." + _MODULE_OF[name],
            sizes=SIZES,
            mean_excluded=name in MEAN_EXCLUDED,
        )
        for name in ALL_WORKLOADS
    ]
    if category is not None:
        infos = [info for info in infos if info.category == category]
    return infos


def get_workload(name: str, size: str = "bench") -> Instance:
    """Build a fresh instance of one workload.

    ``size`` accepts aliases (``smoke`` -> ``tiny``); unknown names
    and sizes raise errors that list every valid choice.
    """
    if name not in _MODULE_OF:
        raise KeyError(
            "unknown workload %r: regular workloads are %s; irregular are %s"
            % (name, ", ".join(REGULAR), ", ".join(IRREGULAR))
        )
    try:
        size = normalize_size(size)
    except ValueError as exc:
        raise ValueError("workload %r: %s" % (name, exc)) from None
    module = importlib.import_module("repro.workloads." + _MODULE_OF[name])
    if name in ("tmd1", "tmd2"):
        return module.build(size, variant=name)
    return module.build(size)


def category_of(name: str) -> str:
    if name in REGULAR:
        return "regular"
    if name in IRREGULAR:
        return "irregular"
    raise KeyError(name)
