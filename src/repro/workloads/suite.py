"""Workload registry and classification (paper Figure 7)."""

from __future__ import annotations

import importlib
from repro.workloads.common import Instance

#: Regular applications (Figure 7a), paper order.
REGULAR = (
    "3dfd",
    "backprop",
    "binomialoptions",
    "blackscholes",
    "dwthaar1d",
    "fastwalshtransform",
    "hotspot",
    "matrixmul",
    "montecarlo",
    "transpose",
)

#: Irregular applications (Figure 7b), paper order.
IRREGULAR = (
    "bfs",
    "convolutionseparable",
    "eigenvalues",
    "histogram",
    "lud",
    "mandelbrot",
    "needleman_wunsch",
    "sortingnetworks",
    "srad",
    "tmd1",
    "tmd2",
)

#: Excluded from suite means, as in the paper (they characterise
#: thread-frontier reconvergence rather than SBI/SWI).
MEAN_EXCLUDED = ("tmd1", "tmd2")

ALL_WORKLOADS = REGULAR + IRREGULAR

_MODULE_OF = {name: name for name in ALL_WORKLOADS}
_MODULE_OF["3dfd"] = "threedfd"  # module names cannot start with a digit
_MODULE_OF["tmd1"] = "tmd"
_MODULE_OF["tmd2"] = "tmd"


def get_workload(name: str, size: str = "bench") -> Instance:
    """Build a fresh instance of one workload."""
    if name not in _MODULE_OF:
        raise KeyError("unknown workload %r (have %s)" % (name, sorted(_MODULE_OF)))
    module = importlib.import_module("repro.workloads." + _MODULE_OF[name])
    if name in ("tmd1", "tmd2"):
        return module.build(size, variant=name)
    return module.build(size)


def category_of(name: str) -> str:
    if name in REGULAR:
        return "regular"
    if name in IRREGULAR:
        return "irregular"
    raise KeyError(name)
