"""Eigenvalues (CUDA SDK) — bisection for symmetric tridiagonal matrices.

Each thread refines one eigenvalue interval by bisection: the outer
while loop runs until the thread's own interval converges (completely
data-dependent trip count), and the inner Sturm-sequence count takes a
data-dependent branch per diagonal element.  One of the most
branch-irregular kernels in the suite.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

MAT = 16  # tridiagonal matrix dimension
EPS = 2e-2

PARAMS = {
    "tiny": dict(ctas=1, max_iter=8),
    "bench": dict(ctas=4, max_iter=12),
    "full": dict(ctas=8, max_iter=20),
}

CTA = 256


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    ctas, max_iter = p["ctas"], p["max_iter"]
    n = CTA * ctas
    gen = common.rng("eigenvalues", size)
    diag = gen.uniform(-2.0, 2.0, MAT)
    off = gen.uniform(0.1, 1.0, MAT)  # off[0] unused
    off[0] = 0.0
    radius = float(np.abs(diag).max() + 2.0 * np.abs(off).max())

    memory = MemoryImage()
    a_d = memory.alloc_array(diag)
    a_e = memory.alloc_array(off)
    a_out = memory.alloc(2 * n * 4)

    kb = KernelBuilder("eigenvalues", nregs=26)
    i, addr, pr, it = kb.regs("i", "addr", "pr", "it")
    lo, hi, mid, q, count, want, k, dv, ev = kb.regs(
        "lo", "hi", "mid", "q", "count", "want", "k", "dv", "ev"
    )
    common.emit_global_tid(kb, i)
    # Stage the matrix into shared memory (first MAT threads).
    kb.setp(pr, CmpOp.LT, kb.tid, MAT)
    kb.mul(addr, kb.tid, 4)
    kb.ld(dv, kb.param(0), index=addr, pred=pr)
    kb.st(0, dv, index=addr, space=MemSpace.SHARED, pred=pr)
    kb.ld(ev, kb.param(1), index=addr, pred=pr)
    kb.st(MAT * 4, ev, index=addr, space=MemSpace.SHARED, pred=pr)
    kb.bar()
    # Each thread processes TWO eigenvalue intervals in sequence, as the
    # SDK kernel does when intervals outnumber threads.  Threads whose
    # first interval converges early loop back and start the second
    # while neighbours still bisect the first — the staggered in-loop
    # divergence SBI feeds on.
    (work,) = kb.regs("work")
    kb.mov(work, 0)
    kb.label("interval")
    kb.and_(want, kb.tid, MAT - 1)
    kb.add(want, want, work)
    kb.and_(want, want, MAT - 1)
    # Per-thread interval width => per-thread bisection trip count.
    kb.mov(lo, -radius)
    kb.add(hi, want, 1.0)
    kb.mul(hi, hi, 4.0 * radius / MAT)
    kb.add(hi, hi, lo)
    kb.mov(it, 0)
    kb.label("bisect")
    # while (hi - lo > eps && it < max_iter)
    kb.sub(mid, hi, lo)
    kb.setp(pr, CmpOp.LE, mid, EPS)
    kb.bra("converged", cond=pr)
    kb.setp(pr, CmpOp.GE, it, max_iter)
    kb.bra("converged", cond=pr)
    kb.add(mid, hi, lo)
    kb.mul(mid, mid, 0.5)
    # Sturm count: number of eigenvalues below mid.
    kb.mov(count, 0)
    kb.mov(q, 1.0)
    kb.mov(k, 0)
    kb.label("sturm")
    kb.mul(addr, k, 4)
    kb.ld(dv, 0, index=addr, space=MemSpace.SHARED)
    kb.ld(ev, MAT * 4, index=addr, space=MemSpace.SHARED)
    kb.setp(pr, CmpOp.EQ, q, 0.0)
    kb.bra("q_safe", cond=pr, neg=True)
    kb.mov(q, 1e-10)
    kb.label("q_safe")
    kb.mul(ev, ev, ev)
    kb.div(ev, ev, q)
    kb.sub(q, dv, mid)
    kb.sub(q, q, ev)
    # Data-dependent branch: negative pivot => eigenvalue below mid.
    kb.setp(pr, CmpOp.LT, q, 0.0)
    kb.bra("no_count", cond=pr, neg=True)
    kb.add(count, count, 1)
    kb.label("no_count")
    kb.add(k, k, 1)
    kb.setp(pr, CmpOp.LT, k, MAT)
    kb.bra("sturm", cond=pr)
    # Narrow the interval toward eigenvalue #want — the balanced
    # divergent branch the real kernel takes each bisection step.
    kb.setp(pr, CmpOp.GT, count, want)
    kb.bra("go_low", cond=pr)
    kb.mov(lo, mid)
    kb.add(lo, lo, 0.0)
    kb.bra("narrowed")
    kb.label("go_low")
    kb.mov(hi, mid)
    kb.add(hi, hi, 0.0)
    kb.label("narrowed")
    kb.add(it, it, 1)
    kb.bra("bisect")
    kb.label("converged")
    kb.add(mid, hi, lo)
    kb.mul(mid, mid, 0.5)
    kb.mad(addr, work, n, i)
    kb.mul(addr, addr, 4)
    kb.st(kb.param(2), mid, index=addr)
    kb.add(work, work, 1)
    kb.setp(pr, CmpOp.LT, work, 2)
    kb.bra("interval", cond=pr)
    kb.exit_()

    kernel = kb.build(
        cta_size=CTA,
        grid_size=ctas,
        params=(a_d, a_e, a_out),
        shared_bytes=2 * MAT * 4,
    )

    def numpy_check(mem: MemoryImage) -> None:
        got = mem.read_array(a_out, 2 * n)
        # Independent model: the same bisection in numpy.
        def sturm(x):
            count = 0
            q = 1.0
            for kk in range(MAT):
                if q == 0.0:
                    q = 1e-10
                q = (diag[kk] - x) - off[kk] * off[kk] / q
                if q < 0.0:
                    count += 1
            return count

        for t in range(min(n, 32)):  # spot-check a subset (it's O(n*iter*MAT))
            for work in range(2):
                want = ((t % MAT) + work) % MAT
                lo_v = -radius
                hi_v = lo_v + (want + 1.0) * (4.0 * radius / MAT)
                it = 0
                while hi_v - lo_v > EPS and it < max_iter:
                    m = 0.5 * (hi_v + lo_v)
                    if sturm(m) > want:
                        hi_v = m
                    else:
                        lo_v = m
                    it += 1
                np.testing.assert_allclose(
                    got[work * n + t], 0.5 * (hi_v + lo_v), rtol=1e-9
                )

    return common.Instance(
        name="eigenvalues",
        kernel=kernel,
        memory=memory,
        outputs=[("out", a_out, 2 * n)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
