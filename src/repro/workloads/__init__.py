"""The paper's workload suite (Figure 7), rebuilt in the repro ISA.

Regular applications (average IPC above 30 with 64-wide warps):
``3dfd``, ``backprop``, ``binomialoptions``, ``blackscholes``,
``dwthaar1d``, ``fastwalshtransform``, ``hotspot``, ``matrixmul``,
``montecarlo``, ``transpose``.

Irregular applications: ``bfs``, ``convolutionseparable``,
``eigenvalues``, ``histogram``, ``lud``, ``mandelbrot``,
``needleman_wunsch``, ``sortingnetworks``, ``srad``, ``tmd1``,
``tmd2``.  As in the paper, the two TMD kernels are excluded from
suite means (they characterise thread-frontier reconvergence rather
than SBI/SWI).

Each module exposes ``build(size)`` returning a
:class:`repro.workloads.common.Instance`; sizes are ``tiny`` (tests),
``bench`` (figures) and ``full``.
"""

from repro.workloads.common import SIZE_ALIASES, SIZES, Instance, normalize_size
from repro.workloads.suite import (
    ALL_WORKLOADS,
    IRREGULAR,
    MEAN_EXCLUDED,
    REGULAR,
    WorkloadInfo,
    category_of,
    get_workload,
    list_workloads,
)

__all__ = [
    "ALL_WORKLOADS",
    "IRREGULAR",
    "Instance",
    "MEAN_EXCLUDED",
    "REGULAR",
    "SIZES",
    "SIZE_ALIASES",
    "WorkloadInfo",
    "category_of",
    "get_workload",
    "list_workloads",
    "normalize_size",
]
