"""3DFD (CUDA SDK) — finite-difference stencil, z-sweep formulation.

Each thread owns one column point and applies a 4th-order symmetric
stencil along a flattened axis, iterating ``zsteps`` times with the
accumulator folded back (the register-pipeline structure of the
original's z-loop).  Index clamping is branch-free (min/max), so the
kernel is fully regular; repeated sweeps keep the plane L1-resident.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp
from repro.workloads import common

COEFFS = (0.5, 0.25, 0.125, 0.0625)

PARAMS = {
    "tiny": dict(n=512, zsteps=2),
    "bench": dict(n=1024, zsteps=4),
    "full": dict(n=4096, zsteps=6),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    n, zsteps = p["n"], p["zsteps"]
    gen = common.rng("3dfd", size)
    field = gen.uniform(-1.0, 1.0, n)

    memory = MemoryImage()
    a_in = memory.alloc_array(field)
    a_out = memory.alloc(n * 4)

    kb = KernelBuilder("3dfd", nregs=20)
    i, z, pr, acc, idx, addr, v, tmp = kb.regs(
        "i", "z", "pr", "acc", "idx", "addr", "v", "tmp"
    )
    common.emit_global_tid(kb, i)
    kb.mov(acc, 0.0)
    kb.mov(z, 0)
    kb.label("zloop")
    kb.mul(acc, acc, 0.5)  # fold previous plane (register pipeline)
    for k, coeff in enumerate(COEFFS):
        offsets = (0,) if k == 0 else (-k, k)
        for off in offsets:
            kb.add(idx, i, off)
            kb.max_(idx, idx, 0)
            kb.min_(idx, idx, n - 1)
            kb.mul(addr, idx, 4)
            kb.ld(v, kb.param(0), index=addr)
            kb.mad(acc, v, coeff, acc)
    kb.add(z, z, 1)
    kb.setp(pr, CmpOp.LT, z, zsteps)
    kb.bra("zloop", cond=pr)
    kb.mul(addr, i, 4)
    kb.st(kb.param(1), acc, index=addr)
    kb.exit_()

    kernel = kb.build(cta_size=256, grid_size=n // 256, params=(a_in, a_out))

    def numpy_check(mem: MemoryImage) -> None:
        acc = np.zeros(n)
        idx = np.arange(n)
        for _ in range(zsteps):
            acc = acc * 0.5
            for k, coeff in enumerate(COEFFS):
                offsets = (0,) if k == 0 else (-k, k)
                for off in offsets:
                    j = np.clip(idx + off, 0, n - 1)
                    acc = acc + field[j] * coeff
        np.testing.assert_allclose(mem.read_array(a_out, n), acc, rtol=1e-9)

    return common.Instance(
        name="3dfd",
        kernel=kernel,
        memory=memory,
        outputs=[("out", a_out, n)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
