"""BinomialOptions (CUDA SDK) — binomial option valuation.

Per-thread backward induction over a uniform step count: a pure
compute loop of multiply-adds with an SFU burst setting up the up/down
factors, and a branch-free ``max`` for the early-exercise payoff.
Regular: every thread runs the same trip count.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp
from repro.workloads import common

LOG2E = float(np.log2(np.e))
VOL = 0.25
RATE = 0.02
DT = 1.0 / 16.0

PARAMS = {
    "tiny": dict(n=512, steps=8),
    "bench": dict(n=1024, steps=24),
    "full": dict(n=4096, steps=48),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    n, steps = p["n"], p["steps"]
    gen = common.rng("binomialoptions", size)
    price = gen.uniform(20.0, 80.0, n)
    strike = gen.uniform(20.0, 80.0, n)

    memory = MemoryImage()
    a_s = memory.alloc_array(price)
    a_x = memory.alloc_array(strike)
    a_out = memory.alloc(n * 4)

    kb = KernelBuilder("binomialoptions", nregs=20)
    i, addr, s, x, t, pr = kb.regs("i", "addr", "s", "x", "t", "pr")
    u, d, pu, val, hold, tmp = kb.regs("u", "d", "pu", "val", "hold", "tmp")
    common.emit_global_tid(kb, i)
    common.emit_byte_index(kb, addr, i)
    kb.ld(s, kb.param(0), index=addr)
    kb.ld(x, kb.param(1), index=addr)
    # u = exp(vol * sqrt(dt)); d = 1/u; pu = (exp(r dt) - d) / (u - d).
    kb.mov(u, VOL * np.sqrt(DT) * LOG2E)
    kb.ex2(u, u)
    kb.rcp(d, u)
    kb.mov(pu, RATE * DT * LOG2E)
    kb.ex2(pu, pu)
    kb.sub(pu, pu, d)
    kb.sub(tmp, u, d)
    kb.div(pu, pu, tmp)
    # Backward induction approximated as a per-thread lattice walk:
    # val <- disc * (pu * val_up + (1-pu) * val), payoff floor each step.
    kb.sub(val, s, x)
    kb.max_(val, val, 0.0)
    kb.mov(t, 0)
    kb.label("step")
    kb.mul(hold, s, u)
    kb.sub(hold, hold, x)
    kb.max_(hold, hold, 0.0)
    kb.mul(hold, hold, pu)
    kb.sub(tmp, 1.0, pu)
    kb.mad(val, val, tmp, hold)
    kb.mul(s, s, d)
    kb.add(t, t, 1)
    kb.setp(pr, CmpOp.LT, t, steps)
    kb.bra("step", cond=pr)
    kb.st(kb.param(2), val, index=addr)
    kb.exit_()

    kernel = kb.build(cta_size=256, grid_size=n // 256, params=(a_s, a_x, a_out))

    def numpy_check(mem: MemoryImage) -> None:
        u = np.exp2(VOL * np.sqrt(DT) * LOG2E)
        d = 1.0 / u
        pu = (np.exp2(RATE * DT * LOG2E) - d) / (u - d)
        s = price.copy()
        val = np.maximum(s - strike, 0.0)
        for _ in range(steps):
            hold = np.maximum(s * u - strike, 0.0) * pu
            val = val * (1.0 - pu) + hold
            s = s * d
        np.testing.assert_allclose(mem.read_array(a_out, n), val, rtol=1e-9)

    return common.Instance(
        name="binomialoptions",
        kernel=kernel,
        memory=memory,
        outputs=[("out", a_out, n)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
