"""DWTHaar1D (CUDA SDK) — one-dimensional Haar wavelet transform.

Level ``l`` has ``n = N / 2^(l+1)`` active threads computing the
approximation and detail coefficients; threads above ``n`` idle through
the barrier.  Warps deactivate wholesale at the upper levels, so the
divergence is mostly warp-aligned — the paper classifies it regular.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

INV_SQRT2 = float(1.0 / np.sqrt(2.0))
CTA = 256
N = 2 * CTA

PARAMS = {
    "tiny": dict(ctas=1, levels=4),
    "bench": dict(ctas=4, levels=7),
    "full": dict(ctas=8, levels=9),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    ctas, levels = p["ctas"], p["levels"]
    total = N * ctas
    gen = common.rng("dwthaar1d", size)
    data = gen.uniform(-1.0, 1.0, total)

    memory = MemoryImage()
    a_io = memory.alloc_array(data)

    kb = KernelBuilder("dwthaar1d", nregs=20)
    nreg, lvl, pr, act, addr, a, b, tmp, base = kb.regs(
        "n", "lvl", "pr", "act", "addr", "a", "b", "tmp", "base"
    )
    kb.mul(base, kb.ctaid, N)
    # Stage 2 elements per thread into shared.
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.ld(a, kb.param(0), index=addr)
    kb.ld(b, kb.param(0), index=addr, offset=CTA * 4)
    kb.mul(tmp, kb.tid, 4)
    kb.st(0, a, index=tmp, space=MemSpace.SHARED)
    kb.st(0, b, index=tmp, offset=CTA * 4, space=MemSpace.SHARED)
    kb.bar()
    kb.mov(nreg, CTA)
    kb.mov(lvl, 0)
    kb.label("level")
    kb.setp(act, CmpOp.LT, kb.tid, nreg)
    # if tid < n: a = sh[2*tid], b = sh[2*tid+1]
    kb.mul(addr, kb.tid, 8)
    kb.ld(a, 0, index=addr, space=MemSpace.SHARED, pred=act)
    kb.ld(b, 0, index=addr, offset=4, space=MemSpace.SHARED, pred=act)
    kb.bar()
    # approx -> sh[tid], detail -> sh[n + tid]
    kb.add(tmp, a, b, pred=act)
    kb.mul(tmp, tmp, INV_SQRT2, pred=act)
    kb.mul(addr, kb.tid, 4)
    kb.st(0, tmp, index=addr, space=MemSpace.SHARED, pred=act)
    kb.sub(tmp, a, b, pred=act)
    kb.mul(tmp, tmp, INV_SQRT2, pred=act)
    kb.mul(addr, nreg, 4)
    kb.mad(addr, kb.tid, 4, addr)
    kb.st(0, tmp, index=addr, space=MemSpace.SHARED, pred=act)
    kb.bar()
    kb.shr(nreg, nreg, 1)
    kb.add(lvl, lvl, 1)
    kb.setp(pr, CmpOp.LT, lvl, levels)
    kb.bra("level", cond=pr)
    # Write back.
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.mul(tmp, kb.tid, 4)
    kb.ld(a, 0, index=tmp, space=MemSpace.SHARED)
    kb.ld(b, 0, index=tmp, offset=CTA * 4, space=MemSpace.SHARED)
    kb.st(kb.param(0), a, index=addr)
    kb.st(kb.param(0), b, index=addr, offset=CTA * 4)
    kb.exit_()

    kernel = kb.build(
        cta_size=CTA, grid_size=ctas, params=(a_io,), shared_bytes=N * 4
    )

    def numpy_check(mem: MemoryImage) -> None:
        got = mem.read_array(a_io, total)
        for c in range(ctas):
            block = data[c * N : (c + 1) * N].copy()
            n = CTA
            for _ in range(levels):
                a = block[0 : 2 * n : 2].copy()
                b = block[1 : 2 * n : 2].copy()
                block[:n] = (a + b) * INV_SQRT2
                block[n : 2 * n] = (a - b) * INV_SQRT2
                n //= 2
            np.testing.assert_allclose(got[c * N : (c + 1) * N], block, rtol=1e-9)

    return common.Instance(
        name="dwthaar1d",
        kernel=kernel,
        memory=memory,
        outputs=[("io", a_io, total)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
