"""MonteCarlo (CUDA SDK) — option pricing by simulation.

Each thread draws ``samples`` pseudo-random paths from an in-register
LCG, prices the payoff through an SFU-heavy exp, and accumulates the
mean.  Uniform trip counts and branch-free payoff keep it regular; the
SFU pressure makes it a good demonstrator of SWI's heterogeneous-unit
co-issue (8-wide SFU group running under MAD instructions).
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp
from repro.workloads import common

LOG2E = float(np.log2(np.e))
SIGMA = 0.3
S0 = 50.0
STRIKE = 52.0

PARAMS = {
    "tiny": dict(n=512, samples=8),
    "bench": dict(n=1024, samples=24),
    "full": dict(n=2048, samples=64),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    n, samples = p["n"], p["samples"]

    memory = MemoryImage()
    a_out = memory.alloc(n * 4)

    kb = KernelBuilder("montecarlo", nregs=20)
    i, addr, state, k, pr = kb.regs("i", "addr", "state", "k", "pr")
    z, u, pay, acc, tmp = kb.regs("z", "u", "pay", "acc", "tmp")
    common.emit_global_tid(kb, i)
    kb.mad(state, i, 2654435761 % common.LCG_MASK, 12345)
    kb.and_(state, state, common.LCG_MASK)
    kb.mov(acc, 0.0)
    kb.mov(k, 0)
    kb.label("sample")
    # Approximate gaussian: sum of 4 uniforms, centred (CLT).
    kb.mov(z, -2.0)
    for _ in range(4):
        common.emit_lcg(kb, state)
        kb.mul(u, state, 1.0 / (common.LCG_MASK + 1))
        kb.add(z, z, u)
    # payoff = max(S0 * exp(sigma * z) - K, 0)
    kb.mul(tmp, z, SIGMA * LOG2E)
    kb.ex2(tmp, tmp)
    kb.mad(pay, tmp, S0, -STRIKE)
    kb.max_(pay, pay, 0.0)
    kb.add(acc, acc, pay)
    kb.add(k, k, 1)
    kb.setp(pr, CmpOp.LT, k, samples)
    kb.bra("sample", cond=pr)
    kb.mul(acc, acc, 1.0 / samples)
    common.emit_byte_index(kb, addr, i)
    kb.st(kb.param(0), acc, index=addr)
    kb.exit_()

    kernel = kb.build(cta_size=256, grid_size=n // 256, params=(a_out,))

    def numpy_check(mem: MemoryImage) -> None:
        idx = np.arange(n, dtype=np.int64)
        state = (idx * (2654435761 % common.LCG_MASK) + 12345) & common.LCG_MASK
        acc = np.zeros(n)
        for _ in range(samples):
            z = np.full(n, -2.0)
            for _ in range(4):
                state = common.lcg_next(state)
                z = z + state / (common.LCG_MASK + 1)
            pay = np.maximum(np.exp2(z * SIGMA * LOG2E) * S0 - STRIKE, 0.0)
            acc += pay
        np.testing.assert_allclose(
            mem.read_array(a_out, n), acc / samples, rtol=1e-9
        )

    return common.Instance(
        name="montecarlo",
        kernel=kernel,
        memory=memory,
        outputs=[("out", a_out, n)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
