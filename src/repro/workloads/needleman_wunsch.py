"""Needleman-Wunsch (Rodinia) — sequence-alignment wavefront DP.

The (n+1)x(n+1) score matrix fills along anti-diagonals: on diagonal
``d`` only threads whose row index lies on the wavefront compute a
cell, so the active mask grows then shrinks — systematic intra-warp
imbalance separated by barriers, the paper's +7.7% lane-shuffling
showcase.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

SEQ = 32           # sequence length; matrix is (SEQ+1)^2
CTA = 64           # thread r computes row r+1 of the wavefront
GAP = 1.0

PARAMS = {
    "tiny": dict(ctas=1),
    "bench": dict(ctas=8),
    "full": dict(ctas=16),
}

MATDIM = SEQ + 1
CELLS = MATDIM * MATDIM


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    ctas = PARAMS[size]["ctas"]
    gen = common.rng("needleman_wunsch", size)
    # Random +1/-1 substitution scores per CTA (as Rodinia's reference
    # similarity matrix, flattened).
    scores = gen.integers(0, 2, (ctas, SEQ, SEQ)).astype(np.float64) * 2.0 - 1.0

    memory = MemoryImage()
    a_scores = memory.alloc_array(scores.ravel())
    a_out = memory.alloc(CELLS * ctas * 4)

    kb = KernelBuilder("needleman_wunsch", nregs=28)
    r, d, pr, act, addr, base, tmp = kb.regs("r", "d", "pr", "act", "addr", "base", "tmp")
    cc, up, left, diag, sc, best = kb.regs("cc", "up", "left", "diag", "sc", "best")
    kb.add(r, kb.tid, 1)  # thread t owns matrix row t+1
    kb.mul(base, kb.ctaid, SEQ * SEQ)
    # Initialise borders in shared: m[0][j] = -j, m[i][0] = -i.
    kb.setp(act, CmpOp.LE, kb.tid, SEQ)
    kb.neg(tmp, kb.tid)
    kb.mul(addr, kb.tid, 4)
    kb.st(0, tmp, index=addr, space=MemSpace.SHARED, pred=act)  # row 0
    kb.mul(addr, kb.tid, MATDIM * 4)
    kb.st(0, tmp, index=addr, space=MemSpace.SHARED, pred=act)  # column 0
    kb.bar()
    kb.mov(d, 2)
    kb.label("diag")
    # Thread computes cell (r, c = d - r) when 1 <= c <= SEQ.
    kb.sub(cc, d, r)
    kb.setp(act, CmpOp.GE, cc, 1)
    kb.setp(pr, CmpOp.LE, cc, SEQ)
    kb.and_(act, act, pr)
    kb.setp(pr, CmpOp.LE, r, SEQ)
    kb.and_(act, act, pr)
    kb.bra("no_cell", cond=act, neg=True)
    # m[r][c] = max(m[r-1][c-1] + s, m[r-1][c] - gap, m[r][c-1] - gap)
    kb.sub(addr, r, 1)
    kb.mul(addr, addr, MATDIM)
    kb.add(addr, addr, cc)
    kb.mul(addr, addr, 4)
    kb.ld(up, 0, index=addr, space=MemSpace.SHARED)          # m[r-1][c]
    kb.ld(diag, 0, index=addr, offset=-4, space=MemSpace.SHARED)  # m[r-1][c-1]
    kb.mad(addr, r, MATDIM, cc)
    kb.mul(addr, addr, 4)
    kb.ld(left, 0, index=addr, offset=-4, space=MemSpace.SHARED)  # m[r][c-1]
    # Substitution score s[r-1][c-1] from this CTA's score block.
    kb.sub(addr, r, 1)
    kb.mul(addr, addr, SEQ)
    kb.add(addr, addr, cc)
    kb.sub(addr, addr, 1)
    kb.add(addr, addr, base)
    kb.mul(addr, addr, 4)
    kb.ld(sc, kb.param(0), index=addr)
    kb.add(best, diag, sc)
    kb.sub(up, up, GAP)
    kb.max_(best, best, up)
    kb.sub(left, left, GAP)
    kb.max_(best, best, left)
    kb.mad(addr, r, MATDIM, cc)
    kb.mul(addr, addr, 4)
    kb.st(0, best, index=addr, space=MemSpace.SHARED)
    kb.label("no_cell")
    kb.bar()
    kb.add(d, d, 1)
    kb.setp(pr, CmpOp.LE, d, 2 * SEQ)
    kb.bra("diag", cond=pr)
    # Write the matrix out (each thread handles a strided slice).
    kb.mov(d, kb.tid)
    kb.label("copy")
    kb.mul(addr, d, 4)
    kb.ld(tmp, 0, index=addr, space=MemSpace.SHARED)
    kb.mul(pr, kb.ctaid, CELLS)
    kb.add(pr, pr, d)
    kb.mul(pr, pr, 4)
    kb.st(kb.param(1), tmp, index=pr)
    kb.add(d, d, CTA)
    kb.setp(pr, CmpOp.LT, d, CELLS)
    kb.bra("copy", cond=pr)
    kb.exit_()

    kernel = kb.build(
        cta_size=CTA,
        grid_size=ctas,
        params=(a_scores, a_out),
        shared_bytes=CELLS * 4,
    )

    def numpy_check(mem: MemoryImage) -> None:
        got = mem.read_array(a_out, CELLS * ctas)
        for b in range(ctas):
            m = np.zeros((MATDIM, MATDIM))
            m[0, :] = -np.arange(MATDIM)
            m[:, 0] = -np.arange(MATDIM)
            s = scores[b]
            for rr in range(1, MATDIM):
                for cc_ in range(1, MATDIM):
                    m[rr, cc_] = max(
                        m[rr - 1, cc_ - 1] + s[rr - 1, cc_ - 1],
                        m[rr - 1, cc_] - GAP,
                        m[rr, cc_ - 1] - GAP,
                    )
            np.testing.assert_allclose(
                got[b * CELLS : (b + 1) * CELLS].reshape(MATDIM, MATDIM), m, rtol=1e-9
            )

    return common.Instance(
        name="needleman_wunsch",
        kernel=kernel,
        memory=memory,
        outputs=[("matrix", a_out, CELLS * ctas)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
