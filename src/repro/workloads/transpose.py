"""Transpose (CUDA SDK) — shared-memory tiled matrix transpose.

Each CTA moves a 16x16 tile through padded shared memory (the classic
17-column padding avoiding bank conflicts), with coalesced loads and
stores.  The tile round-trips ``reps`` times so the working set stays
L1-resident after the cold pass — the sizing knob that keeps this
kernel in the paper's regular (compute-limited) IPC band.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

TILE = 16
PAD = TILE + 1

PARAMS = {
    "tiny": dict(dim=32, reps=2),
    "bench": dict(dim=64, reps=3),
    "full": dict(dim=128, reps=4),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    dim, reps = p["dim"], p["reps"]
    tiles = dim // TILE
    gen = common.rng("transpose", size)
    src = gen.uniform(-1.0, 1.0, (dim, dim))

    memory = MemoryImage()
    a_in = memory.alloc_array(src.ravel())
    a_out = memory.alloc(dim * dim * 4)

    kb = KernelBuilder("transpose", nregs=20)
    r, c, trow, tcol, it, pr = kb.regs("r", "c", "trow", "tcol", "it", "pr")
    addr, v, sh = kb.regs("addr", "v", "sh")
    kb.shr(r, kb.tid, 4)
    kb.and_(c, kb.tid, TILE - 1)
    kb.shr(trow, kb.ctaid, kb.param(2))
    kb.and_(tcol, kb.ctaid, tiles - 1)
    kb.mov(it, 0)
    kb.label("rep")
    # Coalesced load in[trow*16+r, tcol*16+c] -> sh[r][c] (padded).
    kb.mad(addr, trow, TILE, r)
    kb.mul(addr, addr, dim)
    kb.mad(addr, tcol, TILE, addr)
    kb.add(addr, addr, c)
    kb.mul(addr, addr, 4)
    kb.ld(v, kb.param(0), index=addr)
    kb.mad(sh, r, PAD, c)
    kb.mul(sh, sh, 4)
    kb.st(0, v, index=sh, space=MemSpace.SHARED)
    kb.bar()
    # Coalesced store out[tcol*16+r, trow*16+c] <- sh[c][r].
    kb.mad(sh, c, PAD, r)
    kb.mul(sh, sh, 4)
    kb.ld(v, 0, index=sh, space=MemSpace.SHARED)
    kb.mad(addr, tcol, TILE, r)
    kb.mul(addr, addr, dim)
    kb.mad(addr, trow, TILE, addr)
    kb.add(addr, addr, c)
    kb.mul(addr, addr, 4)
    kb.st(kb.param(1), v, index=addr)
    kb.bar()
    kb.add(it, it, 1)
    kb.setp(pr, CmpOp.LT, it, reps)
    kb.bra("rep", cond=pr)
    kb.exit_()

    import math

    kernel = kb.build(
        cta_size=256,
        grid_size=tiles * tiles,
        params=(a_in, a_out, int(math.log2(tiles)) if tiles > 1 else 0),
        shared_bytes=TILE * PAD * 4,
    )

    def numpy_check(mem: MemoryImage) -> None:
        got = mem.read_array(a_out, dim * dim).reshape(dim, dim)
        np.testing.assert_allclose(got, src.T, rtol=1e-12)

    return common.Instance(
        name="transpose",
        kernel=kernel,
        memory=memory,
        outputs=[("out", a_out, dim * dim)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
