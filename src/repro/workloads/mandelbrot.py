"""Mandelbrot (CUDA SDK) — escape-time fractal rendering.

Each thread iterates one pixel's orbit until it escapes or hits the
iteration cap — the textbook intra-warp divergence pattern.  As in the
paper's observation, the outer loop over row blocks carries a thread
block synchronization barrier, which prevents warp-splits from running
ahead across iterations (section 5.1's Mandelbrot discussion).
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp
from repro.workloads import common

WIDTH = 32
CTA = 256
ROWS_PER_PASS = CTA // WIDTH  # 8

PARAMS = {
    "tiny": dict(ctas=1, passes=1, max_iter=24),
    "bench": dict(ctas=4, passes=2, max_iter=48),
    "full": dict(ctas=8, passes=4, max_iter=96),
}

X0, Y0 = -2.0, -1.25
DX, DY = 2.5 / WIDTH, 2.5 / 128


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    ctas, passes, max_iter = p["ctas"], p["passes"], p["max_iter"]
    pixels = CTA * passes * ctas

    memory = MemoryImage()
    a_out = memory.alloc(pixels * 4)

    kb = KernelBuilder("mandelbrot", nregs=26)
    px, py, blk, pr, addr = kb.regs("px", "py", "blk", "pr", "addr")
    cr, ci, zr, zi, zr2, zi2, it, tmp = kb.regs(
        "cr", "ci", "zr", "zi", "zr2", "zi2", "it", "tmp"
    )
    kb.and_(px, kb.tid, WIDTH - 1)
    kb.shr(py, kb.tid, 5)
    kb.mov(blk, 0)
    kb.label("rowblock")
    # c = (x0 + px dx, y0 + (global row) dy)
    kb.mad(cr, px, DX, X0)
    kb.mad(tmp, kb.ctaid, passes, blk)
    kb.mul(tmp, tmp, ROWS_PER_PASS)
    kb.add(tmp, tmp, py)
    kb.mad(ci, tmp, DY, Y0)
    kb.mov(zr, 0.0)
    kb.mov(zi, 0.0)
    kb.mov(it, 0)
    kb.label("orbit")
    kb.mul(zr2, zr, zr)
    kb.mul(zi2, zi, zi)
    kb.add(tmp, zr2, zi2)
    kb.setp(pr, CmpOp.GT, tmp, 4.0)
    kb.bra("escaped", cond=pr)
    kb.mul(zi, zi, zr)
    kb.mad(zi, zi, 1.0, zi)  # zi = 2 zr zi (via zi*zr + zi*zr)
    kb.add(zi, zi, ci)
    kb.sub(zr, zr2, zi2)
    kb.add(zr, zr, cr)
    kb.add(it, it, 1)
    kb.setp(pr, CmpOp.LT, it, max_iter)
    kb.bra("orbit", cond=pr)
    kb.label("escaped")
    # Store the iteration count for this pass's pixel.
    kb.mad(addr, kb.ctaid, passes, blk)
    kb.mul(addr, addr, CTA)
    kb.add(addr, addr, kb.tid)
    kb.mul(addr, addr, 4)
    kb.st(kb.param(0), it, index=addr)
    # The paper notes a block-wide barrier gates run-ahead here.
    kb.bar()
    kb.add(blk, blk, 1)
    kb.setp(pr, CmpOp.LT, blk, passes)
    kb.bra("rowblock", cond=pr)
    kb.exit_()

    kernel = kb.build(cta_size=CTA, grid_size=ctas, params=(a_out,))

    def numpy_check(mem: MemoryImage) -> None:
        got = mem.read_array(a_out, pixels)
        expect = np.empty(pixels)
        for cta in range(ctas):
            for blk in range(passes):
                for t in range(CTA):
                    px = t & (WIDTH - 1)
                    py = t >> 5
                    row = (cta * passes + blk) * ROWS_PER_PASS + py
                    cr, ci = X0 + px * DX, Y0 + row * DY
                    zr = zi = 0.0
                    it = 0
                    while it < max_iter:
                        zr2, zi2 = zr * zr, zi * zi
                        if zr2 + zi2 > 4.0:
                            break
                        zi = zi * zr
                        zi = zi + zi + ci
                        zr = zr2 - zi2 + cr
                        it += 1
                    expect[(cta * passes + blk) * CTA + t] = it
        np.testing.assert_array_equal(got, expect)

    return common.Instance(
        name="mandelbrot",
        kernel=kernel,
        memory=memory,
        outputs=[("iters", a_out, pixels)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
