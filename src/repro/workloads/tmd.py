"""TMD — Table Maker's Dilemma exhaustive search (Fortin et al.).

Each thread scans a slice of candidate arguments; candidates whose
fractional image lands near 0 or near 1 enter one of two data-dependent
refinement loops, both of which jump into a shared *record* block that
can break out of the whole search (multi-level exit).  The CFG is
unstructured: the record block joins paths from different nesting
levels, which is exactly the shape where thread-frontier reconvergence
beats the baseline stack (paper section 5.1).

Two variants reproduce the paper's layout experiment:

* ``tmd2`` — blocks emitted in thread-frontier order (what nvcc
  produces for every kernel but one);
* ``tmd1`` — the *same* CFG with the low-refinement blocks emitted
  after the loop tail, violating the frontier-layout property (the
  paper's "improper code layout" data point; it performs worse).

Both are built with ``layout="as_is"`` so the emission order survives.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp
from repro.workloads import common

ALPHA = 0.6180339887498949  # frac(golden ratio)
EPS = 0.05
REFINE = 8
MAX_HITS = 4
CTA = 256

PARAMS = {
    "tiny": dict(ctas=1, candidates=12),
    "bench": dict(ctas=4, candidates=24),
    "full": dict(ctas=8, candidates=48),
}


def _emit_main(kb: KernelBuilder, candidates: int):
    """Blocks shared by both variants; returns the emit closures."""
    i, m, x, y, k, pr, pr2, hits, addr = kb.regs(
        "i", "m", "x", "y", "k", "pr", "pr2", "hits", "addr"
    )

    def prologue():
        common.emit_global_tid(kb, i)
        kb.mov(m, 0)
        kb.mov(hits, 0)

    def loop_head():
        kb.label("loop")
        kb.mad(x, i, candidates, m)
        kb.add(x, x, 7.0)
        kb.mul(y, x, ALPHA)
        kb.floor(addr, y)
        kb.sub(y, y, addr)
        kb.setp(pr, CmpOp.LT, y, EPS)
        kb.bra("low", cond=pr)
        kb.setp(pr, CmpOp.GT, y, 1.0 - EPS)
        kb.bra("high", cond=pr)
        kb.bra("next")

    def low():
        # Refine toward 0: doubling walk, data-dependent exit.
        kb.label("low")
        kb.mov(k, 0)
        kb.label("low_loop")
        kb.add(y, y, y)
        kb.floor(addr, y)
        kb.sub(y, y, addr)
        kb.add(k, k, 1)
        kb.setp(pr, CmpOp.LT, k, REFINE)
        kb.setp(pr2, CmpOp.LT, y, 0.5)
        kb.and_(pr, pr, pr2)
        kb.bra("low_loop", cond=pr)
        kb.bra("record")

    def high():
        # Refine toward 1: mirrored walk.
        kb.label("high")
        kb.mov(k, 0)
        kb.label("high_loop")
        kb.sub(y, 1.0, y)
        kb.add(y, y, y)
        kb.floor(addr, y)
        kb.sub(y, y, addr)
        kb.add(k, k, 1)
        kb.setp(pr, CmpOp.LT, k, REFINE)
        kb.setp(pr2, CmpOp.GT, y, 0.5)
        kb.and_(pr, pr, pr2)
        kb.bra("high_loop", cond=pr)
        kb.bra("record")

    def record():
        # Shared tail of both refinement paths: bump the bucket count
        # and break the whole search after MAX_HITS (multi-level exit).
        kb.label("record")
        kb.and_(addr, i, 63)
        kb.mul(addr, addr, 4)
        kb.atom_add(None, kb.param(0), 1.0, index=addr)
        kb.add(hits, hits, 1)
        kb.setp(pr, CmpOp.GE, hits, MAX_HITS)
        kb.bra("done", cond=pr)
        kb.bra("next")

    def next_block():
        kb.label("next")
        kb.add(m, m, 1)
        kb.setp(pr, CmpOp.LT, m, candidates)
        kb.bra("loop", cond=pr)
        kb.bra("done")

    def done():
        kb.label("done")
        kb.mul(addr, i, 4)
        kb.st(kb.param(1), hits, index=addr)
        kb.exit_()

    return prologue, loop_head, low, high, record, next_block, done


def build(size: str = "bench", variant: str = "tmd2") -> common.Instance:
    common.check_size(size)
    if variant not in ("tmd1", "tmd2"):
        raise ValueError("variant must be tmd1 or tmd2")
    p = PARAMS[size]
    ctas, candidates = p["ctas"], p["candidates"]
    n = CTA * ctas

    memory = MemoryImage()
    a_buckets = memory.alloc_array(np.zeros(64))
    a_hits = memory.alloc(n * 4)

    kb = KernelBuilder(variant, nregs=20)
    prologue, loop_head, low, high, record, next_block, done = _emit_main(kb, candidates)
    if variant == "tmd2":
        # Thread-frontier-compatible order.
        prologue()
        loop_head()
        low()
        high()
        record()
        next_block()
        done()
    else:
        # Improper layout: the low-refinement blocks live after the
        # loop tail, so their branch into `record` goes backward to a
        # non-dominating block (frontier violation).
        prologue()
        loop_head()
        high()
        record()
        next_block()
        low()
        done()

    kernel = kb.build(
        cta_size=CTA,
        grid_size=ctas,
        params=(a_buckets, a_hits),
        layout="as_is",
    )

    def numpy_check(mem: MemoryImage) -> None:
        hits = np.zeros(n)
        buckets = np.zeros(64)
        for t in range(n):
            h = 0
            for m in range(candidates):
                x = float(t * candidates + m + 7)
                y = x * ALPHA
                y -= np.floor(y)
                if y < EPS:
                    k = 0
                    while True:
                        y = y + y
                        y -= np.floor(y)
                        k += 1
                        if not (k < REFINE and y < 0.5):
                            break
                elif y > 1.0 - EPS:
                    k = 0
                    while True:
                        y = 1.0 - y
                        y = y + y
                        y -= np.floor(y)
                        k += 1
                        if not (k < REFINE and y > 0.5):
                            break
                else:
                    continue
                buckets[t & 63] += 1
                h += 1
                if h >= MAX_HITS:
                    break
            hits[t] = h
        np.testing.assert_array_equal(mem.read_array(a_hits, n), hits)
        np.testing.assert_array_equal(mem.read_array(a_buckets, 64), buckets)

    return common.Instance(
        name=variant,
        kernel=kernel,
        memory=memory,
        outputs=[("buckets", a_buckets, 64), ("hits", a_hits, n)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size, variant),
    )
