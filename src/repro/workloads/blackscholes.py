"""BlackScholes (CUDA SDK) — European option pricing.

Straight-line, SFU-heavy floating point per thread (log, sqrt, exp,
reciprocal) with three coalesced loads and two stores.  The cumulative
normal distribution uses a logistic approximation, keeping the
instruction mix (MAD-heavy with SFU bursts) faithful to the original.
Regular: no data-dependent control flow at all.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp
from repro.workloads import common

PARAMS = {
    "tiny": dict(n=512, iterations=1),
    "bench": dict(n=2048, iterations=3),
    "full": dict(n=8192, iterations=4),
}

RISK_FREE = 0.02
VOLATILITY = 0.30
LN2 = float(np.log(2.0))
LOG2E = float(np.log2(np.e))


def _cnd_numpy(d: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp2(-1.702 * d * LOG2E))


def _reference(s, x, t):
    sqrt_t = np.sqrt(t)
    d1 = (np.log2(s / x) * LN2 + (RISK_FREE + 0.5 * VOLATILITY**2) * t) / (
        VOLATILITY * sqrt_t
    )
    d2 = d1 - VOLATILITY * sqrt_t
    discount = np.exp2(-RISK_FREE * t * LOG2E)
    call = s * _cnd_numpy(d1) - x * discount * _cnd_numpy(d2)
    put = x * discount * (1.0 - _cnd_numpy(d2)) - s * (1.0 - _cnd_numpy(d1))
    return call, put


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    n = PARAMS[size]["n"]
    iterations = PARAMS[size]["iterations"]
    gen = common.rng("blackscholes", size)
    price = gen.uniform(10.0, 100.0, n)
    strike = gen.uniform(10.0, 100.0, n)
    expiry = gen.uniform(0.25, 2.0, n)

    memory = MemoryImage()
    a_price = memory.alloc_array(price)
    a_strike = memory.alloc_array(strike)
    a_expiry = memory.alloc_array(expiry)
    a_call = memory.alloc(n * 4)
    a_put = memory.alloc(n * 4)

    kb = KernelBuilder("blackscholes")
    i, addr, rep, prep = kb.regs("i", "addr", "rep", "prep")
    s, x, t = kb.regs("s", "x", "t")
    sqrt_t, d1, d2, tmp, cnd1, cnd2, disc, call, put = kb.regs(
        "sqrt_t", "d1", "d2", "tmp", "cnd1", "cnd2", "disc", "call", "put"
    )
    common.emit_global_tid(kb, i)
    common.emit_byte_index(kb, addr, i)
    # The SDK kernel reprices NUM_ITERATIONS times; this is the knob
    # that keeps it compute-bound (regular) as in the paper.
    kb.mov(rep, 0)
    kb.label("repeat")
    kb.ld(s, kb.param(0), index=addr)
    kb.ld(x, kb.param(1), index=addr)
    kb.ld(t, kb.param(2), index=addr)
    kb.sqrt(sqrt_t, t)
    # d1 = (ln(S/X) + (r + v^2/2) t) / (v sqrt(t))
    kb.div(d1, s, x)
    kb.lg2(d1, d1)
    kb.mul(d1, d1, LN2)
    kb.mad(d1, t, RISK_FREE + 0.5 * VOLATILITY**2, d1)
    kb.mul(tmp, sqrt_t, VOLATILITY)
    kb.div(d1, d1, tmp)
    kb.sub(d2, d1, tmp)
    # CND via logistic: 1 / (1 + 2^(-1.702 * d * log2 e))
    for dst, src in ((cnd1, d1), (cnd2, d2)):
        kb.mul(dst, src, -1.702 * LOG2E)
        kb.ex2(dst, dst)
        kb.add(dst, dst, 1.0)
        kb.rcp(dst, dst)
    kb.mul(disc, t, -RISK_FREE * LOG2E)
    kb.ex2(disc, disc)
    # call = S*CND(d1) - X*disc*CND(d2)
    kb.mul(call, s, cnd1)
    kb.mul(tmp, x, disc)
    kb.mul(tmp, tmp, cnd2)
    kb.sub(call, call, tmp)
    # put = X*disc*(1-CND(d2)) - S*(1-CND(d1))
    kb.sub(put, 1.0, cnd2)
    kb.mul(tmp, x, disc)
    kb.mul(put, put, tmp)
    kb.sub(tmp, 1.0, cnd1)
    kb.mul(tmp, s, tmp)
    kb.sub(put, put, tmp)
    kb.st(kb.param(3), call, index=addr)
    kb.st(kb.param(4), put, index=addr)
    kb.add(rep, rep, 1)
    kb.setp(prep, CmpOp.LT, rep, iterations)
    kb.bra("repeat", cond=prep)
    kb.exit_()

    kernel = kb.build(
        cta_size=256,
        grid_size=n // 256,
        params=(a_price, a_strike, a_expiry, a_call, a_put),
    )

    def numpy_check(mem: MemoryImage) -> None:
        call, put = _reference(price, strike, expiry)
        np.testing.assert_allclose(mem.read_array(a_call, n), call, rtol=1e-9)
        np.testing.assert_allclose(mem.read_array(a_put, n), put, rtol=1e-9)

    return common.Instance(
        name="blackscholes",
        kernel=kernel,
        memory=memory,
        outputs=[("call", a_call, n), ("put", a_put, n)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
