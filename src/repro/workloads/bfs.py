"""BFS (Rodinia) — level-synchronous breadth-first search.

Each thread owns one node of a CTA-local CSR subgraph (the Rodinia
kernel-per-level host loop becomes an in-kernel level loop with CTA
barriers; edges stay within the CTA's partition so the barrier is a
correct synchronisation scope).  The per-node neighbour loop has a
data-dependent trip count drawn from a skewed degree distribution, and
frontier membership is data-dependent — the canonical irregular
workload of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp
from repro.workloads import common

CTA = 256

PARAMS = {
    "tiny": dict(ctas=1, levels=4, max_degree=8),
    "bench": dict(ctas=4, levels=6, max_degree=12),
    "full": dict(ctas=8, levels=8, max_degree=16),
}


def _make_graph(gen: np.random.Generator, n: int, max_degree: int):
    """Skewed-degree random graph with locality (edges within the
    partition, targets near the source so neighbour loads coalesce —
    otherwise the single LSU port hides all front-end effects)."""
    degrees = np.minimum(
        gen.zipf(1.6, n).astype(np.int64), max_degree
    )  # heavy-tailed degrees: a few hubs, many leaves
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=row_ptr[1:])
    m = int(row_ptr[-1])
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    cols = (src + gen.integers(1, 48, m)) % n
    return row_ptr, cols


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    ctas, levels, max_degree = p["ctas"], p["levels"], p["max_degree"]
    n = CTA * ctas
    gen = common.rng("bfs", size)

    row_ptr = np.zeros(n + 1, dtype=np.int64)
    cols_all = []
    # Per-CTA partitions: node ids are CTA-local in the column array.
    for c in range(ctas):
        rp, cl = _make_graph(gen, CTA, max_degree)
        row_ptr[c * CTA + 1 : (c + 1) * CTA + 1] = rp[1:] + row_ptr[c * CTA]
        cols_all.append(cl + c * CTA)
    cols = np.concatenate(cols_all) if cols_all else np.zeros(0, dtype=np.int64)

    dist = np.full(n, -1.0)
    cur = np.zeros(n)
    for c in range(ctas):
        dist[c * CTA] = 0.0
        cur[c * CTA] = 1.0

    memory = MemoryImage()
    a_rp = memory.alloc_array(row_ptr)
    a_cols = memory.alloc_array(cols if cols.size else np.zeros(1))
    a_dist = memory.alloc_array(dist)
    a_cur = memory.alloc_array(cur)
    a_next = memory.alloc_array(np.zeros(n))

    kb = KernelBuilder("bfs", nregs=26)
    node, addr, lvl, pr, inf = kb.regs("node", "addr", "lvl", "pr", "inf")
    e, eend, v, d, tmp, one = kb.regs("e", "eend", "v", "d", "tmp", "one")
    common.emit_global_tid(kb, node)
    kb.mov(one, 1.0)
    kb.mov(lvl, 0)
    kb.label("level")
    # Frontier membership test.
    kb.mul(addr, node, 4)
    kb.ld(inf, kb.param(3), index=addr)
    kb.setp(pr, CmpOp.EQ, inf, 0)
    kb.bra("skip_expand", cond=pr)
    # Expand: for e in row_ptr[node] .. row_ptr[node+1].
    kb.ld(e, kb.param(0), index=addr)
    kb.ld(eend, kb.param(0), index=addr, offset=4)
    kb.label("edge")
    kb.setp(pr, CmpOp.GE, e, eend)
    kb.bra("edges_done", cond=pr)
    kb.mul(tmp, e, 4)
    kb.ld(v, kb.param(1), index=tmp)
    kb.mul(tmp, v, 4)
    kb.ld(d, kb.param(2), index=tmp)
    kb.setp(pr, CmpOp.GE, d, 0)
    kb.bra("visited", cond=pr)
    kb.add(d, lvl, 1)
    kb.st(kb.param(2), d, index=tmp)
    kb.st(kb.param(4), one, index=tmp)
    kb.label("visited")
    kb.add(e, e, 1)
    kb.bra("edge")
    kb.label("edges_done")
    kb.label("skip_expand")
    kb.bar()
    # Frontier swap: cur <- next, next <- 0.
    kb.mul(addr, node, 4)
    kb.ld(tmp, kb.param(4), index=addr)
    kb.st(kb.param(3), tmp, index=addr)
    kb.st(kb.param(4), 0.0, index=addr)
    kb.bar()
    kb.add(lvl, lvl, 1)
    kb.setp(pr, CmpOp.LT, lvl, levels)
    kb.bra("level", cond=pr)
    kb.exit_()

    kernel = kb.build(
        cta_size=CTA,
        grid_size=ctas,
        params=(a_rp, a_cols, a_dist, a_cur, a_next),
    )

    def numpy_check(mem: MemoryImage) -> None:
        expect = np.full(n, -1.0)
        for c in range(ctas):
            expect[c * CTA] = 0.0
        frontier = [c * CTA for c in range(ctas)]
        for lvl in range(levels):
            nxt = []
            for u in frontier:
                for e in range(int(row_ptr[u]), int(row_ptr[u + 1])):
                    v = int(cols[e])
                    if expect[v] < 0:
                        expect[v] = lvl + 1
                        nxt.append(v)
            frontier = nxt
        np.testing.assert_array_equal(mem.read_array(a_dist, n), expect)

    return common.Instance(
        name="bfs",
        kernel=kernel,
        memory=memory,
        outputs=[("dist", a_dist, n)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
