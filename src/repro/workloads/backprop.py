"""Backprop (Rodinia) — neural-network layer forward pass.

Each thread evaluates one output neuron: the input activations are
staged in shared memory by the first ``IN`` threads of the CTA
(briefly predicated — the only non-uniformity), then every thread runs
a fully unrolled weighted sum and a logistic activation.  Several
epochs reuse the same weights, keeping them L1-resident.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

IN = 16
LOG2E = float(np.log2(np.e))

PARAMS = {
    "tiny": dict(n=256, epochs=2),
    "bench": dict(n=512, epochs=5),   # weights stay L1-resident
    "full": dict(n=2048, epochs=5),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    n, epochs = p["n"], p["epochs"]
    gen = common.rng("backprop", size)
    weights = gen.uniform(-0.5, 0.5, (IN, n))  # w[k*n + j], coalesced over j
    inputs = gen.uniform(0.0, 1.0, IN)

    memory = MemoryImage()
    a_w = memory.alloc_array(weights.ravel())
    a_x = memory.alloc_array(inputs)
    a_out = memory.alloc(n * 4)

    kb = KernelBuilder("backprop", nregs=20)
    j, e, pr, acc, addr, v, x = kb.regs("j", "e", "pr", "acc", "addr", "v", "x")
    common.emit_global_tid(kb, j)
    # First IN threads stage the activations into shared memory.
    kb.setp(pr, CmpOp.LT, kb.tid, IN)
    kb.mul(addr, kb.tid, 4)
    kb.ld(x, kb.param(1), index=addr, pred=pr)
    kb.st(0, x, index=addr, space=MemSpace.SHARED, pred=pr)
    kb.bar()
    kb.mov(e, 0)
    kb.mul(addr, j, 4)  # byte offset of column j, row offsets are static
    kb.label("epoch")
    kb.mov(acc, 0.0)
    for k in range(IN):
        kb.ld(v, kb.param(0), index=addr, offset=k * n * 4)
        kb.ld(x, 0, offset=k * 4, space=MemSpace.SHARED)
        kb.mad(acc, v, x, acc)
    kb.add(e, e, 1)
    kb.setp(pr, CmpOp.LT, e, epochs)
    kb.bra("epoch", cond=pr)
    # Logistic activation: 1 / (1 + 2^(-acc * log2 e)).
    kb.mul(acc, acc, -LOG2E)
    kb.ex2(acc, acc)
    kb.add(acc, acc, 1.0)
    kb.rcp(acc, acc)
    kb.mul(addr, j, 4)
    kb.st(kb.param(2), acc, index=addr)
    kb.exit_()

    kernel = kb.build(
        cta_size=256,
        grid_size=n // 256,
        params=(a_w, a_x, a_out),
        shared_bytes=IN * 4,
    )

    def numpy_check(mem: MemoryImage) -> None:
        acc = inputs @ weights
        out = 1.0 / (1.0 + np.exp2(-acc * LOG2E))
        np.testing.assert_allclose(mem.read_array(a_out, n), out, rtol=1e-9)

    return common.Instance(
        name="backprop",
        kernel=kernel,
        memory=memory,
        outputs=[("out", a_out, n)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
