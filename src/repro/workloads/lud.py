"""LUD (Rodinia) — in-place LU decomposition of a shared-memory tile.

Doolittle elimination over a 16x16 matrix per CTA: at step ``k`` only
the threads below the pivot row/column participate, so the active
triangle shrinks every iteration — systematic intra-warp imbalance,
one of the paper's clearest SWI targets.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

DIM = 16
CTA = DIM * DIM

PARAMS = {
    "tiny": dict(ctas=1),
    "bench": dict(ctas=4),
    "full": dict(ctas=8),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    ctas = PARAMS[size]["ctas"]
    cells = DIM * DIM
    total = cells * ctas
    gen = common.rng("lud", size)
    mats = gen.uniform(0.5, 2.0, (ctas, DIM, DIM))
    for m in mats:  # diagonally dominant => stable without pivoting
        m += np.eye(DIM) * DIM

    memory = MemoryImage()
    a_m = memory.alloc_array(mats.ravel())

    kb = KernelBuilder("lud", nregs=24)
    r, c, k, pr, pc, addr, base = kb.regs("r", "c", "k", "pr", "pc", "addr", "base")
    piv, lv, uv, v = kb.regs("piv", "lv", "uv", "v")
    kb.shr(r, kb.tid, 4)
    kb.and_(c, kb.tid, DIM - 1)
    kb.mul(base, kb.ctaid, cells)
    # Stage the matrix in shared memory.
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.ld(v, kb.param(0), index=addr)
    kb.mul(addr, kb.tid, 4)
    kb.st(0, v, index=addr, space=MemSpace.SHARED)
    kb.bar()
    kb.mov(k, 0)
    kb.label("step")
    # Column scale: threads (r > k, c == k) divide by the pivot.
    kb.setp(pr, CmpOp.GT, r, k)
    kb.setp(pc, CmpOp.EQ, c, k)
    kb.and_(pc, pr, pc)
    kb.bra("no_scale", cond=pc, neg=True)
    kb.mad(addr, k, DIM, k)
    kb.mul(addr, addr, 4)
    kb.ld(piv, 0, index=addr, space=MemSpace.SHARED)
    kb.mad(addr, r, DIM, k)
    kb.mul(addr, addr, 4)
    kb.ld(v, 0, index=addr, space=MemSpace.SHARED)
    kb.div(v, v, piv)
    kb.st(0, v, index=addr, space=MemSpace.SHARED)
    kb.label("no_scale")
    kb.bar()
    # Trailing submatrix update: threads (r > k, c > k).
    kb.setp(pr, CmpOp.GT, r, k)
    kb.setp(pc, CmpOp.GT, c, k)
    kb.and_(pc, pr, pc)
    kb.bra("no_update", cond=pc, neg=True)
    kb.mad(addr, r, DIM, k)
    kb.mul(addr, addr, 4)
    kb.ld(lv, 0, index=addr, space=MemSpace.SHARED)
    kb.mad(addr, k, DIM, c)
    kb.mul(addr, addr, 4)
    kb.ld(uv, 0, index=addr, space=MemSpace.SHARED)
    kb.mad(addr, r, DIM, c)
    kb.mul(addr, addr, 4)
    kb.ld(v, 0, index=addr, space=MemSpace.SHARED)
    kb.mul(lv, lv, uv)
    kb.sub(v, v, lv)
    kb.st(0, v, index=addr, space=MemSpace.SHARED)
    kb.label("no_update")
    kb.bar()
    kb.add(k, k, 1)
    kb.setp(pr, CmpOp.LT, k, DIM - 1)
    kb.bra("step", cond=pr)
    # Write back.
    kb.mul(addr, kb.tid, 4)
    kb.ld(v, 0, index=addr, space=MemSpace.SHARED)
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.st(kb.param(0), v, index=addr)
    kb.exit_()

    kernel = kb.build(
        cta_size=CTA, grid_size=ctas, params=(a_m,), shared_bytes=cells * 4
    )

    def numpy_check(mem: MemoryImage) -> None:
        got = mem.read_array(a_m, total)
        for b in range(ctas):
            m = mats[b].copy()
            for k in range(DIM - 1):
                m[k + 1 :, k] = m[k + 1 :, k] / m[k, k]
                m[k + 1 :, k + 1 :] -= np.outer(m[k + 1 :, k], m[k, k + 1 :])
            np.testing.assert_allclose(
                got[b * cells : (b + 1) * cells].reshape(DIM, DIM), m, rtol=1e-9
            )

    return common.Instance(
        name="lud",
        kernel=kernel,
        memory=memory,
        outputs=[("lu", a_m, total)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
