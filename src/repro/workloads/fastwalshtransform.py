"""FastWalshTransform (CUDA SDK) — in-shared-memory butterfly.

Each thread owns two elements of a CTA-resident array and performs the
classic Walsh-Hadamard butterflies, halving the stride each pass with
a barrier between passes.  Fully uniform control flow.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

PARAMS = {
    "tiny": dict(ctas=1),
    "bench": dict(ctas=4),
    "full": dict(ctas=16),
}

CTA = 256
N = 2 * CTA  # elements per CTA


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    ctas = PARAMS[size]["ctas"]
    total = N * ctas
    gen = common.rng("fastwalshtransform", size)
    data = gen.uniform(-1.0, 1.0, total)

    memory = MemoryImage()
    a_io = memory.alloc_array(data)

    kb = KernelBuilder("fastwalshtransform", nregs=20)
    stride, pos, pr, addr, a, b, base, tmp = kb.regs(
        "stride", "pos", "pr", "addr", "a", "b", "base", "tmp"
    )
    # Stage two elements per thread into shared memory.
    kb.mul(base, kb.ctaid, N)
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.ld(a, kb.param(0), index=addr)
    kb.ld(b, kb.param(0), index=addr, offset=CTA * 4)
    kb.mul(tmp, kb.tid, 4)
    kb.st(0, a, index=tmp, space=MemSpace.SHARED)
    kb.st(0, b, index=tmp, offset=CTA * 4, space=MemSpace.SHARED)
    kb.bar()
    kb.mov(stride, N // 2)
    kb.label("pass")
    # pos = 2*tid - (tid & (stride-1))
    kb.sub(tmp, stride, 1)
    kb.and_(tmp, kb.tid, tmp)
    kb.mul(pos, kb.tid, 2)
    kb.sub(pos, pos, tmp)
    kb.mul(addr, pos, 4)
    kb.ld(a, 0, index=addr, space=MemSpace.SHARED)
    kb.mul(tmp, stride, 4)
    kb.add(tmp, tmp, addr)
    kb.ld(b, 0, index=tmp, space=MemSpace.SHARED)
    kb.add(pos, a, b)
    kb.st(0, pos, index=addr, space=MemSpace.SHARED)
    kb.sub(pos, a, b)
    kb.st(0, pos, index=tmp, space=MemSpace.SHARED)
    kb.bar()
    kb.shr(stride, stride, 1)
    kb.setp(pr, CmpOp.GE, stride, 1)
    kb.bra("pass", cond=pr)
    # Write back.
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.mul(tmp, kb.tid, 4)
    kb.ld(a, 0, index=tmp, space=MemSpace.SHARED)
    kb.ld(b, 0, index=tmp, offset=CTA * 4, space=MemSpace.SHARED)
    kb.st(kb.param(0), a, index=addr)
    kb.st(kb.param(0), b, index=addr, offset=CTA * 4)
    kb.exit_()

    kernel = kb.build(
        cta_size=CTA, grid_size=ctas, params=(a_io,), shared_bytes=N * 4
    )

    def numpy_check(mem: MemoryImage) -> None:
        got = mem.read_array(a_io, total)
        for c in range(ctas):
            block = data[c * N : (c + 1) * N].copy()
            h = 1
            # Equivalent standard iterative WHT (order-independent result).
            while h < N:
                block = block.reshape(-1, 2 * h)
                top, bot = block[:, :h].copy(), block[:, h:].copy()
                block[:, :h], block[:, h:] = top + bot, top - bot
                block = block.ravel()
                h *= 2
            np.testing.assert_allclose(got[c * N : (c + 1) * N], block, rtol=1e-9)

    return common.Instance(
        name="fastwalshtransform",
        kernel=kernel,
        memory=memory,
        outputs=[("io", a_io, total)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
