"""SRAD (Rodinia) — speckle-reducing anisotropic diffusion.

Two shared-memory stencil passes per iteration on a 16x16 tile: the
first computes the diffusion coefficient with *data-dependent clamping
branches* (``c < 0`` / ``c > 1``), the second applies the divergence
update.  The clamp branches diverge on image content, which is what
puts SRAD in the paper's irregular set.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

DIM = 16
CELLS = DIM * DIM
Q0 = 0.05
LAMBDA = 0.25

PARAMS = {
    "tiny": dict(ctas=1, iters=1),
    "bench": dict(ctas=4, iters=2),
    "full": dict(ctas=8, iters=4),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    ctas, iters = p["ctas"], p["iters"]
    total = CELLS * ctas
    gen = common.rng("srad", size)
    # Mixed-contrast image: some tiles smooth, some speckled.
    img = gen.uniform(0.2, 1.0, total)
    img[gen.uniform(0, 1, total) < 0.3] *= 3.0

    memory = MemoryImage()
    a_img = memory.alloc_array(img)

    sh_img = 0
    sh_c = CELLS * 4  # coefficient plane

    kb = KernelBuilder("srad", nregs=28)
    r, c, it, pr, addr, base, tmp = kb.regs("r", "c", "it", "pr", "addr", "base", "tmp")
    v, dn, ds, de, dw, g2, l_, q, cf, nb = kb.regs(
        "v", "dn", "ds", "de", "dw", "g2", "l", "q", "cf", "nb"
    )
    kb.shr(r, kb.tid, 4)
    kb.and_(c, kb.tid, DIM - 1)
    kb.mul(base, kb.ctaid, CELLS)
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.ld(v, kb.param(0), index=addr)
    kb.mul(tmp, kb.tid, 4)
    kb.st(sh_img, v, index=tmp, space=MemSpace.SHARED)
    kb.bar()
    kb.mov(it, 0)
    kb.label("iter")

    def neighbour(dst, dr, dc):
        kb.add(addr, r, dr)
        kb.max_(addr, addr, 0)
        kb.min_(addr, addr, DIM - 1)
        kb.mul(addr, addr, DIM)
        kb.add(tmp, c, dc)
        kb.max_(tmp, tmp, 0)
        kb.min_(tmp, tmp, DIM - 1)
        kb.add(addr, addr, tmp)
        kb.mul(addr, addr, 4)
        kb.ld(dst, sh_img, index=addr, space=MemSpace.SHARED)
        kb.sub(dst, dst, v)

    # Pass 1: diffusion coefficient with clamping branches.
    kb.mul(tmp, kb.tid, 4)
    kb.ld(v, sh_img, index=tmp, space=MemSpace.SHARED)
    neighbour(dn, -1, 0)
    neighbour(ds, 1, 0)
    neighbour(dw, 0, -1)
    neighbour(de, 0, 1)
    kb.mul(g2, dn, dn)
    kb.mad(g2, ds, ds, g2)
    kb.mad(g2, dw, dw, g2)
    kb.mad(g2, de, de, g2)
    kb.mul(tmp, v, v)
    kb.add(tmp, tmp, 1e-6)
    kb.div(q, g2, tmp)
    # c = 1 / (1 + (q - q0) / (q0 * (1 + q0)))
    kb.sub(q, q, Q0)
    kb.mul(q, q, 1.0 / (Q0 * (1.0 + Q0)))
    kb.add(q, q, 1.0)
    kb.rcp(cf, q)
    # Divergent clamps (data-dependent): saturating cells recompute the
    # coefficient against the boundary exponent, as the Rodinia kernel
    # does when q leaves the stable range — both sides carry real work.
    kb.setp(pr, CmpOp.LT, cf, 0.0)
    kb.bra("not_neg", cond=pr, neg=True)
    kb.mul(cf, g2, 0.0)      # saturate low: kill the diffusion term
    kb.mad(cf, cf, 0.5, 0.0)
    kb.max_(cf, cf, 0.0)
    kb.bra("clamped")
    kb.label("not_neg")
    kb.setp(pr, CmpOp.GT, cf, 1.0)
    kb.bra("clamped", cond=pr, neg=True)
    kb.mul(cf, cf, 0.0)      # saturate high: full diffusion
    kb.add(cf, cf, 0.5)
    kb.add(cf, cf, 0.5)
    kb.min_(cf, cf, 1.0)
    kb.label("clamped")
    kb.mul(tmp, kb.tid, 4)
    kb.st(sh_c, cf, index=tmp, space=MemSpace.SHARED)
    kb.bar()

    # Pass 2: divergence update img += lambda/4 * sum(c_neighbour * d).
    def coeff_at(dst, dr, dc):
        kb.add(addr, r, dr)
        kb.max_(addr, addr, 0)
        kb.min_(addr, addr, DIM - 1)
        kb.mul(addr, addr, DIM)
        kb.add(tmp, c, dc)
        kb.max_(tmp, tmp, 0)
        kb.min_(tmp, tmp, DIM - 1)
        kb.add(addr, addr, tmp)
        kb.mul(addr, addr, 4)
        kb.ld(dst, sh_c, index=addr, space=MemSpace.SHARED)

    kb.mov(l_, 0.0)
    coeff_at(nb, 1, 0)   # south coefficient weights dS
    kb.mad(l_, nb, ds, l_)
    coeff_at(nb, 0, 1)   # east
    kb.mad(l_, nb, de, l_)
    kb.mul(tmp, kb.tid, 4)
    kb.ld(nb, sh_c, index=tmp, space=MemSpace.SHARED)
    kb.mad(l_, nb, dn, l_)
    kb.mad(l_, nb, dw, l_)
    kb.mad(v, l_, LAMBDA / 4.0, v)
    kb.bar()
    kb.mul(tmp, kb.tid, 4)
    kb.st(sh_img, v, index=tmp, space=MemSpace.SHARED)
    kb.bar()
    kb.add(it, it, 1)
    kb.setp(pr, CmpOp.LT, it, iters)
    kb.bra("iter", cond=pr)
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.st(kb.param(0), v, index=addr)
    kb.exit_()

    kernel = kb.build(
        cta_size=CELLS, grid_size=ctas, params=(a_img,), shared_bytes=2 * CELLS * 4
    )

    def numpy_check(mem: MemoryImage) -> None:
        got = mem.read_array(a_img, total)
        rr, cc = np.meshgrid(np.arange(DIM), np.arange(DIM), indexing="ij")

        def nb_delta(t, dr, dc):
            return t[np.clip(rr + dr, 0, DIM - 1), np.clip(cc + dc, 0, DIM - 1)] - t

        for b in range(ctas):
            t = img[b * CELLS : (b + 1) * CELLS].reshape(DIM, DIM).copy()
            for _ in range(iters):
                dn = nb_delta(t, -1, 0)
                ds = nb_delta(t, 1, 0)
                dw = nb_delta(t, 0, -1)
                de = nb_delta(t, 0, 1)
                g2 = dn**2 + ds**2 + dw**2 + de**2
                q = g2 / (t * t + 1e-6)
                cf = 1.0 / ((q - Q0) * (1.0 / (Q0 * (1.0 + Q0))) + 1.0)
                cf = np.clip(cf, 0.0, 1.0)
                cs = cf[np.clip(rr + 1, 0, DIM - 1), cc]
                ce = cf[rr, np.clip(cc + 1, 0, DIM - 1)]
                lap = cs * ds + ce * de + cf * dn + cf * dw
                t = t + lap * (LAMBDA / 4.0)
            np.testing.assert_allclose(
                got[b * CELLS : (b + 1) * CELLS].reshape(DIM, DIM), t, rtol=1e-9
            )

    return common.Instance(
        name="srad",
        kernel=kernel,
        memory=memory,
        outputs=[("img", a_img, total)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
