"""ConvolutionSeparable (CUDA SDK) — row convolution with halo.

Each CTA stages a tile plus left/right halos in shared memory; only
the first/last ``RADIUS`` threads perform the halo loads (divergent
apron branches), then all threads run the 17-tap filter.  The paper
groups it with the irregular applications: its IPC with 64-wide warps
is dragged below the threshold by the apron divergence and the memory
system rather than by data-dependent branches.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

RADIUS = 8
CTA = 256

PARAMS = {
    "tiny": dict(ctas=2, passes=1),
    "bench": dict(ctas=4, passes=2),
    "full": dict(ctas=16, passes=2),
}


def _taps() -> np.ndarray:
    x = np.arange(-RADIUS, RADIUS + 1, dtype=np.float64)
    k = np.exp(-(x**2) / (2.0 * (RADIUS / 3.0) ** 2))
    return k / k.sum()


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    ctas, passes = p["ctas"], p["passes"]
    n = CTA * ctas
    taps = _taps()
    gen = common.rng("convolutionseparable", size)
    img = gen.uniform(0.0, 1.0, n)

    memory = MemoryImage()
    a_in = memory.alloc_array(img)
    a_out = memory.alloc(n * 4)

    kb = KernelBuilder("convolutionseparable", nregs=22)
    i, addr, sh, acc, v, pr, idx, ps = kb.regs(
        "i", "addr", "sh", "acc", "v", "pr", "idx", "ps"
    )
    common.emit_global_tid(kb, i)
    kb.mov(ps, 0)
    kb.label("pass")
    # Main tile load: sh[RADIUS + tid] = in[i].
    kb.mul(addr, i, 4)
    kb.ld(v, kb.param(0), index=addr)
    kb.mul(sh, kb.tid, 4)
    kb.st(0, v, index=sh, offset=RADIUS * 4, space=MemSpace.SHARED)
    # Left apron: first RADIUS threads load in[clamp(i - RADIUS)].
    kb.setp(pr, CmpOp.LT, kb.tid, RADIUS)
    kb.bra("no_left", cond=pr, neg=True)
    kb.add(idx, i, -RADIUS)
    kb.max_(idx, idx, 0)
    kb.mul(addr, idx, 4)
    kb.ld(v, kb.param(0), index=addr)
    kb.st(0, v, index=sh, space=MemSpace.SHARED)
    kb.label("no_left")
    # Right apron: last RADIUS threads load in[clamp(i + RADIUS)].
    kb.setp(pr, CmpOp.GE, kb.tid, CTA - RADIUS)
    kb.bra("no_right", cond=pr, neg=True)
    kb.add(idx, i, RADIUS)
    kb.min_(idx, idx, n - 1)
    kb.mul(addr, idx, 4)
    kb.ld(v, kb.param(0), index=addr)
    kb.st(0, v, index=sh, offset=2 * RADIUS * 4, space=MemSpace.SHARED)
    kb.label("no_right")
    kb.bar()
    kb.mov(acc, 0.0)
    for t in range(2 * RADIUS + 1):
        kb.ld(v, 0, index=sh, offset=t * 4, space=MemSpace.SHARED)
        kb.mad(acc, v, float(taps[t]), acc)
    kb.mul(addr, i, 4)
    kb.st(kb.param(1), acc, index=addr)
    kb.bar()
    kb.add(ps, ps, 1)
    kb.setp(pr, CmpOp.LT, ps, passes)
    kb.bra("pass", cond=pr)
    kb.exit_()

    kernel = kb.build(
        cta_size=CTA,
        grid_size=ctas,
        params=(a_in, a_out),
        shared_bytes=(CTA + 2 * RADIUS) * 4,
    )

    def numpy_check(mem: MemoryImage) -> None:
        idx = np.arange(n)
        acc = np.zeros(n)
        for t in range(2 * RADIUS + 1):
            off = t - RADIUS
            j = np.clip(idx + off, 0, n - 1)
            acc += img[j] * taps[t]
        np.testing.assert_allclose(mem.read_array(a_out, n), acc, rtol=1e-9)

    return common.Instance(
        name="convolutionseparable",
        kernel=kernel,
        memory=memory,
        outputs=[("out", a_out, n)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
