"""Hotspot (Rodinia) — thermal simulation stencil.

Each CTA owns a 16x16 tile: per iteration, every thread reads its four
neighbours from shared memory (indices clamped branch-free) and
integrates the heat equation with its power density; boundary cells
take a short divergent branch that pins them to the ambient value
(Dirichlet boundary).  Mostly regular — the boundary branch touches
only edge lanes.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

DIM = 16
K_DIFF = 0.2
AMBIENT = 25.0

PARAMS = {
    "tiny": dict(ctas=2, iters=2),
    "bench": dict(ctas=4, iters=4),
    "full": dict(ctas=8, iters=8),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    ctas, iters = p["ctas"], p["iters"]
    cells = DIM * DIM
    total = cells * ctas
    gen = common.rng("hotspot", size)
    temp = gen.uniform(40.0, 90.0, total)
    power = gen.uniform(0.0, 2.0, total)

    memory = MemoryImage()
    a_temp = memory.alloc_array(temp)
    a_power = memory.alloc_array(power)

    kb = KernelBuilder("hotspot", nregs=24)
    r, c, it, pr, edge, addr, base = kb.regs("r", "c", "it", "pr", "edge", "addr", "base")
    t, pw, acc, nb, idx, tmp = kb.regs("t", "pw", "acc", "nb", "idx", "tmp")
    kb.shr(r, kb.tid, 4)
    kb.and_(c, kb.tid, DIM - 1)
    kb.mul(base, kb.ctaid, cells)
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.ld(t, kb.param(0), index=addr)
    kb.ld(pw, kb.param(1), index=addr)
    kb.mul(tmp, kb.tid, 4)
    kb.st(0, t, index=tmp, space=MemSpace.SHARED)
    kb.bar()
    # Edge predicate: r or c on the boundary.
    kb.setp(edge, CmpOp.EQ, r, 0)
    kb.setp(pr, CmpOp.EQ, r, DIM - 1)
    kb.or_(edge, edge, pr)
    kb.setp(pr, CmpOp.EQ, c, 0)
    kb.or_(edge, edge, pr)
    kb.setp(pr, CmpOp.EQ, c, DIM - 1)
    kb.or_(edge, edge, pr)
    kb.mov(it, 0)
    kb.label("iter")
    kb.mov(acc, 0.0)
    for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        kb.add(idx, r, dr)
        kb.max_(idx, idx, 0)
        kb.min_(idx, idx, DIM - 1)
        kb.mul(idx, idx, DIM)
        kb.add(tmp, c, dc)
        kb.max_(tmp, tmp, 0)
        kb.min_(tmp, tmp, DIM - 1)
        kb.add(idx, idx, tmp)
        kb.mul(idx, idx, 4)
        kb.ld(nb, 0, index=idx, space=MemSpace.SHARED)
        kb.add(acc, acc, nb)
    kb.mad(acc, t, -4.0, acc)
    kb.mad(acc, acc, K_DIFF, pw)
    kb.add(t, t, acc)
    # Divergent boundary handling: edge cells relax toward ambient.
    kb.bra("interior", cond=edge, neg=True)
    kb.sub(t, t, AMBIENT)
    kb.mul(t, t, 0.5)
    kb.add(t, t, AMBIENT)
    kb.label("interior")
    kb.bar()
    kb.mul(tmp, kb.tid, 4)
    kb.st(0, t, index=tmp, space=MemSpace.SHARED)
    kb.bar()
    kb.add(it, it, 1)
    kb.setp(pr, CmpOp.LT, it, iters)
    kb.bra("iter", cond=pr)
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.st(kb.param(0), t, index=addr)
    kb.exit_()

    kernel = kb.build(
        cta_size=cells, grid_size=ctas, params=(a_temp, a_power), shared_bytes=cells * 4
    )

    def numpy_check(mem: MemoryImage) -> None:
        got = mem.read_array(a_temp, total)
        for blk in range(ctas):
            t = temp[blk * cells : (blk + 1) * cells].reshape(DIM, DIM).copy()
            pw = power[blk * cells : (blk + 1) * cells].reshape(DIM, DIM)
            rr, cc = np.meshgrid(np.arange(DIM), np.arange(DIM), indexing="ij")
            edge = (rr == 0) | (rr == DIM - 1) | (cc == 0) | (cc == DIM - 1)
            for _ in range(iters):
                acc = np.zeros_like(t)
                for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                    acc += t[np.clip(rr + dr, 0, DIM - 1), np.clip(cc + dc, 0, DIM - 1)]
                tn = t + ((acc + t * -4.0) * K_DIFF + pw)
                tn[edge] = (tn[edge] - AMBIENT) * 0.5 + AMBIENT
                t = tn
            np.testing.assert_allclose(
                got[blk * cells : (blk + 1) * cells], t.ravel(), rtol=1e-9
            )

    return common.Instance(
        name="hotspot",
        kernel=kernel,
        memory=memory,
        outputs=[("temp", a_temp, total)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
