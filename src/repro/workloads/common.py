"""Shared workload plumbing: instances, references, helpers."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.functional.interp import run_kernel
from repro.functional.memory import MemoryImage
from repro.isa.builder import Kernel, KernelBuilder

#: Valid workload sizes.
SIZES = ("tiny", "bench", "full")

#: Accepted spellings that map onto a canonical size.  ``smoke`` is
#: the CI / CLI name for the smallest grids; normalising it up front
#: keeps the experiment caches keyed on one canonical string.
SIZE_ALIASES = {"smoke": "tiny"}


@dataclass
class Instance:
    """One built workload: kernel + initialised memory + outputs.

    ``outputs`` lists (label, byte address, word count) regions whose
    final contents define functional correctness.  ``numpy_check``,
    when present, validates those regions against an independent numpy
    model of the algorithm (raises AssertionError on mismatch).
    """

    name: str
    kernel: Kernel
    memory: MemoryImage
    outputs: List[Tuple[str, int, int]]
    numpy_check: Optional[Callable[[MemoryImage], None]] = None
    rebuild: Optional[Callable[[], "Instance"]] = None

    def fresh(self) -> "Instance":
        """A new instance with untouched memory (runs mutate memory)."""
        if self.rebuild is None:
            raise RuntimeError("workload %s has no rebuild closure" % self.name)
        return self.rebuild()

    def reference_outputs(self) -> Dict[str, np.ndarray]:
        """Final output regions per the reference interpreter."""
        ref = self.fresh()
        run_kernel(ref.kernel, ref.memory)
        return {
            label: ref.memory.read_array(addr, count)
            for label, addr, count in ref.outputs
        }

    def read_outputs(self) -> Dict[str, np.ndarray]:
        return {
            label: self.memory.read_array(addr, count)
            for label, addr, count in self.outputs
        }


def normalize_size(size: str) -> str:
    """Canonical size name, resolving aliases (``smoke`` -> ``tiny``).

    Raises a ValueError naming every accepted spelling, so a CLI typo
    surfaces as a one-line fix rather than a KeyError deep in a
    workload builder.
    """
    canonical = SIZE_ALIASES.get(size, size)
    if canonical not in SIZES:
        accepted = list(SIZES) + sorted(SIZE_ALIASES)
        raise ValueError(
            "unknown size %r: choose one of %s" % (size, ", ".join(accepted))
        )
    return canonical


def check_size(size: str) -> None:
    """Builders take canonical sizes only (their parameter tables are
    keyed on them); aliases are resolved earlier by
    :func:`repro.workloads.get_workload` via :func:`normalize_size`."""
    if size not in SIZES:
        raise ValueError("size must be one of %s, got %r" % (SIZES, size))


def rng(name: str, size: str) -> np.random.Generator:
    """Deterministic per-(workload, size) random source.

    Seeded by a stable digest — ``hash()`` is randomised per process,
    which would rebuild different workload data in every session and
    silently invalidate the on-disk experiment cache.
    """
    digest = hashlib.sha256(("%s/%s" % (name, size)).encode()).digest()
    seed = int.from_bytes(digest[:4], "little")
    return np.random.default_rng(seed)


def emit_global_tid(kb: KernelBuilder, dst) -> None:
    """``dst = ctaid * ntid + tid`` (global thread index)."""
    kb.mov(dst, kb.tid)
    kb.mad(dst, kb.ctaid, kb.ntid, dst)


def emit_byte_index(kb: KernelBuilder, dst, idx) -> None:
    """``dst = idx * 4`` (word index to byte offset)."""
    kb.mul(dst, idx, 4)


#: LCG constants small enough that products stay exact in float64.
LCG_A = 1665
LCG_C = 101
LCG_MASK = (1 << 20) - 1


def emit_lcg(kb: KernelBuilder, state) -> None:
    """Advance an in-register LCG: ``state = (a*state + c) & mask``."""
    kb.mad(state, state, LCG_A, LCG_C)
    kb.and_(state, state, LCG_MASK)


def lcg_next(state: np.ndarray) -> np.ndarray:
    """Numpy twin of :func:`emit_lcg` for reference checks."""
    return (state * LCG_A + LCG_C).astype(np.int64) & LCG_MASK
