"""Histogram (CUDA SDK histogram64) — shared-memory atomic histogram.

As in the SDK kernel, each thread loads packed 32-bit words and
extracts four byte-sized samples per word (shift/mask arithmetic
between the atomics), scattering data-dependent atomic increments into
a CTA-local shared histogram; conflicting bins serialise in the LSU.
Per-CTA results then merge into the global histogram with global
atomics.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

BINS = 64
CTA = 256

PARAMS = {
    "tiny": dict(ctas=1, words=2),
    "bench": dict(ctas=4, words=4),
    "full": dict(ctas=8, words=8),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    p = PARAMS[size]
    ctas, words = p["ctas"], p["words"]
    n_words = CTA * ctas * words
    gen = common.rng("histogram", size)
    # Mildly skewed samples: mostly uniform with a hot-bin minority.
    samples = gen.integers(0, BINS, 4 * n_words)
    hot = gen.uniform(0, 1, 4 * n_words) < 0.2
    samples[hot] = gen.integers(0, 4, int(hot.sum()))
    samples = samples.astype(np.int64)
    packed = (
        samples[0::4]
        + samples[1::4] * 256
        + samples[2::4] * 65536
        + samples[3::4] * 16777216
    ).astype(np.float64)

    memory = MemoryImage()
    a_data = memory.alloc_array(packed)
    a_hist = memory.alloc_array(np.zeros(BINS))

    kb = KernelBuilder("histogram", nregs=20)
    i, k, pr, addr, w, b, v = kb.regs("i", "k", "pr", "addr", "w", "b", "v")
    # Zero the shared histogram (first BINS threads).
    kb.setp(pr, CmpOp.LT, kb.tid, BINS)
    kb.mul(addr, kb.tid, 4)
    kb.st(0, 0.0, index=addr, space=MemSpace.SHARED, pred=pr)
    kb.bar()
    common.emit_global_tid(kb, i)
    kb.mov(k, 0)
    kb.label("word")
    # Strided packed-word load, then four byte extractions + atomics.
    kb.mad(addr, k, CTA * ctas, i)
    kb.mul(addr, addr, 4)
    kb.ld(w, kb.param(0), index=addr)
    for byte in range(4):
        kb.shr(b, w, 8 * byte)
        kb.and_(b, b, 0xFF)
        kb.mul(b, b, 4)
        kb.atom_add(None, 0, 1.0, index=b, space=MemSpace.SHARED)
    kb.add(k, k, 1)
    kb.setp(pr, CmpOp.LT, k, words)
    kb.bra("word", cond=pr)
    kb.bar()
    # Merge into the global histogram.
    kb.setp(pr, CmpOp.LT, kb.tid, BINS)
    kb.bra("done", cond=pr, neg=True)
    kb.mul(addr, kb.tid, 4)
    kb.ld(v, 0, index=addr, space=MemSpace.SHARED)
    kb.atom_add(None, kb.param(1), v, index=addr)
    kb.label("done")
    kb.exit_()

    kernel = kb.build(
        cta_size=CTA,
        grid_size=ctas,
        params=(a_data, a_hist),
        shared_bytes=BINS * 4,
    )

    def numpy_check(mem: MemoryImage) -> None:
        expect = np.bincount(samples, minlength=BINS).astype(np.float64)
        np.testing.assert_array_equal(mem.read_array(a_hist, BINS), expect)

    return common.Instance(
        name="histogram",
        kernel=kernel,
        memory=memory,
        outputs=[("hist", a_hist, BINS)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
