"""MatrixMul (CUDA SDK) — shared-memory tiled matrix multiply.

Each 256-thread CTA computes one 16x16 tile of C, looping over K in
16-wide tile steps: coalesced global loads into shared memory, a
barrier, a fully unrolled 16-step inner product, and another barrier.
Regular: uniform trip counts, no divergence beyond none at all.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

TILE = 16

PARAMS = {
    "tiny": dict(dim=16),
    "bench": dict(dim=32),
    "full": dict(dim=64),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    dim = PARAMS[size]["dim"]
    tiles = dim // TILE
    gen = common.rng("matrixmul", size)
    a = gen.uniform(-1.0, 1.0, (dim, dim))
    b = gen.uniform(-1.0, 1.0, (dim, dim))

    memory = MemoryImage()
    a_a = memory.alloc_array(a.ravel())
    a_b = memory.alloc_array(b.ravel())
    a_c = memory.alloc(dim * dim * 4)

    kb = KernelBuilder("matrixmul", nregs=24)
    r, c, trow, tcol, row, col = kb.regs("r", "c", "trow", "tcol", "row", "col")
    kt, p, acc, addr, va, vb, tmp = kb.regs("kt", "p", "acc", "addr", "va", "vb", "tmp")
    sh_a, sh_b = 0, TILE * TILE * 4  # shared layout: A tile then B tile

    kb.shr(r, kb.tid, 4)           # row within tile
    kb.and_(c, kb.tid, TILE - 1)   # col within tile
    kb.shr(trow, kb.ctaid, kb.param(3))   # ctaid / tiles (log2 shift)
    kb.and_(tcol, kb.ctaid, tiles - 1)
    kb.mad(row, trow, TILE, r)
    kb.mad(col, tcol, TILE, c)
    kb.mov(acc, 0.0)
    kb.mov(kt, 0)
    kb.label("ktile")
    # Load A[row, kt*16 + c] and B[kt*16 + r, col] into shared.
    kb.mad(addr, row, dim, c)
    kb.mad(addr, kt, TILE, addr)
    kb.mul(addr, addr, 4)
    kb.ld(va, kb.param(0), index=addr)
    kb.mad(addr, kt, TILE, r)
    kb.mad(addr, addr, dim, col)
    kb.mul(addr, addr, 4)
    kb.ld(vb, kb.param(1), index=addr)
    kb.mad(addr, r, TILE, c)
    kb.mul(addr, addr, 4)
    kb.st(sh_a, va, index=addr, space=MemSpace.SHARED)
    kb.st(sh_b, vb, index=addr, space=MemSpace.SHARED)
    kb.bar()
    ra, ca = kb.regs("ra", "ca")
    kb.mul(ra, r, TILE * 4)  # byte offset of A-tile row r
    kb.mul(ca, c, 4)         # byte offset of B-tile column c
    for k in range(TILE):
        # A element sh_a[r*16 + k]; B element sh_b[k*16 + c].
        kb.ld(va, sh_a, index=ra, offset=k * 4, space=MemSpace.SHARED)
        kb.ld(vb, sh_b, index=ca, offset=k * TILE * 4, space=MemSpace.SHARED)
        kb.mad(acc, va, vb, acc)
    kb.bar()
    kb.add(kt, kt, 1)
    kb.setp(p, CmpOp.LT, kt, tiles)
    kb.bra("ktile", cond=p)
    kb.mad(addr, row, dim, col)
    kb.mul(addr, addr, 4)
    kb.st(kb.param(2), acc, index=addr)
    kb.exit_()

    import math

    kernel = kb.build(
        cta_size=256,
        grid_size=tiles * tiles,
        params=(a_a, a_b, a_c, int(math.log2(tiles)) if tiles > 1 else 0),
        shared_bytes=2 * TILE * TILE * 4,
    )

    def numpy_check(mem: MemoryImage) -> None:
        got = mem.read_array(a_c, dim * dim).reshape(dim, dim)
        np.testing.assert_allclose(got, a @ b, rtol=1e-9)

    return common.Instance(
        name="matrixmul",
        kernel=kernel,
        memory=memory,
        outputs=[("c", a_c, dim * dim)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
