"""SortingNetworks (CUDA SDK) — bitonic sort in shared memory.

Each thread owns one compare-exchange per pass; the swap decision
``(a > b) == direction`` is taken with a real branch (as the SDK kernel
does through its ``Comparator``), so every pass diverges data-
dependently, separated by barriers.  N = 2 x CTA elements.
"""

from __future__ import annotations

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace
from repro.workloads import common

CTA = 128
N = 2 * CTA

PARAMS = {
    "tiny": dict(ctas=1),
    "bench": dict(ctas=4),
    "full": dict(ctas=8),
}


def build(size: str = "bench") -> common.Instance:
    common.check_size(size)
    ctas = PARAMS[size]["ctas"]
    total = N * ctas
    gen = common.rng("sortingnetworks", size)
    data = gen.permutation(total).astype(np.float64)
    vals = data * 3.0 + 1.0  # payload travelling with each key

    memory = MemoryImage()
    a_io = memory.alloc_array(data)
    a_val = memory.alloc_array(vals)

    kb = KernelBuilder("sortingnetworks", nregs=24)
    base, addr, tmp, a, b, pos, pr = kb.regs("base", "addr", "tmp", "a", "b", "pos", "pr")
    sz, stride, ddd, gt, va, vb = kb.regs("sz", "stride", "ddd", "gt", "va", "vb")
    VOFF = N * 4  # shared-memory offset of the value plane
    kb.mul(base, kb.ctaid, N)
    # Stage two key-value pairs per thread.
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.ld(a, kb.param(0), index=addr)
    kb.ld(b, kb.param(0), index=addr, offset=CTA * 4)
    kb.ld(va, kb.param(1), index=addr)
    kb.ld(vb, kb.param(1), index=addr, offset=CTA * 4)
    kb.mul(tmp, kb.tid, 4)
    kb.st(0, a, index=tmp, space=MemSpace.SHARED)
    kb.st(0, b, index=tmp, offset=CTA * 4, space=MemSpace.SHARED)
    kb.st(VOFF, va, index=tmp, space=MemSpace.SHARED)
    kb.st(VOFF, vb, index=tmp, offset=CTA * 4, space=MemSpace.SHARED)
    kb.bar()
    kb.mov(sz, 2)
    kb.label("size_loop")
    # ddd = ascending iff (tid & (size/2)) == 0
    kb.shr(ddd, sz, 1)
    kb.and_(ddd, kb.tid, ddd)
    kb.setp(ddd, CmpOp.EQ, ddd, 0)
    kb.shr(stride, sz, 1)
    kb.label("stride_loop")
    kb.bar()
    # pos = 2*tid - (tid & (stride - 1))
    kb.sub(tmp, stride, 1)
    kb.and_(tmp, kb.tid, tmp)
    kb.mul(pos, kb.tid, 2)
    kb.sub(pos, pos, tmp)
    kb.mul(addr, pos, 4)
    kb.ld(a, 0, index=addr, space=MemSpace.SHARED)
    kb.mul(tmp, stride, 4)
    kb.add(tmp, tmp, addr)
    kb.ld(b, 0, index=tmp, space=MemSpace.SHARED)
    # Divergent comparator: swap key AND value when (a > b) == ddd
    # (the SDK sorts key-value pairs; the swap path is the fat side).
    kb.setp(gt, CmpOp.GT, a, b)
    kb.setp(gt, CmpOp.EQ, gt, ddd)
    kb.bra("no_swap", cond=gt, neg=True)
    kb.ld(va, VOFF, index=addr, space=MemSpace.SHARED)
    kb.ld(vb, VOFF, index=tmp, space=MemSpace.SHARED)
    kb.st(0, b, index=addr, space=MemSpace.SHARED)
    kb.st(0, a, index=tmp, space=MemSpace.SHARED)
    kb.st(VOFF, vb, index=addr, space=MemSpace.SHARED)
    kb.st(VOFF, va, index=tmp, space=MemSpace.SHARED)
    kb.label("no_swap")
    kb.shr(stride, stride, 1)
    kb.setp(pr, CmpOp.GE, stride, 1)
    kb.bra("stride_loop", cond=pr)
    kb.bar()
    kb.mul(sz, sz, 2)
    kb.setp(pr, CmpOp.LE, sz, N)
    kb.bra("size_loop", cond=pr)
    # Write back keys and values.
    kb.add(addr, base, kb.tid)
    kb.mul(addr, addr, 4)
    kb.mul(tmp, kb.tid, 4)
    kb.ld(a, 0, index=tmp, space=MemSpace.SHARED)
    kb.ld(b, 0, index=tmp, offset=CTA * 4, space=MemSpace.SHARED)
    kb.st(kb.param(0), a, index=addr)
    kb.st(kb.param(0), b, index=addr, offset=CTA * 4)
    kb.ld(va, VOFF, index=tmp, space=MemSpace.SHARED)
    kb.ld(vb, VOFF, index=tmp, offset=CTA * 4, space=MemSpace.SHARED)
    kb.st(kb.param(1), va, index=addr)
    kb.st(kb.param(1), vb, index=addr, offset=CTA * 4)
    kb.exit_()

    kernel = kb.build(
        cta_size=CTA, grid_size=ctas, params=(a_io, a_val), shared_bytes=2 * N * 4
    )

    def numpy_check(mem: MemoryImage) -> None:
        got = mem.read_array(a_io, total)
        got_vals = mem.read_array(a_val, total)
        for c in range(ctas):
            block = got[c * N : (c + 1) * N]
            # The last merge stage (size == N, ddd from tid) sorts the
            # full block ascending; values must follow their keys.
            expect = np.sort(data[c * N : (c + 1) * N])
            np.testing.assert_array_equal(block, expect)
            np.testing.assert_array_equal(
                got_vals[c * N : (c + 1) * N], expect * 3.0 + 1.0
            )

    return common.Instance(
        name="sortingnetworks",
        kernel=kernel,
        memory=memory,
        outputs=[("io", a_io, total), ("vals", a_val, total)],
        numpy_check=numpy_check,
        rebuild=lambda: build(size),
    )
