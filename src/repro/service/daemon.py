"""The ``repro serve`` daemon: sweep submission over HTTP.

Pure stdlib (``http.server.ThreadingHTTPServer``) — no new
dependencies.  The daemon owns a :class:`~repro.service.store.ResultStore`
(the content-addressed shared result store) and a pool of worker
threads draining a bounded simulation queue:

``POST /v1/jobs``
    submit cells (a :data:`~repro.service.protocol.MSG_SUBMIT`
    envelope).  Each cell is triaged under one lock: served from the
    store, *coalesced* onto an identical in-flight cell (N concurrent
    submissions of one cell hash cost one simulation), or queued.
    When the queue is full the daemon answers **429** with a
    ``Retry-After`` header instead of buffering unboundedly.
``GET /v1/jobs/<id>``             job status snapshot.
``GET /v1/jobs/<id>/result``      per-cell results (202 while running).
``GET /v1/jobs/<id>/events``      line-delimited progress stream fed by
                                  per-cell completions, with heartbeat
                                  status lines during long gaps.
``POST /v1/jobs/<id>/cancel``     abandon not-yet-simulated cells.
``GET /v1/cells/<hash>``          cached-cell lookup by content address.
``GET /v1/health``                accounting counters + store info.

Accounting counters (``cells_simulated`` / ``cells_store`` /
``cells_coalesced`` / ...) are the daemon's ground truth for "N
identical submissions cost one simulation" — CI and the service tests
assert on them.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.api.cache import stats_to_payload
from repro.api.engine import Engine
from repro.service import protocol
from repro.service.faults import (
    FAULT_CRASH_AFTER_PUBLISH,
    FAULT_CRASH_BEFORE_PUBLISH,
    FAULT_DELAYED_RESPONSE,
    FAULT_DROP_CONNECTION,
    FAULT_TRUNCATE_RESPONSE,
    FAULT_WORKER_EXCEPTION,
    SITE_HTTP,
    SITE_WORKER,
    DaemonCrash,
    FaultInjected,
    FaultPlan,
)
from repro.service.journal import JobJournal, JournalCell, resolve_journal_path
from repro.service.protocol import ProtocolError, SubmittedCell
from repro.service.store import ResultStore, is_cell_digest, resolve_store_dir

#: Protocol error code -> HTTP status.
_HTTP_STATUS: Dict[str, int] = {
    protocol.ERR_BAD_REQUEST: 400,
    protocol.ERR_VERSION: 400,
    protocol.ERR_UNKNOWN_JOB: 404,
    protocol.ERR_UNKNOWN_CELL: 404,
    protocol.ERR_QUEUE_FULL: 429,
    protocol.ERR_SHUTTING_DOWN: 503,
    protocol.ERR_INTERNAL: 500,
}

#: Counter names reported by ``/v1/health`` (a closed set, so a typo'd
#: bump is a KeyError in tests rather than a silently new counter).
COUNTERS: Tuple[str, ...] = (
    "jobs_submitted",
    "jobs_cancelled",
    "jobs_resumed",
    "cells_requested",
    "cells_simulated",
    "cells_store",
    "cells_coalesced",
    "cells_failed",
    "cells_skipped",
    "cells_published",
)


class _Work:
    """One unique in-flight simulation, shared by every waiting job."""

    __slots__ = ("digest", "workload", "size", "config", "verify", "waiters")

    def __init__(
        self, cell: Union[SubmittedCell, JournalCell], verify: bool
    ) -> None:
        self.digest = cell.hash
        self.workload = cell.workload
        self.size = cell.size
        self.config = cell.config
        self.verify = verify
        #: (job, cell id, source label) triples resolved on completion.
        self.waiters: List[Tuple["Job", int, str]] = []


class Job:
    """One submission: per-cell outcomes plus a progress event log.

    Progress events are *published* to an append-only history and
    fanned out to per-stream subscriber queues — never consumed
    destructively from a shared queue.  A client that disconnects
    mid-stream therefore cannot swallow the final status line for
    anyone else, and a subscriber attaching after the job finished
    replays the whole history, terminal status included.  The history
    is bounded by the job itself (one progress line per cell plus one
    terminal status), not by run length.
    """

    def __init__(self, job_id: str, total: int) -> None:
        self.id = job_id
        self.total = total
        self.cancelled = False
        self.stopped = False
        self.cells: Dict[int, Dict[str, object]] = {}
        self.finished = threading.Event()
        self._events_lock = threading.Lock()
        self._history: List[Dict[str, object]] = []
        self._subscribers: List["queue.Queue[Dict[str, object]]"] = []

    def publish(self, event: Dict[str, object]) -> None:
        """Append one event and fan it out to every live subscriber."""
        with self._events_lock:
            self._history.append(event)
            for subscriber in self._subscribers:
                subscriber.put(event)

    def subscribe(self) -> "queue.Queue[Dict[str, object]]":
        """A fresh event queue, pre-loaded with the full history."""
        subscription: "queue.Queue[Dict[str, object]]" = queue.Queue()
        with self._events_lock:
            for event in self._history:
                subscription.put(event)
            self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self, subscription: "queue.Queue[Dict[str, object]]") -> None:
        with self._events_lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass  # already detached

    @property
    def done(self) -> int:
        return len(self.cells)

    @property
    def state(self) -> str:
        if self.cancelled:
            return protocol.JOB_CANCELLED
        if self.done >= self.total:
            return protocol.JOB_DONE
        if self.stopped:
            return protocol.JOB_STOPPED
        if self.done:
            return protocol.JOB_RUNNING
        return protocol.JOB_QUEUED

    def status_message(self) -> Dict[str, object]:
        return protocol.envelope(
            protocol.MSG_STATUS,
            job=self.id,
            state=self.state,
            done=self.done,
            total=self.total,
        )

    def result_message(self) -> Dict[str, object]:
        return protocol.envelope(
            protocol.MSG_RESULT,
            job=self.id,
            state=self.state,
            cells=[self.cells[i] for i in sorted(self.cells)],
        )


class SweepService:
    """Job triage, the worker pool, and the accounting counters.

    ``workers=0`` leaves the queue unserviced so tests (and the
    coalescing CI check) can stage concurrent submissions and then
    drain deterministically with :meth:`process_queued`.

    ``journal`` (a :class:`~repro.service.journal.JobJournal`) makes
    jobs durable: submissions are journalled *before* the ack leaves
    (write-ahead) and every cell resolution is appended, so
    :meth:`resume` can rebuild unfinished work after a crash.
    ``fault_plan`` threads the deterministic fault injector into the
    worker pool (the HTTP handler and store carry their own hooks).
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        queue_limit: int = 256,
        retry_after: float = 1.0,
        engine: Optional[Engine] = None,
        journal: Optional[JobJournal] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.store = store
        self.journal = journal
        self.fault_plan = fault_plan
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        self._engine = engine if engine is not None else Engine(
            backend="inline", cache_dir=None, memo={}
        )
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[_Work]]" = queue.Queue()
        self._inflight: Dict[str, _Work] = {}
        self._jobs: Dict[str, Job] = {}
        self._pending = 0
        self._next_job = 0
        self.counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self._threads: List[threading.Thread] = []
        self._stopping = False
        for _ in range(workers):
            thread = threading.Thread(target=self._worker, daemon=True)
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------
    # Submission triage
    # ------------------------------------------------------------------

    def submit(self, message: Dict[str, object]) -> Dict[str, object]:
        """Triage a ``submit`` envelope; returns the ``ack`` envelope.

        Raises :class:`ProtocolError` (:data:`~repro.service.protocol.
        ERR_QUEUE_FULL`, with ``retry_after``) when accepting the
        submission's new cells would overflow the simulation queue —
        nothing is enqueued in that case, so a retried submission
        starts clean.
        """
        cells, verify = protocol.decode_submit(message)
        with self._lock:
            if self._stopping:
                raise ProtocolError(
                    protocol.ERR_SHUTTING_DOWN,
                    "daemon is shutting down; resubmit after it restarts",
                    retry_after=self.retry_after,
                )
            # Dry pass first: how many *new* simulations would this
            # submission enqueue?  (store hits and coalesced cells are
            # free and never count against the queue; verify cells
            # always simulate, so each one is new work.)
            if verify:
                new_work = len(cells)
            else:
                new_work = len({
                    cell.hash
                    for cell in cells
                    if cell.hash not in self._inflight
                    and self.store.get_entry(cell.hash) is None
                })
            if self._pending + new_work > self.queue_limit:
                raise ProtocolError(
                    protocol.ERR_QUEUE_FULL,
                    "simulation queue is full (%d pending, limit %d): "
                    "retry after %.1fs"
                    % (self._pending, self.queue_limit, self.retry_after),
                    retry_after=self.retry_after,
                )
            self._next_job += 1
            job = Job("j%06d" % self._next_job, total=len(cells))
            self._jobs[job.id] = job
            self.counters["jobs_submitted"] += 1
            self.counters["cells_requested"] += len(cells)
            if self.journal is not None:
                # Write-ahead: the submission is durable before any
                # cell resolves and before the ack reaches the client,
                # so a crash at any later point leaves a resumable job.
                self.journal.record_job(
                    job.id,
                    verify,
                    [
                        JournalCell(
                            cell.id,
                            cell.workload,
                            cell.size,
                            cell.config_name,
                            cell.config,
                            cell.hash,
                        )
                        for cell in cells
                    ],
                )
            triage = {"store": 0, "coalesced": 0, "queued": 0}
            for cell in cells:
                if not verify:
                    stats_entry = self.store.get_entry(cell.hash)
                    if stats_entry is not None:
                        self.counters["cells_store"] += 1
                        triage["store"] += 1
                        self._resolve_locked(
                            job,
                            cell.id,
                            cell.hash,
                            protocol.STATUS_OK,
                            protocol.SOURCE_STORE,
                            stats=stats_entry.get("stats"),
                        )
                        continue
                    work = self._inflight.get(cell.hash)
                    if work is not None:
                        # An identical cell is already queued/running —
                        # for another submission, or a duplicate earlier
                        # in this one: ride it instead of simulating
                        # again.
                        self.counters["cells_coalesced"] += 1
                        triage["coalesced"] += 1
                        work.waiters.append(
                            (job, cell.id, protocol.SOURCE_COALESCED)
                        )
                        continue
                work = _Work(cell, verify)
                work.waiters.append((job, cell.id, protocol.SOURCE_SIMULATED))
                if not verify:
                    self._inflight[cell.hash] = work
                self._pending += 1
                triage["queued"] += 1
                self._queue.put(work)
            return protocol.envelope(
                protocol.MSG_ACK,
                job=job.id,
                state=job.state,
                total=job.total,
                triage=triage,
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get_job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError(
                protocol.ERR_UNKNOWN_JOB, "no such job %r" % (job_id,)
            )
        return job

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Mark a job cancelled; unresolved cells resolve as cancelled.

        Cells whose simulation is shared with a live job still run (and
        land in the store); only work waited on exclusively by
        cancelled jobs is skipped when a worker pops it.
        """
        job = self.get_job(job_id)
        with self._lock:
            if not job.finished.is_set():
                self.counters["jobs_cancelled"] += 1
                job.cancelled = True
                if self.journal is not None:
                    self.journal.record_cancel(job.id)
                for cell_id in range(job.total):
                    if cell_id not in job.cells:
                        self._resolve_locked(
                            job,
                            cell_id,
                            "",
                            protocol.STATUS_CANCELLED,
                            None,
                        )
        return job.status_message()

    def lookup_cell(self, digest: str) -> Dict[str, object]:
        """The store entry for one content address, as an envelope."""
        entry = self.store.get_entry(digest) if is_cell_digest(digest) else None
        if entry is None:
            raise ProtocolError(
                protocol.ERR_UNKNOWN_CELL,
                "no stored result for cell %r" % (digest,),
            )
        return protocol.envelope(
            protocol.MSG_RESULT,
            hash=digest,
            workload=entry.get("workload"),
            size=entry.get("size"),
            config=entry.get("config"),
            stats=entry.get("stats"),
        )

    def publish(self, message: Dict[str, object]) -> Dict[str, object]:
        """Accept results a degraded client simulated inline.

        Every cell's content address is recomputed server-side by
        :func:`~repro.service.protocol.decode_publish` before it
        lands, so a skewed client cannot poison the shared store.
        """
        cells = protocol.decode_publish(message)
        for cell in cells:
            self.store.store(cell.workload, cell.size, cell.config, cell.stats)
        with self._lock:
            self.counters["cells_published"] += len(cells)
        return protocol.envelope(protocol.MSG_ACK, published=len(cells))

    def reserved_digests(self) -> "frozenset[str]":
        """Content addresses of in-flight cells (GC must not evict)."""
        with self._lock:
            return frozenset(self._inflight)

    def health(self) -> Dict[str, object]:
        info = self.store.info()
        with self._lock:
            return protocol.envelope(
                protocol.MSG_STATUS,
                state=protocol.JOB_RUNNING,
                counters=dict(self.counters),
                pending=self._pending,
                queue_limit=self.queue_limit,
                jobs=len(self._jobs),
                store={
                    "root": info.root,
                    "entries": info.entries,
                    "bytes": info.total_bytes,
                },
            )

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            work = self._queue.get()
            if work is None:
                return
            try:
                self._process(work)
            except DaemonCrash:
                # The fault plan simulated the process dying mid-cell:
                # this worker stops cold, leaving the journal and store
                # exactly as the crash point left them (that's the
                # point — resume must recover from it).
                return
            finally:
                self._queue.task_done()

    def process_queued(self) -> int:
        """Drain the queue in the calling thread (tests, workers=0)."""
        processed = 0
        while True:
            try:
                work = self._queue.get_nowait()
            except queue.Empty:
                return processed
            if work is None:
                continue
            try:
                self._process(work)
            finally:
                self._queue.task_done()
            processed += 1

    def stop(self) -> None:
        """Stop worker threads (queued work is abandoned)."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)

    def shutdown_gracefully(self, timeout: float = 30.0) -> None:
        """Drain, flush, and notify — the SIGTERM/SIGINT path.

        New submissions are refused (:data:`~repro.service.protocol.
        ERR_SHUTTING_DOWN`, HTTP 503 + Retry-After) the moment this
        starts; the worker pool drains everything already queued (the
        stop sentinels sit behind the real work in the FIFO queue);
        any job still unfinished — a worker died to a crash fault, or
        the drain timed out — gets a final ``stopped`` status line on
        its open progress streams; and the journal is flushed and
        closed so ``repro serve --resume`` picks up exactly here.
        """
        with self._lock:
            already = self._stopping
            self._stopping = True
        if not already:
            for _ in self._threads:
                self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if not job.finished.is_set():
                job.stopped = True
                job.finished.set()
                job.publish(job.status_message())
        if self.journal is not None:
            self.journal.close()

    def resume(self) -> int:
        """Rebuild unfinished journalled jobs; returns how many.

        For every journal job that never reached a terminal state:
        cells the journal records as resolved are restored as recorded
        (ok cells served from the store by content address — and
        re-queued if the store entry has since been evicted or torn);
        unresolved cells are re-triaged exactly like a fresh
        submission (store hit, coalesce, or queue).  Job ids are
        preserved, so a client polling a pre-crash job id finds its
        job again.  Afterwards the journal is compacted to just the
        live jobs.
        """
        if self.journal is None:
            raise ValueError("cannot resume without a journal")
        replayed = self.journal.replay()
        live = [job for job in replayed if not job.finished]
        # Compact first: finished jobs leave the journal, and the
        # resolutions re-recorded below land after a clean rotation.
        self.journal.rotate(live)
        resumed = 0
        with self._lock:
            for recorded in replayed:
                suffix = recorded.job_id.lstrip("j")
                if suffix.isdigit():
                    self._next_job = max(self._next_job, int(suffix))
            for recorded in live:
                job = Job(recorded.job_id, total=len(recorded.cells))
                job.cancelled = recorded.cancelled
                self._jobs[job.id] = job
                resumed += 1
                self.counters["jobs_resumed"] += 1
                self.counters["cells_requested"] += len(recorded.cells)
                for cell in recorded.cells:
                    resolution = recorded.resolved.get(cell.id)
                    if resolution is not None:
                        status, error = resolution
                        if status == protocol.STATUS_OK:
                            entry = self.store.get_entry(cell.hash)
                            if entry is not None:
                                self.counters["cells_store"] += 1
                                self._resolve_locked(
                                    job,
                                    cell.id,
                                    cell.hash,
                                    protocol.STATUS_OK,
                                    protocol.SOURCE_STORE,
                                    stats=entry.get("stats"),
                                )
                                continue
                            # Journalled ok but the store entry is
                            # gone (evicted or torn): fall through and
                            # re-simulate — byte-identical by
                            # construction.
                        else:
                            self._resolve_locked(
                                job,
                                cell.id,
                                cell.hash,
                                status,
                                None,
                                error=error,
                            )
                            continue
                    if job.cancelled:
                        self._resolve_locked(
                            job,
                            cell.id,
                            "",
                            protocol.STATUS_CANCELLED,
                            None,
                        )
                        continue
                    entry = self.store.get_entry(cell.hash)
                    if not recorded.verify and entry is not None:
                        self.counters["cells_store"] += 1
                        self._resolve_locked(
                            job,
                            cell.id,
                            cell.hash,
                            protocol.STATUS_OK,
                            protocol.SOURCE_STORE,
                            stats=entry.get("stats"),
                        )
                        continue
                    inflight = (
                        None
                        if recorded.verify
                        else self._inflight.get(cell.hash)
                    )
                    if inflight is not None:
                        self.counters["cells_coalesced"] += 1
                        inflight.waiters.append(
                            (job, cell.id, protocol.SOURCE_COALESCED)
                        )
                        continue
                    work = _Work(cell, recorded.verify)
                    work.waiters.append(
                        (job, cell.id, protocol.SOURCE_SIMULATED)
                    )
                    if not recorded.verify:
                        self._inflight[cell.hash] = work
                    self._pending += 1
                    self._queue.put(work)
        return resumed

    def _process(self, work: _Work) -> None:
        with self._lock:
            live = [job for job, _, _ in work.waiters if not job.cancelled]
            if not live:
                # Every waiter was cancelled before a worker got here:
                # their cells already resolved as cancelled, so just
                # retire the work item.
                self.counters["cells_skipped"] += 1
                self._retire_locked(work)
                return
        plan = self.fault_plan
        kind = plan.fire(SITE_WORKER, work.workload) if plan is not None else None
        error: Optional[str] = None
        stats_payload: Optional[Dict[str, object]] = None
        try:
            if kind == FAULT_WORKER_EXCEPTION:
                raise FaultInjected(kind)
            stats = self._engine.run_cell(
                work.workload,
                work.size,
                work.config,
                verify=work.verify,
                cache=False,
            )
        except Exception as exc:  # noqa: BLE001 — travels to the client
            error = "%s: %s" % (type(exc).__name__, exc)
        else:
            if plan is not None and kind == FAULT_CRASH_BEFORE_PUBLISH:
                plan.crash(kind)  # nothing durable: resume re-simulates
            self.store.store(work.workload, work.size, work.config, stats)
            if plan is not None and kind == FAULT_CRASH_AFTER_PUBLISH:
                # The store entry is durable but no waiter hears about
                # it: resume serves the cell from the store.
                plan.crash(kind)
            stats_payload = stats_to_payload(stats)
        with self._lock:
            if error is None:
                self.counters["cells_simulated"] += 1
            else:
                self.counters["cells_failed"] += 1
            for job, cell_id, source in work.waiters:
                if cell_id in job.cells:
                    continue  # resolved by cancellation meanwhile
                if error is None:
                    self._resolve_locked(
                        job,
                        cell_id,
                        work.digest,
                        protocol.STATUS_OK,
                        source,
                        stats=stats_payload,
                    )
                else:
                    self._resolve_locked(
                        job,
                        cell_id,
                        work.digest,
                        protocol.STATUS_FAILED,
                        source,
                        error=error,
                    )
            self._retire_locked(work)

    def _retire_locked(self, work: _Work) -> None:
        self._pending -= 1
        if not work.verify and self._inflight.get(work.digest) is work:
            del self._inflight[work.digest]

    def _resolve_locked(
        self,
        job: Job,
        cell_id: int,
        digest: str,
        status: str,
        source: Optional[str],
        stats: Optional[object] = None,
        error: Optional[str] = None,
    ) -> None:
        cell: Dict[str, object] = {
            "id": cell_id,
            "hash": digest,
            "status": status,
        }
        if source is not None:
            cell["source"] = source
        if stats is not None:
            cell["stats"] = stats
        if error is not None:
            cell["error"] = error
        job.cells[cell_id] = cell
        if self.journal is not None:
            self.journal.record_cell(job.id, cell_id, digest, status, error)
        progress = dict(cell)
        progress.pop("stats", None)  # progress lines stay light
        job.publish(
            protocol.envelope(
                protocol.MSG_PROGRESS,
                job=job.id,
                done=job.done,
                total=job.total,
                cell=progress,
            )
        )
        if (job.done >= job.total or job.cancelled) and not job.finished.is_set():
            job.finished.set()
            job.publish(job.status_message())


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service instance."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: SweepService,
        heartbeat: float = 5.0,
    ) -> None:
        super().__init__(address, ServiceHandler)
        self.service = service
        self.heartbeat = heartbeat


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes /v1/* onto the :class:`SweepService`."""

    server: ServiceServer  # narrowed from BaseServer

    # One connection per request (HTTP/1.0): the progress stream is
    # delimited by connection close, so no chunked framing is needed
    # and urllib clients read lines as they are flushed.
    protocol_version = "HTTP/1.0"

    def log_message(self, format: str, *args: object) -> None:
        return  # quiet; accounting lives in /v1/health counters

    # -- plumbing ------------------------------------------------------

    #: Set per-request by the fault injector in :meth:`_dispatch`.
    _truncate_response = False

    def _send_envelope(
        self,
        status: int,
        message: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = protocol.encode(message)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if self._truncate_response:
            # Injected truncate-response fault: half the advertised
            # body, then connection close — the client sees a short
            # read and must retry.
            self._truncate_response = False
            self.wfile.write(body[: len(body) // 2])
            return
        self.wfile.write(body)

    def _send_error(self, exc: ProtocolError) -> None:
        headers = {}
        if exc.retry_after is not None:
            headers["Retry-After"] = "%g" % exc.retry_after
        self._send_envelope(
            _HTTP_STATUS.get(exc.code, 500), exc.to_envelope(), headers
        )

    def _read_message(self) -> Dict[str, object]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0:
            raise ProtocolError(
                protocol.ERR_BAD_REQUEST, "request has no body"
            )
        return protocol.decode(self.rfile.read(length))

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0].strip("/")
        return tuple(part for part in path.split("/") if part)

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("POST")

    def _dispatch(self, verb: str) -> None:
        route = self._route()
        plan = self.server.service.fault_plan
        if plan is not None:
            # The operation label is the most specific static route
            # segment: "events"/"result"/"cancel" for job sub-resources
            # (route[3]), else the collection head ("jobs", "cells",
            # "health").
            if len(route) >= 4:
                op = route[3]
            elif len(route) > 1:
                op = route[1]
            else:
                op = route[0] if route else ""
            kind = plan.fire(SITE_HTTP, op)
            if kind == FAULT_DROP_CONNECTION:
                # Close without writing a single response byte; the
                # client sees a severed connection and retries.
                self.close_connection = True
                return
            if kind == FAULT_TRUNCATE_RESPONSE:
                self._truncate_response = True
            if kind == FAULT_DELAYED_RESPONSE:
                time.sleep(plan.delay)
        try:
            handler = self._resolve_route(verb, route)
            if handler is None:
                raise ProtocolError(
                    protocol.ERR_BAD_REQUEST,
                    "unknown endpoint %s %r" % (verb, self.path),
                )
            handler()
        except ProtocolError as exc:
            self._send_error(exc)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 — must answer something
            try:
                self._send_error(
                    ProtocolError(
                        protocol.ERR_INTERNAL,
                        "%s: %s" % (type(exc).__name__, exc),
                    )
                )
            except OSError:
                pass

    # -- routing -------------------------------------------------------

    def _resolve_route(
        self, verb: str, route: Tuple[str, ...]
    ) -> Optional[Callable[[], None]]:
        """Map (verb, /v1/... path) onto a bound handler, or None.

        Job sub-resources dispatch through :data:`_JOB_ACTIONS` — the
        URL tokens there are route segments, not protocol vocabulary,
        even where the spellings coincide.
        """
        service = self.server.service
        if len(route) < 2 or route[0] != "v1":
            return None
        head, rest = route[1], route[2:]
        if verb == "GET" and head == "health" and not rest:
            return lambda: self._send_envelope(200, service.health())
        if verb == "GET" and head == "cells" and len(rest) == 1:
            return lambda: self._send_envelope(
                200, service.lookup_cell(rest[0])
            )
        if verb == "POST" and head == "cells" and not rest:
            return lambda: self._send_envelope(
                200, service.publish(self._read_message())
            )
        if head == "jobs":
            if verb == "POST" and not rest:
                return lambda: self._send_envelope(
                    200, service.submit(self._read_message())
                )
            if verb == "GET" and len(rest) == 1:
                return lambda: self._send_envelope(
                    200, service.get_job(rest[0]).status_message()
                )
            if len(rest) == 2:
                action = self._JOB_ACTIONS.get((verb, rest[1]))
                if action is not None:
                    return lambda: action(self, service.get_job(rest[0]))
        return None

    def _job_result(self, job: Job) -> None:
        if job.finished.is_set():
            self._send_envelope(200, job.result_message())
        else:
            self._send_envelope(202, job.status_message())

    def _job_events(self, job: Job) -> None:
        self._stream_events(job)

    def _job_cancel(self, job: Job) -> None:
        self._send_envelope(200, self.server.service.cancel(job.id))

    #: (verb, route segment) -> job sub-resource handler.
    _JOB_ACTIONS: Dict[Tuple[str, str], Callable[["ServiceHandler", Job], None]] = {
        ("GET", "result"): _job_result,
        ("GET", "events"): _job_events,
        ("POST", "cancel"): _job_cancel,
    }

    # -- streaming -----------------------------------------------------

    def _stream_events(self, job: Job) -> None:
        """Line-delimited progress until the job reaches a terminal
        state; heartbeat status lines cover long simulation gaps so
        client read timeouts don't sever an idle stream.

        Each stream consumes its own :meth:`Job.subscribe` queue, so
        concurrent streams all see every event and a client that
        disconnects while the job finishes (the old shared-queue race)
        cannot swallow the terminal status line for anyone else.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        terminal = (
            protocol.JOB_DONE,
            protocol.JOB_CANCELLED,
            protocol.JOB_STOPPED,
        )
        subscription = job.subscribe()
        try:
            # The heartbeat loop is bounded by the job's terminal
            # status line, not an attempt count.
            # repro-lint: disable=service-retry-bounded
            while True:
                try:
                    event = subscription.get(timeout=self.server.heartbeat)
                except queue.Empty:
                    # Idle heartbeat; the terminal status always
                    # arrives through the subscription itself.
                    self.wfile.write(protocol.encode(job.status_message()))
                    self.wfile.flush()
                    continue
                self.wfile.write(protocol.encode(event))
                self.wfile.flush()
                if (
                    event.get("type") == protocol.MSG_STATUS
                    and event.get("state") in terminal
                ):
                    return
        finally:
            job.unsubscribe(subscription)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    store_dir: Optional[str] = None,
    workers: int = 2,
    queue_limit: int = 256,
    retry_after: float = 1.0,
    heartbeat: float = 5.0,
    engine: Optional[Engine] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    fault_plan: Optional[FaultPlan] = None,
) -> ServiceServer:
    """Build a ready-to-serve daemon (``port=0`` picks a free port).

    The caller drives ``serve_forever()`` (or ``handle_request()``) and
    is responsible for ``shutdown()`` + ``service.stop()`` (or
    ``service.shutdown_gracefully()``).

    Journalling is always on for served daemons: the journal defaults
    to ``journal.ndjson`` inside the store root (the store's entry
    walk ignores it), and ``resume=True`` replays it before the first
    request is accepted.
    """
    store = ResultStore(resolve_store_dir(store_dir), fault_plan=fault_plan)
    journal = JobJournal(resolve_journal_path(journal_path, store.root))
    service = SweepService(
        store,
        workers=workers,
        queue_limit=queue_limit,
        retry_after=retry_after,
        engine=engine,
        journal=journal,
        fault_plan=fault_plan,
    )
    if resume:
        service.resume()
    return ServiceServer((host, port), service, heartbeat=heartbeat)
