"""The ``Engine(backend="remote")`` client side of the sweep service.

:class:`RemoteClient` wraps the daemon's HTTP endpoints with

* **per-request timeouts** (connect and read share one socket timeout);
* **bounded retry with deterministic exponential backoff** for network
  failures — no random jitter, so behaviour is reproducible and the
  backoff sequence is testable;
* **back-pressure honoring**: a 429 response's ``Retry-After`` value
  replaces the backoff delay for the next attempt, so a busy daemon
  paces its clients instead of being hammered;
* **request coalescing**: a per-client in-flight registry keyed by
  ``cell_hash`` lets N concurrent sweeps of the same cells collapse to
  one submission — later threads *ride* the first thread's job and
  read its results, and the daemon coalesces across clients the same
  way, so a million identical figure-7 requests cost one simulation.

:func:`run_remote` is the engine backend runner: it submits the
pending cells, follows the job's progress stream (falling back to
status polling if the stream breaks), folds results into the engine's
memo/disk cache, and honors the engine's error policy.

**Graceful degradation** (``Engine(server=..., fallback="inline")``,
off by default): when retries exhaust against a dead or shutting-down
daemon, the client opens a *circuit breaker* — further requests fail
fast instead of re-paying the full retry schedule — and
:func:`run_remote` finishes the sweep by simulating the unresolved
cells inline, attributed ``source="fallback"`` in progress events and
the accounting line.  Results are byte-identical either way (same
simulation, same config, same seeds).  When a later health probe finds
the daemon back, the breaker closes and the degraded run's results are
published back (``POST /v1/cells``) so the shared store still
converges.
"""

from __future__ import annotations

import http.client
import threading
import time
import urllib.error
import urllib.request
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.cache import AnyConfig, AnyStats, cell_hash, stats_from_payload
from repro.api.results import CellError
from repro.service import protocol
from repro.service.protocol import ProtocolError

if TYPE_CHECKING:  # circular at runtime: engine dispatches into here
    from repro.api.engine import Engine
    from repro.api.spec import Cell

#: One submittable cell: (workload, size, config_name, config).
CellTuple = Tuple[str, str, str, AnyConfig]


class RemoteError(RuntimeError):
    """A request to the sweep daemon failed for good.

    ``code`` carries the protocol error code when the daemon answered
    with a typed error envelope (None for transport-level failures).
    """

    def __init__(self, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


class _Inflight:
    """One reserved submission slot in the client coalescing registry."""

    __slots__ = ("job_id", "ready")

    def __init__(self) -> None:
        self.job_id: Optional[str] = None
        self.ready = threading.Event()


class RemoteClient:
    """HTTP client for one sweep daemon."""

    def __init__(
        self,
        server: str,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.25,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if not server.startswith(("http://", "https://")):
            raise ValueError(
                "server must be an http(s) URL, got %r" % (server,)
            )
        self.server = server.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._sleep = sleep
        self._inflight: Dict[str, _Inflight] = {}
        self._lock = threading.Lock()
        self._breaker_open = False

    @property
    def breaker_open(self) -> bool:
        """True after a request exhausted its retries.

        While open, further requests fail fast with
        :class:`RemoteError` instead of re-paying the whole retry
        schedule; only a successful :meth:`probe` closes the breaker.
        """
        with self._lock:
            return self._breaker_open

    def probe(self) -> bool:
        """One single-attempt health check; closes the breaker on success.

        This is the only request allowed through an open breaker — a
        cheap, bounded way to ask "is the daemon back?" before
        resuming real traffic.
        """
        try:
            response = self._open("GET", "/v1/health")
        except (OSError, http.client.HTTPException):
            return False
        with response:
            ok = response.status == 200
            response.read()
        if ok:
            with self._lock:
                self._breaker_open = False
        return ok

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _open(
        self,
        method: str,
        path: str,
        message: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
    ) -> http.client.HTTPResponse:
        data = protocol.encode(message) if message is not None else None
        request = urllib.request.Request(
            self.server + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        response = urllib.request.urlopen(
            request, timeout=self.timeout if timeout is None else timeout
        )
        assert isinstance(response, http.client.HTTPResponse)
        return response

    def _request(
        self,
        method: str,
        path: str,
        message: Optional[Dict[str, object]] = None,
        ok_statuses: Sequence[int] = (200,),
    ) -> Dict[str, object]:
        """One endpoint round-trip with retry/backoff/back-pressure.

        Typed daemon errors other than 429/503 do not retry — the
        request would fail identically again; transport failures,
        back-pressure (429) and graceful shutdown (503) retry up to
        ``retries`` times, sleeping the deterministic backoff (or the
        server-provided ``Retry-After``) between attempts.  Exhausting
        the attempts opens the circuit breaker.
        """
        with self._lock:
            if self._breaker_open:
                raise RemoteError(
                    "circuit breaker open for %s: a health probe must "
                    "succeed before real requests resume" % self.server
                )
        attempts = self.retries + 1
        delay = 0.0
        last = "no attempt made"
        for attempt in range(attempts):
            if delay > 0.0:
                self._sleep(delay)
            delay = min(self.backoff * (2.0 ** attempt), 10.0)
            try:
                response = self._open(method, path, message)
            except urllib.error.HTTPError as exc:
                envelope = self._error_envelope(exc)
                code = str(envelope.get("code", protocol.ERR_INTERNAL))
                text = str(envelope.get("message", exc))
                if exc.code in (429, 503):
                    retry_after = envelope.get("retry_after")
                    # bool is an int subclass: True would silently
                    # become a 1.0s delay.  Reject bools and negative
                    # values, and never honor a delay beyond the 10.0s
                    # backoff ceiling a daemon could otherwise impose.
                    if (
                        isinstance(retry_after, (int, float))
                        and not isinstance(retry_after, bool)
                        and retry_after >= 0
                    ):
                        delay = min(float(retry_after), 10.0)
                    last = "daemon %s (%d): %s" % (
                        "shutting down" if exc.code == 503 else "busy",
                        exc.code,
                        text,
                    )
                    continue
                raise RemoteError(
                    "%s %s: %s" % (method, path, text), code=code
                ) from exc
            except (OSError, http.client.HTTPException) as exc:
                # URLError (connection refused, DNS), socket timeouts
                # and protocol-level failures (dropped connections,
                # truncated responses) all retry.
                last = "%s: %s" % (type(exc).__name__, exc)
                continue
            try:
                with response:
                    if response.status not in ok_statuses:
                        raise RemoteError(
                            "%s %s: unexpected HTTP %d"
                            % (method, path, response.status)
                        )
                    body = response.read()
            except (OSError, http.client.HTTPException) as exc:
                # A truncated body (IncompleteRead: the daemon died —
                # or a fault plan cut the response in half) retries
                # like any other transport failure.
                last = "%s: %s" % (type(exc).__name__, exc)
                continue
            try:
                return protocol.decode(body)
            except ProtocolError as exc:
                raise RemoteError(
                    "%s %s: bad response: %s" % (method, path, exc),
                    code=exc.code,
                ) from exc
        with self._lock:
            self._breaker_open = True
        raise RemoteError(
            "no response from %s%s after %d attempt%s — last error: %s"
            % (
                self.server,
                path,
                attempts,
                "" if attempts == 1 else "s",
                last,
            )
        )

    @staticmethod
    def _error_envelope(exc: urllib.error.HTTPError) -> Dict[str, object]:
        try:
            return protocol.decode(exc.read())
        except (ProtocolError, OSError):
            return {"code": protocol.ERR_INTERNAL, "message": str(exc)}

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/v1/health")

    def submit(
        self, cells: Sequence[CellTuple], verify: bool = False
    ) -> Dict[str, object]:
        return self._request(
            "POST", "/v1/jobs", protocol.submit_message(cells, verify=verify)
        )

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", "/v1/jobs/%s" % job_id)

    def result(self, job_id: str) -> Dict[str, object]:
        """The job's result envelope (a status envelope while running)."""
        return self._request(
            "GET", "/v1/jobs/%s/result" % job_id, ok_statuses=(200, 202)
        )

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", "/v1/jobs/%s/cancel" % job_id, message=protocol.envelope(protocol.MSG_CANCEL, job=job_id))

    def cell(self, digest: str) -> Dict[str, object]:
        """Cached-cell lookup by content address."""
        return self._request("GET", "/v1/cells/%s" % digest)

    def publish_cells(
        self, cells: Sequence[Tuple[str, str, AnyConfig, AnyStats]]
    ) -> Dict[str, object]:
        """Upload (workload, size, config, stats) results to the store."""
        return self._request(
            "POST", "/v1/cells", protocol.publish_message(cells)
        )

    def events(self, job_id: str) -> Iterator[Dict[str, object]]:
        """The job's live progress stream (one envelope per line).

        Transport errors surface as :class:`RemoteError`; callers that
        can fall back (``run_remote``) catch it and poll instead.
        """
        try:
            response = self._open("GET", "/v1/jobs/%s/events" % job_id)
        except urllib.error.HTTPError as exc:
            envelope = self._error_envelope(exc)
            raise RemoteError(
                "events stream for %s: %s"
                % (job_id, envelope.get("message", exc)),
                code=str(envelope.get("code", protocol.ERR_INTERNAL)),
            ) from exc
        except (OSError, http.client.HTTPException) as exc:
            raise RemoteError(
                "events stream for %s: %s: %s"
                % (job_id, type(exc).__name__, exc)
            ) from exc
        try:
            with response:
                for line in response:
                    if not line.strip():
                        continue
                    yield protocol.decode(line)
        except ProtocolError as exc:
            raise RemoteError(
                "events stream for %s: bad line: %s" % (job_id, exc),
                code=exc.code,
            ) from exc
        except (OSError, http.client.HTTPException) as exc:
            raise RemoteError(
                "events stream for %s broke: %s: %s"
                % (job_id, type(exc).__name__, exc)
            ) from exc

    def wait_result(
        self, job_id: str, poll_interval: float = 0.25
    ) -> Dict[str, object]:
        """Block until the job is terminal; returns its result envelope.

        ``stopped`` counts as terminal: the daemon shut down with this
        job unfinished, and its partial result is all it will ever
        serve — callers see the missing cells and degrade or fail.
        """
        terminal = (
            protocol.JOB_DONE,
            protocol.JOB_CANCELLED,
            protocol.JOB_STOPPED,
        )
        while True:
            message = self.result(job_id)
            if (
                message.get("type") == protocol.MSG_RESULT
                and message.get("state") in terminal
            ):
                return message
            self._sleep(poll_interval)

    # ------------------------------------------------------------------
    # Client-side coalescing
    # ------------------------------------------------------------------

    def reserve(
        self, digests: Sequence[str]
    ) -> Tuple[List[str], Dict[str, _Inflight]]:
        """Split digests into (mine to submit, rides on other threads).

        Reserved digests must be released with :meth:`publish` (job id
        on success, None on failure) — always, or riders deadlock.
        """
        mine: List[str] = []
        rides: Dict[str, _Inflight] = {}
        with self._lock:
            for digest in digests:
                record = self._inflight.get(digest)
                if record is not None:
                    rides[digest] = record
                else:
                    self._inflight[digest] = _Inflight()
                    mine.append(digest)
        return mine, rides

    def publish(self, digests: Sequence[str], job_id: Optional[str]) -> None:
        """Attach a job id to reserved digests and wake riders."""
        with self._lock:
            for digest in digests:
                record = self._inflight.get(digest)
                if record is not None:
                    record.job_id = job_id
                    record.ready.set()

    def release(self, digests: Sequence[str]) -> None:
        """Drop reserved digests once their results are fetchable."""
        with self._lock:
            for digest in digests:
                self._inflight.pop(digest, None)


# ----------------------------------------------------------------------
# The engine backend runner
# ----------------------------------------------------------------------


def _emit_sources(
    cell_message: Dict[str, object],
) -> Tuple[bool, Optional[str], Optional[str]]:
    """(cached flag, error text, source) of one per-cell message."""
    status = cell_message.get("status")
    if status == protocol.STATUS_FAILED:
        return False, str(cell_message.get("error", "remote cell failed")), None
    if status == protocol.STATUS_CANCELLED:
        return False, "cell was cancelled on the daemon", None
    raw = cell_message.get("source")
    source = raw if isinstance(raw, str) else None
    cached = source != protocol.SOURCE_SIMULATED
    return cached, None, source


def run_remote(
    engine: "Engine",
    pending: Sequence[Tuple[Tuple[object, ...], "Cell"]],
    disk_dir: Optional[str],
    verify: bool,
    errors: str,
    outcome: Dict[Tuple[object, ...], object],
    emit: Callable[..., None],
) -> None:
    """Resolve ``pending`` cells through the daemon.

    Mirrors the inline/process runners' contract: fills ``outcome``
    with stats or :class:`CellError`, fires ``emit`` once per cell, and
    under ``errors="raise"`` raises on the first failed cell.  Results
    are folded into the engine's memo and disk cache, so a later local
    run is warm without another round-trip.

    With ``engine.fallback == "inline"`` the remote path degrades
    instead of failing: cells the daemon never resolved (retries
    exhausted, daemon shut down mid-job, worker faults) are simulated
    inline, attributed ``source="fallback"``, and published back to
    the daemon's store if a health probe finds it reachable again.
    """
    client = engine.remote_client
    fallback = engine.fallback == "inline"
    order = list(pending)
    digests = [
        cell_hash(cell.workload, cell.size, cell.config) for _, cell in order
    ]
    by_digest = {
        digest: (key, cell)
        for digest, (key, cell) in zip(digests, order)
    }

    degraded = False
    ridden: "set[str]" = set()
    cell_results: Dict[str, Dict[str, object]] = {}

    # A breaker left open by an earlier run: one cheap probe decides —
    # daemon back (breaker closes, proceed normally) or straight to
    # inline fallback without re-paying the retry schedule.
    if fallback and client.breaker_open and not client.probe():
        degraded = True

    if not degraded:
        # verify runs bypass every cache layer, so they never coalesce.
        if verify:
            mine = list(dict.fromkeys(digests))
            rides: Dict[str, _Inflight] = {}
        else:
            mine, rides = client.reserve(list(dict.fromkeys(digests)))

        # Digests this client merely rode: another thread's job
        # (possibly another client's, via daemon coalescing) did the
        # work.  The daemon tags such cells with the *reserving* job's
        # provenance, so a ridden "simulated" cell is re-attributed
        # below — this client caused no simulation and must not count
        # one.
        ridden = set(rides)

        try:
            try:
                if mine:
                    tuples = [
                        (
                            by_digest[d][1].workload,
                            by_digest[d][1].size,
                            by_digest[d][1].config_name,
                            by_digest[d][1].config,
                        )
                        for d in mine
                    ]
                    ack = client.submit(tuples, verify=verify)
                    job_id = str(ack.get("job"))
                    if not verify:
                        client.publish(mine, job_id)
                    _follow_job(client, job_id, cell_results)
                for digest, record in rides.items():
                    record.ready.wait()
                    if record.job_id is None:
                        # The reserving thread's submission failed; run
                        # the cell ourselves on a fresh job.
                        entry = by_digest[digest]
                        ack = client.submit(
                            [
                                (
                                    entry[1].workload,
                                    entry[1].size,
                                    entry[1].config_name,
                                    entry[1].config,
                                )
                            ],
                            verify=verify,
                        )
                        ridden.discard(digest)  # we did submit it after all
                        _follow_job(client, str(ack.get("job")), cell_results)
                    elif digest not in cell_results:
                        _follow_job(client, record.job_id, cell_results)
            except Exception:
                if not verify:
                    client.publish(mine, None)
                raise
            finally:
                if not verify:
                    client.release(mine)
        except RemoteError as exc:
            # Only transport-level exhaustion (code None) and a daemon
            # announcing shutdown justify degrading — typed errors like
            # bad_request would fail inline identically, so they
            # propagate.
            if not fallback or exc.code not in (
                None,
                protocol.ERR_SHUTTING_DOWN,
            ):
                raise
            degraded = True

    fallback_results: List[Tuple[str, str, AnyConfig, AnyStats]] = []

    def simulate_fallback(key: Tuple[object, ...], cell: "Cell") -> None:
        try:
            fallback_stats = engine.run_cell(
                cell.workload,
                cell.size,
                cell.config,
                verify=verify,
                cache=not verify,
            )
        except Exception as exc:  # noqa: BLE001 — error-policy boundary
            text = "%s: %s" % (type(exc).__name__, exc)
            if errors == "raise":
                raise
            outcome[key] = CellError(
                cell.workload, cell.size, cell.config_name, text
            )
            emit(cell, cached=False, error=text)
            return
        outcome[key] = fallback_stats
        fallback_results.append(
            (cell.workload, cell.size, cell.config, fallback_stats)
        )
        emit(cell, cached=False, source=protocol.SOURCE_FALLBACK)

    for digest, (key, cell) in zip(digests, order):
        if key in outcome:
            continue  # duplicate digest already resolved
        message = cell_results.get(digest)
        if message is None:
            if fallback:
                simulate_fallback(key, cell)
                continue
            error_text = "daemon returned no result for cell %s" % digest[:12]
            if errors == "raise":
                raise RemoteError(error_text)
            outcome[key] = CellError(
                cell.workload, cell.size, cell.config_name, error_text
            )
            emit(cell, cached=False, error=error_text)
            continue
        cached, error_text, source = _emit_sources(message)
        if error_text is not None:
            if fallback and message.get("status") == protocol.STATUS_FAILED:
                # A remotely-failed cell re-runs inline under fallback:
                # an injected worker fault must not fail the sweep, and
                # a genuinely broken cell fails identically here.
                simulate_fallback(key, cell)
                continue
            if errors == "raise":
                raise RemoteError(
                    "remote cell %s/%s @%s failed: %s"
                    % (cell.workload, cell.config_name, cell.size, error_text)
                )
            outcome[key] = CellError(
                cell.workload, cell.size, cell.config_name, error_text
            )
            emit(cell, cached=False, error=error_text)
            continue
        payload = message.get("stats")
        if not isinstance(payload, dict):
            raise RemoteError(
                "daemon result for cell %s has no stats payload" % digest[:12]
            )
        stats: AnyStats = stats_from_payload(payload)
        if digest in ridden and source == protocol.SOURCE_SIMULATED:
            cached, source = True, protocol.SOURCE_COALESCED
        engine._store(cell.workload, cell.size, cell.config, stats, True, disk_dir)
        outcome[key] = stats
        emit(cell, cached=cached, source=source)

    if fallback_results and client.probe():
        # Best-effort publish-back: when the daemon is reachable again
        # (possibly freshly restarted), the shared store converges on
        # the degraded run's results — which are byte-identical to what
        # the daemon would have simulated.
        try:
            client.publish_cells(fallback_results)
        except RemoteError:
            pass  # the store converges on a later run instead


def _follow_job(
    client: RemoteClient,
    job_id: str,
    cell_results: Dict[str, Dict[str, object]],
) -> None:
    """Stream a job to completion, then collect its per-cell results.

    The progress stream is best-effort: if it breaks (read timeout,
    connection reset), fall back to polling the result endpoint — the
    final result message is the source of truth either way.
    """
    terminal = (
        protocol.JOB_DONE,
        protocol.JOB_CANCELLED,
        protocol.JOB_STOPPED,
    )
    try:
        for event in client.events(job_id):
            if (
                event.get("type") == protocol.MSG_STATUS
                and event.get("state") in terminal
            ):
                break
    except RemoteError:
        pass  # heartbeat gap or transport hiccup: poll below instead
    message = client.wait_result(job_id)
    cells = message.get("cells")
    if not isinstance(cells, list):
        raise RemoteError("malformed result for job %s" % job_id)
    for raw in cells:
        if isinstance(raw, dict) and isinstance(raw.get("hash"), str):
            digest = str(raw["hash"])
            if digest:
                cell_results[digest] = raw
