"""The sweep service's line-delimited JSON job protocol.

Every message on the wire is one JSON object per line (the *envelope*)
carrying a schema version and a ``type`` drawn from a closed
vocabulary, exactly like the observer-event vocabulary in
:mod:`repro.core.policy.events`: emit sites and dispatchers must use
the ``MSG_*`` / ``ERR_*`` / ``SOURCE_*`` / ``STATUS_*`` constants
defined here and nowhere else (``repro lint``'s ``protocol-vocabulary``
rule enforces it), so a typo'd message type is a diff-time error rather
than a silently dropped request.

The envelope::

    {"v": 1, "type": "<message type>", ...}

Typed failures travel as ``error`` envelopes with a ``code`` from
:data:`ERROR_CODES`; :class:`ProtocolError` is their in-process form
and maps 1:1 onto HTTP statuses in the daemon.

Configs cross the wire in the canonical payload shape of
:func:`repro.api.cache.config_to_payload`, and every submitted cell
carries its ``cell_hash`` — the daemon recomputes the hash from the
decoded config and rejects mismatches, so client/server schema skew is
a loud :data:`ERR_BAD_REQUEST` instead of a silently wrong content
address.
"""

from __future__ import annotations

import json
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.api.cache import (
    AnyConfig,
    AnyStats,
    cell_hash,
    config_from_payload,
    config_to_payload,
    stats_from_payload,
    stats_to_payload,
)

#: Bump when the envelope schema changes; mismatched peers get a typed
#: version error instead of a confusing parse failure.
PROTOCOL_VERSION = 1

# -- message types (closed set) ----------------------------------------

#: Client -> daemon: run these cells.
MSG_SUBMIT: str = "submit"
#: Daemon -> client: submission accepted (job id + per-cell triage).
MSG_ACK: str = "ack"
#: Daemon -> client: job state snapshot (also the stream heartbeat).
MSG_STATUS: str = "status"
#: Daemon -> client: one cell resolved (progress stream).
MSG_PROGRESS: str = "progress"
#: Daemon -> client: the completed job's per-cell results.
MSG_RESULT: str = "result"
#: Client -> daemon: abandon a job's not-yet-simulated cells.
MSG_CANCEL: str = "cancel"
#: Client -> daemon: upload already-simulated results into the store
#: (a fallback client publishing back after the daemon returns).
MSG_PUBLISH: str = "publish"
#: Either direction: a typed failure (``code`` from ERROR_CODES).
MSG_ERROR: str = "error"

#: Every valid envelope ``type``.
MESSAGE_TYPES: Tuple[str, ...] = (
    MSG_SUBMIT,
    MSG_ACK,
    MSG_STATUS,
    MSG_PROGRESS,
    MSG_RESULT,
    MSG_CANCEL,
    MSG_PUBLISH,
    MSG_ERROR,
)

# -- error codes (closed set) ------------------------------------------

ERR_BAD_REQUEST: str = "bad_request"
ERR_VERSION: str = "version_mismatch"
ERR_UNKNOWN_JOB: str = "unknown_job"
ERR_UNKNOWN_CELL: str = "unknown_cell"
ERR_QUEUE_FULL: str = "queue_full"
ERR_SHUTTING_DOWN: str = "shutting_down"
ERR_INTERNAL: str = "internal"

#: Every valid ``error`` envelope ``code``.
ERROR_CODES: Tuple[str, ...] = (
    ERR_BAD_REQUEST,
    ERR_VERSION,
    ERR_UNKNOWN_JOB,
    ERR_UNKNOWN_CELL,
    ERR_QUEUE_FULL,
    ERR_SHUTTING_DOWN,
    ERR_INTERNAL,
)

# -- cell dispositions -------------------------------------------------

#: The daemon ran the simulation for this cell.
SOURCE_SIMULATED: str = "simulated"
#: Served from the content-addressed shared store.
SOURCE_STORE: str = "store"
#: Coalesced onto an identical in-flight cell of another submission.
SOURCE_COALESCED: str = "coalesced"
#: Simulated inline by a degraded client after the remote path failed
#: (client-side provenance only; the daemon never emits it).
SOURCE_FALLBACK: str = "fallback"

#: Every valid per-cell ``source``.
CELL_SOURCES: Tuple[str, ...] = (
    SOURCE_SIMULATED,
    SOURCE_STORE,
    SOURCE_COALESCED,
    SOURCE_FALLBACK,
)

#: Per-cell terminal states inside ack/progress/result messages.
STATUS_OK: str = "ok"
STATUS_FAILED: str = "failed"
STATUS_CANCELLED: str = "cancelled"

CELL_STATUSES: Tuple[str, ...] = (STATUS_OK, STATUS_FAILED, STATUS_CANCELLED)

#: Job lifecycle states carried by ``status`` envelopes.
JOB_QUEUED: str = "queued"
JOB_RUNNING: str = "running"
JOB_DONE: str = "done"
JOB_CANCELLED: str = "job_cancelled"
#: The daemon shut down gracefully with this job unfinished; the job
#: is journalled and resumes under ``repro serve --resume``.
JOB_STOPPED: str = "stopped"

JOB_STATES: Tuple[str, ...] = (
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_DONE,
    JOB_CANCELLED,
    JOB_STOPPED,
)

#: The full closed vocabulary, for validation and for the lint rule.
VOCABULARY: FrozenSet[str] = frozenset(
    MESSAGE_TYPES + ERROR_CODES + CELL_SOURCES + CELL_STATUSES + JOB_STATES
)


class ProtocolError(Exception):
    """A typed protocol failure (in-process form of ``error`` envelopes).

    ``retry_after`` is set on back-pressure errors: the number of
    seconds the peer should wait before retrying (the daemon surfaces
    it as HTTP 429 + ``Retry-After``).
    """

    def __init__(
        self, code: str, message: str, retry_after: Optional[float] = None
    ) -> None:
        if code not in ERROR_CODES:
            raise ValueError("unknown protocol error code %r" % (code,))
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after

    def to_envelope(self) -> Dict[str, object]:
        body: Dict[str, object] = {"code": self.code, "message": str(self)}
        if self.retry_after is not None:
            body["retry_after"] = self.retry_after
        return envelope(MSG_ERROR, **body)


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------


def envelope(msg_type: str, **body: object) -> Dict[str, object]:
    """A versioned message of ``msg_type`` with the given body fields."""
    if msg_type not in MESSAGE_TYPES:
        raise ValueError("unknown protocol message type %r" % (msg_type,))
    out: Dict[str, object] = {"v": PROTOCOL_VERSION, "type": msg_type}
    out.update(body)
    return out


def encode(message: Dict[str, object]) -> bytes:
    """One wire line: compact JSON + newline (line-delimited framing)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: "bytes | str") -> Dict[str, object]:
    """Parse and validate one wire line into an envelope dict.

    Raises :class:`ProtocolError` with :data:`ERR_BAD_REQUEST` on
    malformed JSON or a type outside the vocabulary, and
    :data:`ERR_VERSION` on a schema-version mismatch.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(ERR_BAD_REQUEST, "message is not UTF-8") from exc
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(
            ERR_BAD_REQUEST, "message is not valid JSON: %s" % exc
        ) from exc
    if not isinstance(message, dict):
        raise ProtocolError(ERR_BAD_REQUEST, "message must be a JSON object")
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ERR_VERSION,
            "protocol version %r, this peer speaks %d"
            % (version, PROTOCOL_VERSION),
        )
    msg_type = message.get("type")
    if msg_type not in MESSAGE_TYPES:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            "unknown message type %r (valid: %s)"
            % (msg_type, ", ".join(MESSAGE_TYPES)),
        )
    return message


# ----------------------------------------------------------------------
# Submissions
# ----------------------------------------------------------------------


def submit_message(
    cells: Sequence[Tuple[str, str, str, AnyConfig]], verify: bool = False
) -> Dict[str, object]:
    """A ``submit`` envelope for (workload, size, config_name, config)
    cells.  Cell ids are the sequence indices; every cell carries its
    content address so the peer can cross-check schema agreement."""
    encoded: List[Dict[str, object]] = []
    for idx, (workload, size, config_name, config) in enumerate(cells):
        encoded.append(
            {
                "id": idx,
                "workload": workload,
                "size": size,
                "config_name": config_name,
                "config": config_to_payload(config),
                "hash": cell_hash(workload, size, config),
            }
        )
    return envelope(MSG_SUBMIT, cells=encoded, verify=bool(verify))


class SubmittedCell:
    """One decoded cell of a ``submit`` message."""

    __slots__ = ("id", "workload", "size", "config_name", "config", "hash")

    def __init__(
        self,
        cell_id: int,
        workload: str,
        size: str,
        config_name: str,
        config: AnyConfig,
        digest: str,
    ) -> None:
        self.id = cell_id
        self.workload = workload
        self.size = size
        self.config_name = config_name
        self.config = config
        self.hash = digest


def decode_submit(
    message: Dict[str, object],
) -> Tuple[List[SubmittedCell], bool]:
    """Validate a ``submit`` envelope into typed cells.

    Every decode failure — missing fields, an unknown config payload,
    an unregistered policy name, or a content-address mismatch between
    the client's ``hash`` and the one recomputed here — raises
    :class:`ProtocolError` with :data:`ERR_BAD_REQUEST`.
    """
    raw_cells = message.get("cells")
    if not isinstance(raw_cells, list) or not raw_cells:
        raise ProtocolError(ERR_BAD_REQUEST, "submit has no cells")
    cells: List[SubmittedCell] = []
    for raw in raw_cells:
        if not isinstance(raw, dict):
            raise ProtocolError(ERR_BAD_REQUEST, "cell must be an object")
        try:
            cell_id = int(raw["id"])
            workload = str(raw["workload"])
            size = str(raw["size"])
            config_name = str(raw["config_name"])
            config_payload = raw["config"]
            claimed = str(raw["hash"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                ERR_BAD_REQUEST, "malformed cell: %s" % exc
            ) from exc
        if not isinstance(config_payload, dict):
            raise ProtocolError(ERR_BAD_REQUEST, "cell config must be an object")
        try:
            config = config_from_payload(config_payload)
        except ValueError as exc:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                "cell %d config: %s (a policy registered only client-side "
                "must be imported on the server, e.g. repro serve --plugin)"
                % (cell_id, exc),
            ) from exc
        digest = cell_hash(workload, size, config)
        if digest != claimed:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                "cell %d content address mismatch (client %s..., server "
                "%s...): client and server disagree on the config schema "
                "or cache version — upgrade the older peer"
                % (cell_id, claimed[:12], digest[:12]),
            )
        cells.append(
            SubmittedCell(cell_id, workload, size, config_name, config, digest)
        )
    return cells, bool(message.get("verify", False))


# ----------------------------------------------------------------------
# Publications (fallback clients uploading results back)
# ----------------------------------------------------------------------


def publish_message(
    cells: Sequence[Tuple[str, str, AnyConfig, AnyStats]],
) -> Dict[str, object]:
    """A ``publish`` envelope of (workload, size, config, stats)
    results.  Like submits, every cell carries its content address so
    the daemon can reject schema skew before polluting the store."""
    encoded: List[Dict[str, object]] = []
    for workload, size, config, stats in cells:
        encoded.append(
            {
                "workload": workload,
                "size": size,
                "config": config_to_payload(config),
                "stats": stats_to_payload(stats),
                "hash": cell_hash(workload, size, config),
            }
        )
    return envelope(MSG_PUBLISH, cells=encoded)


class PublishedCell:
    """One decoded cell of a ``publish`` message."""

    __slots__ = ("workload", "size", "config", "stats", "hash")

    def __init__(
        self,
        workload: str,
        size: str,
        config: AnyConfig,
        stats: AnyStats,
        digest: str,
    ) -> None:
        self.workload = workload
        self.size = size
        self.config = config
        self.stats = stats
        self.hash = digest


def decode_publish(message: Dict[str, object]) -> List[PublishedCell]:
    """Validate a ``publish`` envelope into typed result cells.

    The same strictness as :func:`decode_submit`: undecodable configs
    or stats, and content-address mismatches between the client's
    ``hash`` and the recomputed one, raise :data:`ERR_BAD_REQUEST` —
    a degraded client must never write a wrong address into the
    shared store.
    """
    raw_cells = message.get("cells")
    if not isinstance(raw_cells, list) or not raw_cells:
        raise ProtocolError(ERR_BAD_REQUEST, "publish has no cells")
    cells: List[PublishedCell] = []
    for raw in raw_cells:
        if not isinstance(raw, dict):
            raise ProtocolError(ERR_BAD_REQUEST, "cell must be an object")
        try:
            workload = str(raw["workload"])
            size = str(raw["size"])
            config_payload = raw["config"]
            stats_payload = raw["stats"]
            claimed = str(raw["hash"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                ERR_BAD_REQUEST, "malformed published cell: %s" % exc
            ) from exc
        if not isinstance(config_payload, dict):
            raise ProtocolError(ERR_BAD_REQUEST, "cell config must be an object")
        if not isinstance(stats_payload, dict):
            raise ProtocolError(ERR_BAD_REQUEST, "cell stats must be an object")
        try:
            config = config_from_payload(config_payload)
            stats = stats_from_payload(stats_payload)
        except ValueError as exc:
            raise ProtocolError(
                ERR_BAD_REQUEST, "published cell: %s" % exc
            ) from exc
        digest = cell_hash(workload, size, config)
        if digest != claimed:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                "published cell content address mismatch (client %s..., "
                "server %s...)" % (claimed[:12], digest[:12]),
            )
        cells.append(PublishedCell(workload, size, config, stats, digest))
    return cells
