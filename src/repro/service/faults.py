"""Deterministic fault injection for the sweep service.

Every distributed failure mode the service must survive — a dropped
connection, a torn store file, a worker that dies mid-publish — is
expressed here as a *fault kind* from a closed vocabulary (the same
discipline as the protocol message vocabulary: emit and dispatch sites
use the ``FAULT_*`` constants, never bare strings).  A
:class:`FaultPlan` decides **deterministically** which operations
fault: each rule targets the Nth matching operation at one injection
*site*, so a failure sequence observed once is reproducible forever —
in tests, in CI's chaos-smoke job, and at a ``repro serve
--fault-plan`` prompt — instead of being raced.

Injection sites (the daemon calls :meth:`FaultPlan.fire` at each):

``http``
    once per request in the HTTP handler; the *operation label* is the
    route head (``jobs``, ``cells``, ``events``, ``health``);
``worker``
    once per popped work item in the simulation worker; the label is
    the workload name;
``store``
    once per content-addressed store write; the label is the workload
    name.

Plans come from a spec string (``repro serve --fault-plan``)::

    KIND[@OP][:NTH][xCOUNT] , ...

    drop-connection@jobs:1x4   # drop the first four /v1/jobs requests
    worker-exception:2         # fail the second simulated cell
    crash-after-publish:3      # die after the 3rd cell is published

or from a seed (:meth:`FaultPlan.from_seed`), which draws kinds and
trigger points from a seeded :class:`random.Random` — different seeds
explore different failure interleavings, the same seed replays one
exactly.

Crash kinds invoke the plan's ``on_crash`` hook when present (``repro
serve`` passes ``os._exit`` so the process dies like a real crash,
journal and store exactly as the write-ahead ordering left them);
without a hook they raise :class:`DaemonCrash`, which derives from
``BaseException`` so a worker's ``except Exception`` failure handling
cannot accidentally swallow a simulated machine death.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# -- fault kinds (closed set) ------------------------------------------

#: HTTP: close the connection without writing any response bytes.
FAULT_DROP_CONNECTION: str = "drop-connection"
#: HTTP: write only half of the response body, then close.
FAULT_TRUNCATE_RESPONSE: str = "truncate-response"
#: HTTP: sleep ``delay`` seconds before handling the request.
FAULT_DELAYED_RESPONSE: str = "delayed-response"
#: Store: leave a half-written entry at the final path (a writer that
#: crashed mid-write without the atomic rename).
FAULT_TORN_STORE_WRITE: str = "torn-store-write"
#: Worker: the simulation raises (travels to the client as a failed cell).
FAULT_WORKER_EXCEPTION: str = "worker-exception"
#: Worker: crash after simulating, before the result is published to
#: the store/journal (nothing durable survives).
FAULT_CRASH_BEFORE_PUBLISH: str = "crash-before-publish"
#: Worker: crash after the store write, before waiters hear about it
#: (the result is durable; only the in-memory job table is lost).
FAULT_CRASH_AFTER_PUBLISH: str = "crash-after-publish"

#: Every valid fault kind.
FAULT_KINDS: Tuple[str, ...] = (
    FAULT_DROP_CONNECTION,
    FAULT_TRUNCATE_RESPONSE,
    FAULT_DELAYED_RESPONSE,
    FAULT_TORN_STORE_WRITE,
    FAULT_WORKER_EXCEPTION,
    FAULT_CRASH_BEFORE_PUBLISH,
    FAULT_CRASH_AFTER_PUBLISH,
)

# -- injection sites (closed set) --------------------------------------

SITE_HTTP: str = "http"
SITE_WORKER: str = "worker"
SITE_STORE: str = "store"

SITES: Tuple[str, ...] = (SITE_HTTP, SITE_WORKER, SITE_STORE)

#: Which site each kind injects at (a kind fires at exactly one site).
KIND_SITES: Dict[str, str] = {
    FAULT_DROP_CONNECTION: SITE_HTTP,
    FAULT_TRUNCATE_RESPONSE: SITE_HTTP,
    FAULT_DELAYED_RESPONSE: SITE_HTTP,
    FAULT_TORN_STORE_WRITE: SITE_STORE,
    FAULT_WORKER_EXCEPTION: SITE_WORKER,
    FAULT_CRASH_BEFORE_PUBLISH: SITE_WORKER,
    FAULT_CRASH_AFTER_PUBLISH: SITE_WORKER,
}

#: Kinds that simulate the daemon process dying.
CRASH_KINDS: Tuple[str, ...] = (
    FAULT_CRASH_BEFORE_PUBLISH,
    FAULT_CRASH_AFTER_PUBLISH,
)


class FaultPlanError(ValueError):
    """A fault-plan spec string could not be parsed."""


class FaultInjected(RuntimeError):
    """An injected (non-crash) fault; carries its kind."""

    def __init__(self, kind: str) -> None:
        super().__init__("injected fault: %s" % kind)
        self.kind = kind


class DaemonCrash(BaseException):
    """A simulated daemon death.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so the
    worker's per-cell ``except Exception`` failure path cannot turn a
    simulated crash into an ordinary failed cell.
    """

    def __init__(self, kind: str) -> None:
        super().__init__("injected crash: %s" % kind)
        self.kind = kind


class FaultSpec:
    """One rule: fault the NTH..NTH+COUNT-1'th matching operation."""

    __slots__ = ("kind", "site", "op", "nth", "count", "seen")

    def __init__(
        self,
        kind: str,
        op: Optional[str] = None,
        nth: int = 1,
        count: int = 1,
    ) -> None:
        if kind not in FAULT_KINDS:
            raise FaultPlanError(
                "unknown fault kind %r (valid: %s)"
                % (kind, ", ".join(FAULT_KINDS))
            )
        if nth < 1:
            raise FaultPlanError("fault trigger must be >= 1, got %d" % nth)
        if count < 1:
            raise FaultPlanError("fault count must be >= 1, got %d" % count)
        self.kind = kind
        self.site = KIND_SITES[kind]
        self.op = op
        self.nth = nth
        self.count = count
        #: Operations this spec has matched so far (its own counter, so
        #: two specs over one site trigger independently).
        self.seen = 0

    def describe(self) -> str:
        text = self.kind
        if self.op is not None:
            text += "@%s" % self.op
        text += ":%d" % self.nth
        if self.count != 1:
            text += "x%d" % self.count
        return text

    @classmethod
    def parse(cls, token: str) -> "FaultSpec":
        """Parse one ``KIND[@OP][:NTH][xCOUNT]`` token."""
        text = token.strip()
        count = 1
        if "x" in text:
            head, _, tail = text.rpartition("x")
            if head and tail.isdigit():
                text, count = head, int(tail)
        nth = 1
        if ":" in text:
            text, _, tail = text.partition(":")
            if not tail.isdigit():
                raise FaultPlanError(
                    "bad fault trigger in %r (want KIND[@OP][:NTH][xCOUNT])"
                    % token
                )
            nth = int(tail)
        op: Optional[str] = None
        if "@" in text:
            text, _, op = text.partition("@")
            if not op:
                raise FaultPlanError("empty operation label in %r" % token)
        return cls(text, op=op, nth=nth, count=count)


class FaultPlan:
    """A deterministic schedule of injected faults.

    Thread-safe: worker threads and HTTP handler threads share one
    plan.  ``history`` records every fired fault as ``(site, op,
    occurrence, kind)`` so tests assert the exact injected sequence.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        delay: float = 0.05,
        on_crash: Optional[Callable[[str], None]] = None,
    ) -> None:
        if delay < 0:
            raise FaultPlanError("delay must be >= 0")
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.delay = delay
        self.on_crash = on_crash
        self.history: List[Tuple[str, str, int, str]] = []
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------

    @classmethod
    def parse(
        cls,
        text: str,
        delay: float = 0.05,
        on_crash: Optional[Callable[[str], None]] = None,
    ) -> "FaultPlan":
        """A plan from a comma-separated spec string."""
        specs = [
            FaultSpec.parse(token)
            for token in text.split(",")
            if token.strip()
        ]
        if not specs:
            raise FaultPlanError("fault plan %r names no faults" % text)
        return cls(specs, delay=delay, on_crash=on_crash)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        faults: int = 3,
        kinds: Optional[Sequence[str]] = None,
        horizon: int = 6,
        delay: float = 0.05,
        on_crash: Optional[Callable[[str], None]] = None,
    ) -> "FaultPlan":
        """A pseudo-random but fully reproducible plan.

        Draws ``faults`` (kind, trigger) pairs from ``random.Random
        (seed)`` with triggers in ``1..horizon`` — the same seed always
        yields the same plan, so a chaos run that found a bug is a
        one-line repro.
        """
        if faults < 1:
            raise FaultPlanError("faults must be >= 1")
        pool = tuple(kinds) if kinds is not None else FAULT_KINDS
        rng = random.Random(seed)
        specs = [
            FaultSpec(rng.choice(pool), nth=rng.randint(1, max(1, horizon)))
            for _ in range(faults)
        ]
        return cls(specs, delay=delay, on_crash=on_crash)

    # -- runtime -------------------------------------------------------

    def fire(self, site: str, op: str) -> Optional[str]:
        """The fault kind to inject for this operation, or None.

        Called exactly once per operation at each site; the first
        matching spec wins and the match is recorded in ``history``.
        """
        if site not in SITES:
            raise ValueError("unknown fault site %r" % (site,))
        with self._lock:
            fired: Optional[str] = None
            for spec in self.specs:
                if spec.site != site:
                    continue
                if spec.op is not None and spec.op != op:
                    continue
                spec.seen += 1
                if fired is None and spec.nth <= spec.seen < spec.nth + spec.count:
                    fired = spec.kind
            if fired is not None:
                occurrence = max(
                    spec.seen
                    for spec in self.specs
                    if spec.site == site
                    and (spec.op is None or spec.op == op)
                )
                self.history.append((site, op, occurrence, fired))
            return fired

    def crash(self, kind: str) -> None:
        """Simulate the daemon dying right now.

        ``on_crash`` (``os._exit`` under ``repro serve``) never
        returns; without a hook, raise :class:`DaemonCrash` so the
        calling worker thread unwinds like a thread whose process
        vanished.
        """
        if kind not in CRASH_KINDS:
            raise ValueError("not a crash fault kind: %r" % (kind,))
        if self.on_crash is not None:
            self.on_crash(kind)
        raise DaemonCrash(kind)

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self.specs)
