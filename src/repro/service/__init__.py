"""The sweep service: a daemon, a wire protocol, and a shared store.

This package turns the :class:`~repro.api.engine.Engine` into a
fleet-scale serving stack:

:mod:`repro.service.protocol`
    the line-delimited JSON job protocol — schema-versioned envelopes,
    a closed vocabulary of message types and error codes, and the
    submit/status/result/cancel message builders;
:mod:`repro.service.store`
    a content-addressed shared result store keyed by the existing
    ``cell_hash`` (the config-derived content address the two-level
    cache already uses), written atomically so any number of daemon
    workers and external processes can share one directory;
:mod:`repro.service.daemon`
    the ``repro serve`` HTTP daemon (stdlib ``ThreadingHTTPServer``):
    sweep submission with request coalescing, per-job progress
    streaming, cached-cell lookup, and 429 back-pressure;
:mod:`repro.service.remote`
    the ``Engine(backend="remote", server=...)`` client backend with
    bounded retry/backoff, per-request timeouts and honored
    ``Retry-After``.
"""

from __future__ import annotations

from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.remote import RemoteClient, RemoteError
from repro.service.store import ResultStore

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteClient",
    "RemoteError",
    "ResultStore",
]
