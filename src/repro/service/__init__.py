"""The sweep service: a daemon, a wire protocol, and a shared store.

This package turns the :class:`~repro.api.engine.Engine` into a
fleet-scale serving stack:

:mod:`repro.service.protocol`
    the line-delimited JSON job protocol — schema-versioned envelopes,
    a closed vocabulary of message types and error codes, and the
    submit/status/result/cancel/publish message builders;
:mod:`repro.service.store`
    a content-addressed shared result store keyed by the existing
    ``cell_hash`` (the config-derived content address the two-level
    cache already uses), written atomically so any number of daemon
    workers and external processes can share one directory, with
    crash-safe GC (rename-to-tombstone) and a re-hashing verify pass;
:mod:`repro.service.daemon`
    the ``repro serve`` HTTP daemon (stdlib ``ThreadingHTTPServer``):
    sweep submission with request coalescing, per-job progress
    streaming, cached-cell lookup, 429 back-pressure, a write-ahead
    job journal with ``--resume`` crash recovery, and graceful
    SIGTERM/SIGINT shutdown;
:mod:`repro.service.journal`
    the ndjson write-ahead journal the daemon's crash recovery
    replays;
:mod:`repro.service.faults`
    deterministic fault injection (``repro serve --fault-plan``) —
    a closed vocabulary of failure kinds scheduled by occurrence
    count, so every distributed failure mode is a reproducible test;
:mod:`repro.service.remote`
    the ``Engine(backend="remote", server=...)`` client backend with
    bounded retry/backoff, per-request timeouts, honored
    ``Retry-After``, a health-probe circuit breaker, and optional
    graceful degradation to inline simulation
    (``Engine(server=..., fallback="inline")``).
"""

from __future__ import annotations

from repro.service.faults import DaemonCrash, FaultInjected, FaultPlan
from repro.service.journal import JobJournal
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.remote import RemoteClient, RemoteError
from repro.service.store import ResultStore

__all__ = [
    "PROTOCOL_VERSION",
    "DaemonCrash",
    "FaultInjected",
    "FaultPlan",
    "JobJournal",
    "ProtocolError",
    "RemoteClient",
    "RemoteError",
    "ResultStore",
]
