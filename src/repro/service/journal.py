"""Write-ahead job journal for the sweep daemon.

The daemon's job table lives in memory; a crash loses every in-flight
sweep.  The journal makes submissions durable: each accepted job is
appended as one ndjson record *before* the client's ack is sent
(write-ahead), and each resolved cell appends a completion record, so
``repro serve --resume`` can rebuild the exact set of unfinished work
after a crash and serve already-published cells straight from the
content-addressed store.

Records are line-delimited JSON, one of::

    {"j": 1, "type": "job", "job": "j000001", "verify": false,
     "cells": [{"id": 0, "workload": ..., "size": ...,
                "config_name": ..., "config": {...}, "hash": ...}, ...]}
    {"j": 1, "type": "cell", "job": "j000001", "id": 0,
     "hash": ..., "status": "ok"}            # or failed/cancelled + error
    {"j": 1, "type": "cancel", "job": "j000001"}

Crash-safety properties:

* appends are flushed per record, so at most the final line can be
  torn; :meth:`JobJournal.replay` tolerates (and drops) a torn tail —
  the worst case is re-simulating one already-finished cell, which is
  byte-identical by construction;
* :meth:`JobJournal.rotate` compacts the file (dropping records of
  finished jobs) by writing a temp file and ``os.replace``-ing it over
  the live one, the same atomic-rename discipline as the result store.

The journal deliberately stores config *payloads* (the canonical wire
shape from :func:`repro.api.cache.config_to_payload`), not pickled
objects: a journal written by one daemon version is replayable by the
next, and an unregistered policy fails replay loudly.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Dict, IO, Iterator, List, Optional, Tuple

from repro.api.cache import (
    AnyConfig,
    cell_hash,
    config_from_payload,
    config_to_payload,
)
from repro.service.protocol import CELL_STATUSES

#: Bump when the record schema changes.
JOURNAL_VERSION = 1

#: Record types (closed set).
REC_JOB: str = "job"
REC_CELL: str = "cell"
REC_CANCEL: str = "cancel"

RECORD_TYPES: Tuple[str, ...] = (REC_JOB, REC_CELL, REC_CANCEL)


class JournalError(ValueError):
    """A journal file contains a structurally invalid (non-torn) record."""


class JournalCell:
    """One cell of a replayed job submission."""

    __slots__ = ("id", "workload", "size", "config_name", "config", "hash")

    def __init__(
        self,
        cell_id: int,
        workload: str,
        size: str,
        config_name: str,
        config: AnyConfig,
        digest: str,
    ) -> None:
        self.id = cell_id
        self.workload = workload
        self.size = size
        self.config_name = config_name
        self.config = config
        self.hash = digest


class JournalJob:
    """A replayed job: its cells plus every recorded resolution."""

    __slots__ = ("job_id", "verify", "cells", "resolved", "cancelled")

    def __init__(self, job_id: str, verify: bool) -> None:
        self.job_id = job_id
        self.verify = verify
        self.cells: List[JournalCell] = []
        #: cell id -> (status, error text or None)
        self.resolved: Dict[int, Tuple[str, Optional[str]]] = {}
        self.cancelled = False

    @property
    def finished(self) -> bool:
        return len(self.resolved) == len(self.cells)


def _record_line(record: Dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True) + "\n"


class JobJournal:
    """An append-only ndjson journal with atomic compaction.

    Thread-safe: the daemon appends from the request handler (job
    records) and from worker threads (cell records) concurrently.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle: Optional[IO[str]] = open(path, "a", encoding="utf-8")

    # -- appends -------------------------------------------------------

    def _append(self, record: Dict[str, object]) -> None:
        with self._lock:
            if self._handle is None:
                raise JournalError("journal %s is closed" % self.path)
            self._handle.write(_record_line(record))
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def record_job(
        self,
        job_id: str,
        verify: bool,
        cells: List[JournalCell],
    ) -> None:
        """Make a submission durable (call before acking the client)."""
        self._append(
            {
                "j": JOURNAL_VERSION,
                "type": REC_JOB,
                "job": job_id,
                "verify": bool(verify),
                "cells": [
                    {
                        "id": cell.id,
                        "workload": cell.workload,
                        "size": cell.size,
                        "config_name": cell.config_name,
                        "config": config_to_payload(cell.config),
                        "hash": cell.hash,
                    }
                    for cell in cells
                ],
            }
        )

    def record_cell(
        self,
        job_id: str,
        cell_id: int,
        digest: str,
        status: str,
        error: Optional[str] = None,
    ) -> None:
        """Record one cell's terminal resolution."""
        if status not in CELL_STATUSES:
            raise JournalError("unknown cell status %r" % (status,))
        record: Dict[str, object] = {
            "j": JOURNAL_VERSION,
            "type": REC_CELL,
            "job": job_id,
            "id": cell_id,
            "hash": digest,
            "status": status,
        }
        if error is not None:
            record["error"] = error
        self._append(record)

    def record_cancel(self, job_id: str) -> None:
        self._append(
            {"j": JOURNAL_VERSION, "type": REC_CANCEL, "job": job_id}
        )

    # -- replay --------------------------------------------------------

    @staticmethod
    def _parse(line: str) -> Optional[Dict[str, object]]:
        """One record, or None for blank/torn lines."""
        text = line.strip()
        if not text:
            return None
        try:
            record = json.loads(text)
        except ValueError:
            return None
        if not isinstance(record, dict):
            return None
        return record

    @classmethod
    def _decode_job(cls, record: Dict[str, object]) -> JournalJob:
        job_id = str(record.get("job", ""))
        if not job_id:
            raise JournalError("job record without id")
        job = JournalJob(job_id, bool(record.get("verify", False)))
        raw_cells = record.get("cells")
        if not isinstance(raw_cells, list) or not raw_cells:
            raise JournalError("job %s record has no cells" % job_id)
        for raw in raw_cells:
            if not isinstance(raw, dict):
                raise JournalError("job %s has a malformed cell" % job_id)
            try:
                cell_id = int(raw["id"])
                workload = str(raw["workload"])
                size = str(raw["size"])
                config_name = str(raw["config_name"])
                payload = raw["config"]
                claimed = str(raw["hash"])
            except (KeyError, TypeError, ValueError) as exc:
                raise JournalError(
                    "job %s cell is malformed: %s" % (job_id, exc)
                ) from exc
            if not isinstance(payload, dict):
                raise JournalError("job %s cell config must be an object" % job_id)
            try:
                config = config_from_payload(payload)
            except ValueError as exc:
                raise JournalError(
                    "job %s cell %d config: %s (a policy used when the "
                    "journal was written must be importable on resume, "
                    "e.g. repro serve --plugin)" % (job_id, cell_id, exc)
                ) from exc
            digest = cell_hash(workload, size, config)
            if digest != claimed:
                raise JournalError(
                    "job %s cell %d content address mismatch (journal "
                    "%s..., recomputed %s...): the cache schema changed "
                    "since the journal was written"
                    % (job_id, cell_id, claimed[:12], digest[:12])
                )
            job.cells.append(
                JournalCell(cell_id, workload, size, config_name, config, digest)
            )
        return job

    @classmethod
    def replay_path(cls, path: str) -> List[JournalJob]:
        """Replay a journal file into jobs, in submission order.

        Torn or blank lines are dropped (only the final line can be
        torn under the flush-per-append discipline); structurally
        invalid complete records raise :class:`JournalError` — a
        corrupt journal must fail resume loudly, not resume a subset.
        """
        jobs: Dict[str, JournalJob] = {}
        order: List[str] = []
        if not os.path.exists(path):
            return []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                record = cls._parse(line)
                if record is None:
                    continue
                if record.get("j") != JOURNAL_VERSION:
                    raise JournalError(
                        "journal %s has version %r, this daemon speaks %d"
                        % (path, record.get("j"), JOURNAL_VERSION)
                    )
                rec_type = record.get("type")
                if rec_type == REC_JOB:
                    job = cls._decode_job(record)
                    if job.job_id not in jobs:
                        order.append(job.job_id)
                    jobs[job.job_id] = job
                elif rec_type == REC_CELL:
                    job_id = str(record.get("job", ""))
                    target = jobs.get(job_id)
                    if target is None:
                        continue
                    try:
                        cell_id = int(record["id"])  # type: ignore[arg-type]
                        status = str(record["status"])
                    except (KeyError, TypeError, ValueError) as exc:
                        raise JournalError(
                            "malformed cell record for job %s: %s"
                            % (job_id, exc)
                        ) from exc
                    if status not in CELL_STATUSES:
                        raise JournalError(
                            "job %s cell %d has unknown status %r"
                            % (job_id, cell_id, status)
                        )
                    error = record.get("error")
                    target.resolved[cell_id] = (
                        status,
                        str(error) if error is not None else None,
                    )
                elif rec_type == REC_CANCEL:
                    job_id = str(record.get("job", ""))
                    target = jobs.get(job_id)
                    if target is not None:
                        target.cancelled = True
                else:
                    raise JournalError(
                        "journal %s has unknown record type %r"
                        % (path, rec_type)
                    )
        return [jobs[job_id] for job_id in order]

    def replay(self) -> List[JournalJob]:
        return self.replay_path(self.path)

    # -- compaction ----------------------------------------------------

    def rotate(self, live_jobs: List[JournalJob]) -> None:
        """Atomically rewrite the journal to just the live jobs.

        Writes the compacted records to a temp file in the same
        directory, fsyncs, then ``os.replace``s it over the live
        journal — a crash at any point leaves either the old complete
        journal or the new complete one, never a mix.
        """
        with self._lock:
            directory = os.path.dirname(self.path) or "."
            fd, tmp_path = tempfile.mkstemp(
                dir=directory, prefix=".journal-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as tmp:
                    for job in live_jobs:
                        tmp.write(
                            _record_line(
                                {
                                    "j": JOURNAL_VERSION,
                                    "type": REC_JOB,
                                    "job": job.job_id,
                                    "verify": job.verify,
                                    "cells": [
                                        {
                                            "id": cell.id,
                                            "workload": cell.workload,
                                            "size": cell.size,
                                            "config_name": cell.config_name,
                                            "config": config_to_payload(
                                                cell.config
                                            ),
                                            "hash": cell.hash,
                                        }
                                        for cell in job.cells
                                    ],
                                }
                            )
                        )
                        for cell in job.cells:
                            resolution = job.resolved.get(cell.id)
                            if resolution is None:
                                continue
                            status, error = resolution
                            record: Dict[str, object] = {
                                "j": JOURNAL_VERSION,
                                "type": REC_CELL,
                                "job": job.job_id,
                                "id": cell.id,
                                "hash": cell.hash,
                                "status": status,
                            }
                            if error is not None:
                                record["error"] = error
                            tmp.write(_record_line(record))
                        if job.cancelled:
                            tmp.write(
                                _record_line(
                                    {
                                        "j": JOURNAL_VERSION,
                                        "type": REC_CANCEL,
                                        "job": job.job_id,
                                    }
                                )
                            )
                    tmp.flush()
                    os.fsync(tmp.fileno())
            except BaseException:
                os.unlink(tmp_path)
                raise
            if self._handle is not None:
                self._handle.close()
            os.replace(tmp_path, self.path)
            self._handle = open(self.path, "a", encoding="utf-8")

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def resolve_journal_path(journal: Optional[str], store_root: str) -> str:
    """The journal path: explicit flag, or ``journal.ndjson`` beside
    the store (so one ``--store`` flag carries both durabilities)."""
    if journal:
        return journal
    return os.path.join(store_root, "journal.ndjson")
