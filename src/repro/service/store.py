"""Content-addressed shared result store backing the sweep daemon.

One entry per simulated cell, named by the full ``cell_hash`` — the
byte-stable digest of (cache version, workload, size, complete config)
that the two-level cache already derives — and sharded by the first
two hex digits so a million-entry store never puts a million files in
one directory::

    <root>/ab/abcdef...0123.json

Entries carry exactly the disk-cache entry schema
(:mod:`repro.api.cache`: version, workload, size, config payload,
stats payload), so the store is a superset of the flat cache: tooling
that understands one understands the other, and because identical
hashes imply identical content, two stores merge by copying files —
no conflict resolution needed (contrast ``repro merge``, which merges
*ResultSet artifacts* and must compare stats).  Writes go through
:func:`repro.api.cache.atomic_write_text`, so any number of daemon
worker threads and external processes can share one root safely.

Deletion (:meth:`ResultStore.gc`) is crash-safe against those same
concurrent readers: an entry is first renamed to a ``.tomb`` file
(atomic — readers hitting the tombstone see a miss, never a torn
read) and only then unlinked, so a GC killed mid-delete leaves at
worst a tombstone that the next GC sweeps.  :meth:`ResultStore.verify`
re-hashes every entry's decoded content against its filename, catching
bit-rot and schema skew before they serve wrong results.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.api.cache import (
    CACHE_VERSION,
    AnyConfig,
    AnyStats,
    atomic_write_text,
    cell_hash,
    config_from_payload,
    config_to_payload,
    stats_from_payload,
    stats_to_payload,
)
from repro.service.faults import FAULT_TORN_STORE_WRITE, FaultPlan, SITE_STORE

#: Environment variable naming the daemon's default store root.
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Fallback store root when neither --store nor the env var is set.
DEFAULT_STORE_DIR = ".repro_store"

_HEX = set("0123456789abcdef")


def resolve_store_dir(root: Optional[str]) -> str:
    """Explicit root, else ``$REPRO_STORE_DIR``, else the default."""
    if root:
        return root
    return os.environ.get(STORE_DIR_ENV) or DEFAULT_STORE_DIR


def is_cell_digest(text: str) -> bool:
    """True for a full-length lowercase sha256 hex digest."""
    return len(text) == 64 and all(c in _HEX for c in text)


@dataclass(frozen=True)
class StoreInfo:
    """One snapshot of the store (``/v1/health``, tests, docs)."""

    root: str
    entries: int
    total_bytes: int


@dataclass(frozen=True)
class GCResult:
    """What one ``repro store gc`` pass did (or would do)."""

    examined: int
    evicted: int
    evicted_bytes: int
    kept: int
    reserved: int
    tombstones_swept: int
    dry_run: bool


@dataclass(frozen=True)
class VerifyProblem:
    """One entry that failed the re-hashing pass."""

    digest: str
    path: str
    reason: str


@dataclass(frozen=True)
class VerifyResult:
    """Outcome of a ``repro store verify`` pass."""

    examined: int
    problems: List[VerifyProblem] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


class ResultStore:
    """A directory of cell results addressed by content hash.

    ``fault_plan`` threads the service's deterministic fault injector
    into writes (the ``torn-store-write`` kind): production code never
    passes one, tests and ``repro serve --fault-plan`` do.
    """

    def __init__(self, root: str, fault_plan: Optional[FaultPlan] = None) -> None:
        self.root = root
        self.fault_plan = fault_plan
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def path_for(self, digest: str) -> str:
        if not is_cell_digest(digest):
            raise ValueError("not a cell digest: %r" % (digest,))
        return os.path.join(self.root, digest[:2], digest + ".json")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get_entry(self, digest: str) -> Optional[Dict[str, object]]:
        """The full JSON entry for a digest, or None.

        Torn/alien files and entries from another ``CACHE_VERSION``
        read as misses, exactly like the flat disk cache.
        """
        try:
            with open(self.path_for(digest)) as f:
                entry = json.load(f)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("version") != CACHE_VERSION:
            return None
        return entry

    def load_stats(self, digest: str) -> Optional[AnyStats]:
        """The decoded stats for a digest, or None."""
        entry = self.get_entry(digest)
        if entry is None:
            return None
        payload = entry.get("stats")
        if not isinstance(payload, dict):
            return None
        try:
            return stats_from_payload(payload)
        except (KeyError, TypeError):
            return None

    def load(
        self, workload: str, size: str, config: AnyConfig
    ) -> Optional[AnyStats]:
        """Cache-style lookup by cell rather than by digest."""
        return self.load_stats(cell_hash(workload, size, config))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def store(
        self, workload: str, size: str, config: AnyConfig, stats: AnyStats
    ) -> str:
        """Persist one cell result; returns its content address.

        Concurrent writers of the same digest are harmless: identical
        hashes imply identical entries, so whichever ``os.replace``
        lands last installs the same bytes.
        """
        digest = cell_hash(workload, size, config)
        entry = {
            "version": CACHE_VERSION,
            "workload": workload,
            "size": size,
            "config": config_to_payload(config),
            "stats": stats_to_payload(stats),
        }
        path = self.path_for(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        text = json.dumps(entry, indent=1, sort_keys=True)
        if (
            self.fault_plan is not None
            and self.fault_plan.fire(SITE_STORE, workload)
            == FAULT_TORN_STORE_WRITE
        ):
            # Simulate a writer that died mid-write without the atomic
            # rename: half the bytes land at the final path.  Readers
            # must treat it as a miss and resimulation must converge.
            with open(path, "w", encoding="utf-8") as torn:
                torn.write(text[: len(text) // 2])
            return digest
        atomic_write_text(path, text)
        return digest

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _entry_paths(self) -> Iterator[Tuple[str, str]]:
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            for name in names:
                digest, ext = os.path.splitext(name)
                if ext == ".json" and is_cell_digest(digest):
                    yield digest, os.path.join(shard_dir, name)

    def digests(self) -> Iterator[str]:
        """Every content address currently in the store (sorted)."""
        for digest, _ in self._entry_paths():
            yield digest

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def info(self) -> StoreInfo:
        entries = 0
        total = 0
        for _, path in self._entry_paths():
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
            entries += 1
        return StoreInfo(self.root, entries, total)

    # ------------------------------------------------------------------
    # Deletion / GC
    # ------------------------------------------------------------------

    def _tombstone_paths(self) -> Iterator[str]:
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            for name in names:
                if name.endswith(".tomb"):
                    yield os.path.join(shard_dir, name)

    def delete(self, digest: str) -> bool:
        """Remove one entry crash-safely; True if it existed.

        Two steps: atomic rename to ``<digest>.json.tomb`` (concurrent
        readers now miss instead of racing a partial unlink), then
        unlink the tombstone.  A crash between the steps leaves only a
        tombstone, which reads as a miss and is swept by the next
        :meth:`gc`.
        """
        path = self.path_for(digest)
        tomb = path + ".tomb"
        try:
            os.replace(path, tomb)
        except OSError:
            return False
        try:
            os.unlink(tomb)
        except OSError:
            pass
        return True

    def gc(
        self,
        max_age: Optional[float] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        reserved: FrozenSet[str] = frozenset(),
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> GCResult:
        """Evict entries to fit the given budgets; returns what happened.

        Eviction order is oldest-mtime-first (the entries least likely
        to be re-read).  ``reserved`` digests — cells an active daemon
        has in flight — are never evicted regardless of budgets, so GC
        can run beside a live daemon.  ``dry_run`` reports without
        deleting.  Leftover tombstones from an interrupted previous
        pass are always swept (even dry runs report them).
        """
        if max_age is not None and max_age < 0:
            raise ValueError("max_age must be >= 0")
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        swept = 0
        for tomb in self._tombstone_paths():
            swept += 1
            if not dry_run:
                try:
                    os.unlink(tomb)
                except OSError:
                    pass
        entries: List[Tuple[float, int, str]] = []
        for digest, path in self._entry_paths():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, digest))
        entries.sort()
        if now is None:
            newest = max((mtime for mtime, _, _ in entries), default=0.0)
            now = newest
        evict: Dict[str, int] = {}
        reserved_hits = 0
        if max_age is not None:
            for mtime, size, digest in entries:
                if now - mtime > max_age:
                    evict[digest] = size
        live = [e for e in entries if e[2] not in evict]
        if max_entries is not None and len(live) > max_entries:
            for mtime, size, digest in live[: len(live) - max_entries]:
                evict[digest] = size
            live = [e for e in live if e[2] not in evict]
        if max_bytes is not None:
            total = sum(size for _, size, _ in live)
            for mtime, size, digest in live:
                if total <= max_bytes:
                    break
                evict[digest] = size
                total -= size
        for digest in list(evict):
            if digest in reserved:
                del evict[digest]
                reserved_hits += 1
        evicted = 0
        evicted_bytes = 0
        for digest, size in evict.items():
            if dry_run or self.delete(digest):
                evicted += 1
                evicted_bytes += size
        return GCResult(
            examined=len(entries),
            evicted=evicted,
            evicted_bytes=evicted_bytes,
            kept=len(entries) - evicted,
            reserved=reserved_hits,
            tombstones_swept=swept,
            dry_run=dry_run,
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self) -> VerifyResult:
        """Re-hash every entry against its filename digest.

        Catches torn files, entries from another ``CACHE_VERSION``,
        undecodable config/stats payloads, and — the headline check —
        content whose recomputed ``cell_hash`` no longer matches the
        content address it is filed under.
        """
        examined = 0
        problems: List[VerifyProblem] = []

        def problem(digest: str, path: str, reason: str) -> None:
            problems.append(VerifyProblem(digest, path, reason))

        for digest, path in self._entry_paths():
            examined += 1
            try:
                with open(path, encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                problem(digest, path, "unreadable or torn JSON")
                continue
            if not isinstance(entry, dict):
                problem(digest, path, "entry is not a JSON object")
                continue
            if entry.get("version") != CACHE_VERSION:
                problem(
                    digest,
                    path,
                    "cache version %r (this build speaks %d)"
                    % (entry.get("version"), CACHE_VERSION),
                )
                continue
            workload = entry.get("workload")
            size = entry.get("size")
            config_payload = entry.get("config")
            stats_payload = entry.get("stats")
            if not isinstance(workload, str) or not isinstance(size, str):
                problem(digest, path, "missing workload/size")
                continue
            if not isinstance(config_payload, dict):
                problem(digest, path, "config payload is not an object")
                continue
            try:
                config = config_from_payload(config_payload)
            except ValueError as exc:
                problem(digest, path, "undecodable config: %s" % exc)
                continue
            if not isinstance(stats_payload, dict):
                problem(digest, path, "stats payload is not an object")
                continue
            try:
                stats_from_payload(stats_payload)
            except (KeyError, TypeError, ValueError) as exc:
                problem(digest, path, "undecodable stats: %s" % exc)
                continue
            recomputed = cell_hash(workload, size, config)
            if recomputed != digest:
                problem(
                    digest,
                    path,
                    "content address mismatch (recomputed %s...)"
                    % recomputed[:12],
                )
        return VerifyResult(examined=examined, problems=problems)
