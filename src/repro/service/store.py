"""Content-addressed shared result store backing the sweep daemon.

One entry per simulated cell, named by the full ``cell_hash`` — the
byte-stable digest of (cache version, workload, size, complete config)
that the two-level cache already derives — and sharded by the first
two hex digits so a million-entry store never puts a million files in
one directory::

    <root>/ab/abcdef...0123.json

Entries carry exactly the disk-cache entry schema
(:mod:`repro.api.cache`: version, workload, size, config payload,
stats payload), so the store is a superset of the flat cache: tooling
that understands one understands the other, and because identical
hashes imply identical content, two stores merge by copying files —
no conflict resolution needed (contrast ``repro merge``, which merges
*ResultSet artifacts* and must compare stats).  Writes go through
:func:`repro.api.cache.atomic_write_text`, so any number of daemon
worker threads and external processes can share one root safely.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.api.cache import (
    CACHE_VERSION,
    AnyConfig,
    AnyStats,
    atomic_write_text,
    cell_hash,
    config_to_payload,
    stats_from_payload,
    stats_to_payload,
)

#: Environment variable naming the daemon's default store root.
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Fallback store root when neither --store nor the env var is set.
DEFAULT_STORE_DIR = ".repro_store"

_HEX = set("0123456789abcdef")


def resolve_store_dir(root: Optional[str]) -> str:
    """Explicit root, else ``$REPRO_STORE_DIR``, else the default."""
    if root:
        return root
    return os.environ.get(STORE_DIR_ENV) or DEFAULT_STORE_DIR


def is_cell_digest(text: str) -> bool:
    """True for a full-length lowercase sha256 hex digest."""
    return len(text) == 64 and all(c in _HEX for c in text)


@dataclass(frozen=True)
class StoreInfo:
    """One snapshot of the store (``/v1/health``, tests, docs)."""

    root: str
    entries: int
    total_bytes: int


class ResultStore:
    """A directory of cell results addressed by content hash."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def path_for(self, digest: str) -> str:
        if not is_cell_digest(digest):
            raise ValueError("not a cell digest: %r" % (digest,))
        return os.path.join(self.root, digest[:2], digest + ".json")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get_entry(self, digest: str) -> Optional[Dict[str, object]]:
        """The full JSON entry for a digest, or None.

        Torn/alien files and entries from another ``CACHE_VERSION``
        read as misses, exactly like the flat disk cache.
        """
        try:
            with open(self.path_for(digest)) as f:
                entry = json.load(f)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("version") != CACHE_VERSION:
            return None
        return entry

    def load_stats(self, digest: str) -> Optional[AnyStats]:
        """The decoded stats for a digest, or None."""
        entry = self.get_entry(digest)
        if entry is None:
            return None
        payload = entry.get("stats")
        if not isinstance(payload, dict):
            return None
        try:
            return stats_from_payload(payload)
        except (KeyError, TypeError):
            return None

    def load(
        self, workload: str, size: str, config: AnyConfig
    ) -> Optional[AnyStats]:
        """Cache-style lookup by cell rather than by digest."""
        return self.load_stats(cell_hash(workload, size, config))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def store(
        self, workload: str, size: str, config: AnyConfig, stats: AnyStats
    ) -> str:
        """Persist one cell result; returns its content address.

        Concurrent writers of the same digest are harmless: identical
        hashes imply identical entries, so whichever ``os.replace``
        lands last installs the same bytes.
        """
        digest = cell_hash(workload, size, config)
        entry = {
            "version": CACHE_VERSION,
            "workload": workload,
            "size": size,
            "config": config_to_payload(config),
            "stats": stats_to_payload(stats),
        }
        path = self.path_for(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_text(path, json.dumps(entry, indent=1, sort_keys=True))
        return digest

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _entry_paths(self) -> Iterator[Tuple[str, str]]:
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            for name in names:
                digest, ext = os.path.splitext(name)
                if ext == ".json" and is_cell_digest(digest):
                    yield digest, os.path.join(shard_dir, name)

    def digests(self) -> Iterator[str]:
        """Every content address currently in the store (sorted)."""
        for digest, _ in self._entry_paths():
            yield digest

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def info(self) -> StoreInfo:
        entries = 0
        total = 0
        for _, path in self._entry_paths():
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
            entries += 1
        return StoreInfo(self.root, entries, total)
