"""Cross-checks between observed analytics and the modeled hardware.

The cost model (:mod:`repro.hwcost.area`, Table 4) prices a policy's
front end by its modeled issue width: one decoupled scheduler slot for
the baseline, two for the SBI dual-issue machines.  A simulation that
*observes* more issues in a single SM-cycle than that width has issued
through hardware the cost model never paid for — either the policy's
``issue_width`` is declared wrong or the scheduler has a bug.  Either
way the run's performance numbers are not comparable to the paper's,
so :func:`validate_peak_issue` fails loudly instead of letting the
mismatch ride into a results table.

The observable comes from the ``origins`` aggregator
(:class:`repro.analytics.origins.OriginAggregator`), whose snapshot
carries ``peak_issues_per_cycle`` per SM; ``repro analyze`` runs this
check automatically whenever that aggregator is attached.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from repro.timing.config import GPUConfig, SMConfig


class PeakIssueViolation(ValueError):
    """An SM issued above the policy's modeled front-end width."""


def front_end_width(config: Union[SMConfig, GPUConfig]) -> int:
    """The modeled peak issues per SM-cycle of ``config``'s policy."""
    sm = config.sm if isinstance(config, GPUConfig) else config
    return int(sm.issue_width)


def validate_peak_issue(
    config: Union[SMConfig, GPUConfig],
    origins_snapshot: Mapping[str, object],
) -> Dict[str, int]:
    """Check an ``origins`` snapshot against the modeled issue width.

    Returns the per-SM peak map (keys as in the snapshot) when every
    SM stayed within the front-end width; raises
    :class:`PeakIssueViolation` naming the worst offender otherwise.
    """
    width = front_end_width(config)
    raw = origins_snapshot.get("peak_issues_per_cycle")
    if not isinstance(raw, Mapping):
        raise ValueError(
            "origins snapshot has no peak_issues_per_cycle map "
            "(got %r); pass OriginAggregator.snapshot()" % (raw,)
        )
    peaks = {str(sm): int(peak) for sm, peak in raw.items()}
    for sm, peak in sorted(peaks.items()):
        if peak > width:
            sm_config = config.sm if isinstance(config, GPUConfig) else config
            raise PeakIssueViolation(
                "SM %s issued %d instructions in one cycle but policy "
                "%r models a front-end width of %d — the cost model "
                "(Table 4) prices %d issue slot(s), so these timing "
                "numbers are not comparable"
                % (sm, peak, sm_config.mode, width, width)
            )
    return peaks
