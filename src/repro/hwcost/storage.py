"""Per-component storage requirements (paper Table 3).

Geometries are derived from first principles for the Fermi-sized
machine used in the paper's RTL evaluation:

* baseline: 48 warps x 32 threads, two scheduling pools of 24;
* SBI / SWI / SBI+SWI: 24 warps x 64 threads.

Component derivations (bits):

* **Scoreboard** entry = 8-bit destination register id; 6 entries per
  warp.  SBI widens each entry by 16 bits of divergence-tracking state
  (the dependency row/matrix of section 3.4), giving 24-bit entries.
  SBI+SWI banks the structure per scheduler (x2).
* **Warp pool / HCT** context = PC (32) + activity mask (warp width).
  SBI holds two contexts per warp plus a 7-bit CCT head pointer
  (24 x 201); SWI holds one (24 x 104).
* **Stack / CCT**: the baseline reconvergence stack has 3 blocks of 4
  entries of 64 bits per warp (48 x 3 = 144 blocks of 256 bits); the
  CCT replaces it with 128 shared entries of CPC (32) + mask (64) +
  valid (1) + next pointer (7) = 104 bits.
* **Instruction buffer** entry = 64-bit decoded instruction; one per
  warp-split slot (48 slots baseline and SBI, 24 for SWI), dual-ported
  where the cascaded scheduler needs a second read port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: RTL-sized machine (Fermi): matches the paper's Table 3/4 sizing.
RTL_BASELINE_WARPS = 48
RTL_WIDE_WARPS = 24
RTL_WARP_WIDTH_BASE = 32
RTL_WARP_WIDTH_WIDE = 64
SCOREBOARD_ENTRIES = 6
REGID_BITS = 8
SBI_TRACK_BITS = 16  # divergence-tracking state per matrix-scoreboard entry
PC_BITS = 32
CCT_ENTRIES = 128
CCT_PTR_BITS = 7  # log2(128)
IBUF_ENTRY_BITS = 64
STACK_BLOCKS_PER_WARP = 3
STACK_BLOCK_ENTRIES = 4
STACK_ENTRY_BITS = 64

CONFIGS = ("baseline", "sbi", "swi", "sbi_swi")


@dataclass(frozen=True)
class ComponentStorage:
    """banks x rows x bits, with port count for area modelling."""

    component: str
    banks: int
    rows: int
    bits: int
    ports: int = 1

    @property
    def total_bits(self) -> int:
        return self.banks * self.rows * self.bits

    def geometry(self) -> str:
        prefix = "%dx " % self.banks if self.banks > 1 else ""
        suffix = ", dual-ported" if self.ports > 1 else ""
        return "%s%dx %d-bit%s" % (prefix, self.rows, self.bits, suffix)


def scoreboard(config: str) -> ComponentStorage:
    base_bits = SCOREBOARD_ENTRIES * REGID_BITS
    sbi_bits = SCOREBOARD_ENTRIES * (REGID_BITS + SBI_TRACK_BITS)
    if config == "baseline":
        return ComponentStorage("Scoreboard", 2, RTL_WIDE_WARPS, base_bits)
    if config == "sbi":
        return ComponentStorage("Scoreboard", 1, RTL_WIDE_WARPS, sbi_bits)
    if config == "swi":
        return ComponentStorage("Scoreboard", 2, RTL_WIDE_WARPS, base_bits)
    return ComponentStorage("Scoreboard", 1, RTL_WIDE_WARPS, 2 * sbi_bits)


def warp_pool(config: str) -> ComponentStorage:
    context_wide = PC_BITS + RTL_WARP_WIDTH_WIDE + 1  # CPC + mask + valid
    if config == "baseline":
        bits = PC_BITS + RTL_WARP_WIDTH_BASE  # PC + mask per warp
        return ComponentStorage("Warp pool/HCT", 2, RTL_WIDE_WARPS, bits)
    if config == "swi":
        return ComponentStorage("Warp pool/HCT", 1, RTL_WIDE_WARPS, context_wide + CCT_PTR_BITS)
    bits = 2 * context_wide + CCT_PTR_BITS  # two hot contexts (HCT)
    ports = 2 if config == "sbi_swi" else 1
    return ComponentStorage("Warp pool/HCT", 1, RTL_WIDE_WARPS, bits, ports)


def stack_or_cct(config: str) -> ComponentStorage:
    if config == "baseline":
        blocks = RTL_BASELINE_WARPS * STACK_BLOCKS_PER_WARP
        return ComponentStorage(
            "Stack/CCT", 1, blocks, STACK_BLOCK_ENTRIES * STACK_ENTRY_BITS
        )
    bits = PC_BITS + RTL_WARP_WIDTH_WIDE + 1 + CCT_PTR_BITS
    return ComponentStorage("Stack/CCT", 1, CCT_ENTRIES, bits)


def insn_buffer(config: str) -> ComponentStorage:
    if config == "baseline":
        return ComponentStorage("Insn. buffer", 1, 2 * RTL_WIDE_WARPS, IBUF_ENTRY_BITS)
    if config == "sbi":
        return ComponentStorage("Insn. buffer", 1, 2 * RTL_WIDE_WARPS, IBUF_ENTRY_BITS)
    if config == "swi":
        return ComponentStorage("Insn. buffer", 1, RTL_WIDE_WARPS, IBUF_ENTRY_BITS, ports=2)
    return ComponentStorage("Insn. buffer", 1, 2 * RTL_WIDE_WARPS, IBUF_ENTRY_BITS, ports=2)


def components(config: str) -> List[ComponentStorage]:
    if config not in CONFIGS:
        raise ValueError("config must be one of %s" % (CONFIGS,))
    return [
        scoreboard(config),
        warp_pool(config),
        stack_or_cct(config),
        insn_buffer(config),
    ]


def storage_table() -> Dict[str, Dict[str, ComponentStorage]]:
    """{component: {config: storage}} for all four configurations."""
    table: Dict[str, Dict[str, ComponentStorage]] = {}
    for config in CONFIGS:
        for comp in components(config):
            table.setdefault(comp.component, {})[config] = comp
    return table


#: The paper's Table 3, as geometry strings, for verification.
STORAGE_PAPER: Dict[str, Dict[str, str]] = {
    "Scoreboard": {
        "baseline": "2x 24x 48-bit",
        "sbi": "24x 144-bit",
        "swi": "2x 24x 48-bit",
        "sbi_swi": "24x 288-bit",
    },
    "Warp pool/HCT": {
        "baseline": "2x 24x 64-bit",
        "sbi": "24x 201-bit",
        "swi": "24x 104-bit",
        "sbi_swi": "24x 201-bit, banked",
    },
    "Stack/CCT": {
        "baseline": "144x 256-bit",
        "sbi": "128x 104-bit",
        "swi": "128x 104-bit",
        "sbi_swi": "128x 104-bit",
    },
    "Insn. buffer": {
        "baseline": "48x 64-bit",
        "sbi": "48x 64-bit",
        "swi": "24x 64-bit, dual-ported",
        "sbi_swi": "48x 64-bit, dual-ported",
    },
}
