"""Area model (paper Table 4, 40 nm, x1000 um^2).

The paper synthesised its RTL with a production compiler and scaled to
Fermi's 40 nm process; we cannot re-run synthesis, so each structure
class gets a linear model ``area = banks x (fixed + bits x per_bit x
port_premium^(ports-1)) + logic`` whose coefficients are calibrated
against the paper's published component areas (the calibration residual
is reported next to each value by the Table 4 bench).  Two numbers are
inputs taken directly from the paper, not modelled: the segmented
register file estimate (+570, scaled from Fung et al.'s banked-RF
layout) and the SWI associative-lookup scheduler logic (+27.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hwcost import storage
from repro.hwcost.storage import CONFIGS, ComponentStorage

#: Fermi SM area from a public die photograph (the paper's reference).
SM_AREA_UM2 = 15.6e6

#: Register-file segmentation estimate quoted by the paper (x1000 um^2),
#: scaled from Fung et al.'s 90 nm banked register file.
RF_SEGMENTATION = 570.0

#: SWI associative-lookup scheduler logic (x1000 um^2), from the paper.
SWI_SCHEDULER = 27.4

#: Extra sort/compact network of the SBI HCT sorter (x1000 um^2) —
#: calibration residual attributed to Figure 5(b)'s sorting logic.
HCT_SORTER = 19.8


@dataclass(frozen=True)
class AreaCoefficients:
    """Linear SRAM-macro model for one structure class."""

    fixed: float        # per-bank overhead (x1000 um^2)
    per_bit: float      # x1000 um^2 per bit
    port_premium: float = 1.0  # multiplicative cost of an extra port


#: Calibrated against the paper's Table 4 (see module docstring).
COEFFS: Dict[str, AreaCoefficients] = {
    "Scoreboard": AreaCoefficients(fixed=32.9, per_bit=0.0094618),
    "Warp pool/HCT": AreaCoefficients(fixed=16.76, per_bit=0.0108333),
    "Stack/CCT": AreaCoefficients(fixed=422.3, per_bit=0.0043984),
    "Insn. buffer": AreaCoefficients(fixed=0.0, per_bit=0.0173828, port_premium=1.2734),
}


def component_area(comp: ComponentStorage, config: str) -> float:
    """Area of one storage component (x1000 um^2)."""
    c = COEFFS[comp.component]
    banks, per_bank_bits = comp.banks, comp.rows * comp.bits
    if comp.component == "Scoreboard" and config == "sbi_swi":
        # The combined design replicates the SBI scoreboard per
        # scheduler: physically two banks of half the entry width.
        banks, per_bank_bits = 2, per_bank_bits // 2
    bit_cost = c.per_bit * (c.port_premium ** (comp.ports - 1))
    area = banks * (c.fixed + per_bank_bits * bit_cost)
    if comp.component == "Warp pool/HCT" and config in ("sbi", "sbi_swi"):
        area += HCT_SORTER
    return area


def area_table() -> Dict[str, Dict[str, Optional[float]]]:
    """{component: {config: x1000 um^2}} including RF/scheduler rows."""
    table: Dict[str, Dict[str, Optional[float]]] = {
        "RF": {
            "baseline": None,
            "sbi": RF_SEGMENTATION,
            "swi": RF_SEGMENTATION,
            "sbi_swi": RF_SEGMENTATION,
        },
        "Scheduler": {
            "baseline": None,
            "sbi": None,
            "swi": SWI_SCHEDULER,
            "sbi_swi": SWI_SCHEDULER,
        },
    }
    for config in CONFIGS:
        for comp in storage.components(config):
            table.setdefault(comp.component, {})[config] = component_area(comp, config)
    totals: Dict[str, Optional[float]] = {}
    overheads: Dict[str, Optional[float]] = {}
    for config in CONFIGS:
        total = sum(
            v for row in table.values() if (v := row.get(config)) is not None
        )
        totals[config] = total
        overheads[config] = None if config == "baseline" else total - totals["baseline"]
    table["Total"] = totals
    table["Overhead"] = overheads
    return table


def overhead_percent(config: str) -> float:
    """SM area overhead (%) of one configuration vs the baseline."""
    table = area_table()
    over = table["Overhead"][config]
    if over is None:
        return 0.0
    return 100.0 * (over * 1000.0) / SM_AREA_UM2


#: The paper's Table 4 (x1000 um^2) for side-by-side comparison.
AREA_PAPER: Dict[str, Dict[str, Optional[float]]] = {
    "RF": {"baseline": None, "sbi": 570.0, "swi": 570.0, "sbi_swi": 570.0},
    "Scoreboard": {"baseline": 87.6, "sbi": 65.6, "swi": 87.6, "sbi_swi": 131.2},
    "Scheduler": {"baseline": None, "sbi": None, "swi": 27.4, "sbi_swi": 27.4},
    "Warp pool/HCT": {"baseline": 66.8, "sbi": 88.8, "swi": 43.8, "sbi_swi": 88.8},
    "Stack/CCT": {"baseline": 584.4, "sbi": 480.8, "swi": 480.8, "sbi_swi": 480.8},
    "Insn. buffer": {"baseline": 52.8, "sbi": 52.8, "swi": 33.4, "sbi_swi": 67.4},
    "Total": {"baseline": 791.6, "sbi": 1258.0, "swi": 1243.0, "sbi_swi": 1365.6},
    "Overhead": {"baseline": None, "sbi": 466.4, "swi": 451.4, "sbi_swi": 574.0},
}

#: Paper-quoted SM overhead percentages.
OVERHEAD_PAPER = {"sbi": 3.0, "swi": 2.9, "sbi_swi": 3.7}
