"""Hardware cost models for the paper's Table 3 (storage) and Table 4
(area).

The storage model derives every component's geometry (banks x entries x
bits) from the Fermi-sized configurations the paper synthesised
(48 x 32-wide warps baseline, 24 x 64-wide for SBI/SWI — note the
paper's *timing* simulations use the smaller Table 2 machine; we follow
the paper and keep both, each where it is used).

The area model combines those geometries with per-structure-class area
coefficients calibrated against the paper's published RTL results, so
that the derived table reproduces Table 4 and scales plausibly for
other configurations.
"""

from repro.hwcost.storage import ComponentStorage, storage_table, STORAGE_PAPER
from repro.hwcost.area import area_table, AREA_PAPER, SM_AREA_UM2
from repro.hwcost.validate import (
    PeakIssueViolation,
    front_end_width,
    validate_peak_issue,
)

__all__ = [
    "AREA_PAPER",
    "ComponentStorage",
    "PeakIssueViolation",
    "SM_AREA_UM2",
    "STORAGE_PAPER",
    "area_table",
    "front_end_width",
    "storage_table",
    "validate_peak_issue",
]
