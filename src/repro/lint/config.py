"""Path-level suppression table and scope constants for the rules.

Globs are matched against ``/``-normalised paths *and their suffixes*
(``repro/timing/masks.py`` matches whether the runner saw ``src/...``
or a site-packages path).  Keep entries few and justified — inline
``# repro-lint: disable=<rule>`` comments are preferred because they
sit next to the code they excuse.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: rule id -> glob patterns whose findings are dropped.
PATH_SUPPRESSIONS: Dict[str, Tuple[str, ...]] = {
    # Benchmarks and examples time things and print progress; only the
    # simulation core must be wall-clock-free.
    "wall-clock": (
        "benchmarks/*.py",
        "examples/*.py",
        "repro/bench.py",
        "repro/api/engine.py",
        "repro/cli.py",
    ),
    # Workload generators draw inputs from seeded, name-keyed
    # generators (repro.workloads.common.rng) — the rule still flags
    # module-level numpy RandomState use there.
    "unseeded-random": (),
}

#: Files whose classes the hot-path slots rule covers (engine core).
HOT_PATH_FILES: Tuple[str, ...] = (
    "repro/core/sm.py",
    "repro/core/warp.py",
    "repro/timing/*.py",
)

#: Files holding cache-key derivation code (float-key / repr rules).
CACHE_KEY_FILES: Tuple[str, ...] = (
    "repro/api/cache.py",
    "repro/api/spec.py",
)

#: Simulation-core files: wall-clock reads and unseeded randomness
#: here can silently break byte-identical reproduction.
SIMULATION_FILES: Tuple[str, ...] = (
    "repro/core/**",
    "repro/core/*.py",
    "repro/timing/*.py",
    "repro/functional/*.py",
    "repro/isa/*.py",
    "repro/workloads/*.py",
)
