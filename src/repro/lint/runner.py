"""File collection, rule execution and the ``repro lint`` entry point.

Exit codes: 0 — clean, 1 — violations found, 2 — the lint pass itself
failed (unreadable path, broken rule, ...).  Files that do not parse
are reported as ``syntax-error`` findings rather than aborting the run.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro.lint.framework import (
    LintError,
    LintReport,
    RuleContext,
    Violation,
    all_rules,
    is_suppressed,
    suppressed_lines,
)

_SKIP_DIRS = frozenset({"__pycache__", "build", "dist", ".git", ".pytest_cache"})


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.append(path)
            continue
        if not os.path.isdir(path):
            raise LintError("no such file or directory: %r" % path)
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.join(dirpath, name))
    return sorted(dict.fromkeys(out))


def run_lint(
    paths: Sequence[str],
    update_fingerprint: bool = False,
    rule_ids: Optional[FrozenSet[str]] = None,
) -> LintReport:
    """Run every registered rule over ``paths`` and build a report.

    ``rule_ids`` restricts the pass to a subset (``--rule``); project
    rules run once regardless of how many files matched.
    """
    files = collect_files(paths)
    rules = [
        r for r in all_rules() if rule_ids is None or r.id in rule_ids
    ]
    report = LintReport(files_checked=len(files))
    for path in files:
        norm = path.replace("\\", "/")
        try:
            with open(path, encoding="utf-8") as f:
                source = f.read()
        except OSError as exc:
            raise LintError("cannot read %s: %s" % (path, exc))
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.violations.append(
                Violation(
                    rule="syntax-error",
                    path=norm,
                    line=exc.lineno or 0,
                    col=(exc.offset or 1),
                    message="file does not parse: %s" % exc.msg,
                )
            )
            continue
        suppressions = suppressed_lines(source)
        for rule in rules:
            if not rule.applies_to(norm):
                continue
            for violation in rule.check_file(norm, tree, source):
                if is_suppressed(violation, suppressions):
                    report.suppressed += 1
                else:
                    report.violations.append(violation)
    ctx = RuleContext(
        paths=[p.replace("\\", "/") for p in files],
        update_fingerprint=update_fingerprint,
    )
    for rule in rules:
        for violation in rule.check_project(ctx):
            if is_suppressed(violation, {}):
                report.suppressed += 1
            else:
                report.violations.append(violation)
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report


def default_paths() -> List[str]:
    """Lint the package this module was imported from."""
    return [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]


def list_rules() -> str:
    lines = []
    for rule in sorted(all_rules(), key=lambda r: (r.category, r.id)):
        lines.append("%-24s [%s]" % (rule.id, rule.category))
        lines.append("    %s" % rule.description)
        if rule.hint:
            lines.append("    fix: %s" % rule.hint)
    return "\n".join(lines)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared between the standalone entry point and ``repro lint``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    parser.add_argument(
        "--update-fingerprint",
        action="store_true",
        help="regenerate the committed config-schema fingerprint "
        "(commit the result together with a CACHE_VERSION bump)",
    )


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(list_rules())
        return 0
    paths = args.paths or default_paths()
    rule_ids = frozenset(args.rule) if args.rule else None
    if rule_ids is not None:
        known = {r.id for r in all_rules()}
        unknown = sorted(rule_ids - known)
        if unknown:
            raise LintError(
                "unknown rule id(s) %s; see --list-rules"
                % ", ".join(repr(u) for u in unknown)
            )
    report = run_lint(
        paths,
        update_fingerprint=args.update_fingerprint,
        rule_ids=rule_ids,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.format())
        if args.update_fingerprint:
            print("config fingerprint updated")
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism & invariant static analysis for the "
        "repro simulator",
    )
    add_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_from_args(args)
    except LintError as exc:
        print("lint error: %s" % exc, file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (`repro-lint --list-rules | head`); not
        # an error, but Python would print a traceback at shutdown
        # unless the fd is parked on devnull first.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
