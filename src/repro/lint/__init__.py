"""repro.lint — determinism & invariant static analysis (``repro lint``).

An AST-based, registry-driven lint pass over the reproduction's own
source tree.  The golden byte-identical matrix, content-addressed cache
keys and the perf gates all rest on invariants that are invisible to
ordinary tests until they fail; the rules here promote them to
diff-time errors:

* **determinism** — no unseeded randomness, no wall-clock reads in
  simulation code, no iteration over sets, no ``id()``-keyed dicts,
  no float dict keys in cache-key code;
* **cache-key** — every config dataclass field flows into key
  derivation, no ``repr``-based serialisation fallbacks, and a
  committed structural fingerprint of the config schema that must be
  regenerated (``repro lint --update-fingerprint``) together with a
  ``CACHE_VERSION`` bump;
* **hot-path** — ``__slots__`` on engine-core classes, no attribute
  creation outside ``__init__`` on slotted classes, no ``np.errstate``
  or allocation-heavy numpy calls inside compiled-plan closures;
* **registry** — observer event names come from the closed vocabulary
  (:mod:`repro.core.policy.events`), service message types and fault
  kinds come from theirs, and registries are only written through the
  :class:`~repro.core.policy.Registry` API;
* **robustness** — service retry loops are bounded (no ``while True``
  with an exception-handler ``continue``) and no handler is a bare
  ``except:`` that would swallow an injected
  :class:`~repro.service.faults.DaemonCrash`.

Suppress a finding with an inline ``# repro-lint: disable=<rule-id>``
comment on (or immediately above) the offending line, or a path glob in
:data:`repro.lint.config.PATH_SUPPRESSIONS`.
"""

from __future__ import annotations

from repro.lint.framework import (
    LintError,
    LintReport,
    RULES,
    Rule,
    RuleContext,
    Violation,
    all_rules,
)
from repro.lint.runner import collect_files, main, run_lint

# Importing the rule modules registers every built-in rule.
from repro.lint import rules_determinism  # noqa: F401  (registration)
from repro.lint import rules_cachekey  # noqa: F401  (registration)
from repro.lint import rules_hotpath  # noqa: F401  (registration)
from repro.lint import rules_registry  # noqa: F401  (registration)
from repro.lint import rules_service  # noqa: F401  (registration)

__all__ = [
    "LintError",
    "LintReport",
    "RULES",
    "Rule",
    "RuleContext",
    "Violation",
    "all_rules",
    "collect_files",
    "main",
    "run_lint",
]
