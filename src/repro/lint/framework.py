"""Core of the lint pass: rules, violations, suppression.

A :class:`Rule` inspects one parsed file (:meth:`Rule.check_file`)
and/or the whole project once (:meth:`Rule.check_project`) and yields
:class:`Violation` records.  Rules register themselves in :data:`RULES`
— the same write-once :class:`~repro.core.policy.registry.Registry`
machinery the simulator's policies use — so third-party checks plug in
without touching the runner.

Suppression is two-level and always per rule:

* inline — ``# repro-lint: disable=<id>[,<id>...]`` (or ``disable=all``)
  on the flagged line or the line directly above it;
* path — glob patterns in :data:`repro.lint.config.PATH_SUPPRESSIONS`.

Each rule carries a one-line fix-it ``hint`` shown with every finding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import asdict, dataclass, field
from fnmatch import fnmatch
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.policy.registry import Registry

#: ``# repro-lint: disable=slots,wall-clock`` (whitespace-tolerant).
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")


class LintError(Exception):
    """The lint pass itself failed (bad path, unparseable config...)."""


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, what, and how to fix it."""

    rule: str
    path: str  #: path as given to the runner (repo-relative in CI)
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self) -> str:
        text = "%s:%d:%d: [%s] %s" % (
            self.path,
            self.line,
            self.col,
            self.rule,
            self.message,
        )
        if self.hint:
            text += "\n    hint: %s" % self.hint
        return text

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class RuleContext:
    """Project-wide facts shared by every rule invocation."""

    #: Paths the runner is checking (as given, normalised separators).
    paths: List[str] = field(default_factory=list)
    #: ``--update-fingerprint`` reruns write the fingerprint instead of
    #: comparing it (rules other than the fingerprint rule ignore this).
    update_fingerprint: bool = False


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`id` (kebab-case slug, the suppression key),
    :attr:`category`, :attr:`description` and :attr:`hint`, and
    override :meth:`check_file` and/or :meth:`check_project`.  File
    scope is declared with :attr:`include`/:attr:`exclude` glob
    patterns matched against ``/``-normalised paths.
    """

    id: str = ""
    category: str = ""
    description: str = ""
    #: Default fix-it hint attached to findings (rules may override
    #: per-violation via :meth:`violation`).
    hint: str = ""
    #: Glob patterns selecting the files this rule sees (None = all).
    include: Optional[Tuple[str, ...]] = None
    #: Glob patterns removing files from the rule's scope.
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        norm = path.replace("\\", "/")
        if self.include is not None and not any(
            _match(norm, pat) for pat in self.include
        ):
            return False
        return not any(_match(norm, pat) for pat in self.exclude)

    # -- hooks ----------------------------------------------------------

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        """Yield findings for one parsed file."""
        return iter(())

    def check_project(self, ctx: RuleContext) -> Iterator[Violation]:
        """Yield findings computed once per run (schema checks...)."""
        return iter(())

    # -- helpers --------------------------------------------------------

    def violation(
        self,
        path: str,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Violation:
        return Violation(
            rule=self.id,
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", -1) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
        )


def _match(path: str, pattern: str) -> bool:
    """Glob match on the full path *or* any suffix of it.

    ``src/repro/core/sm.py`` matches both ``src/repro/core/*.py`` and
    ``repro/core/*.py`` so rules behave identically whether the runner
    was handed ``src`` or an installed package directory.
    """
    if fnmatch(path, pattern):
        return True
    parts = path.split("/")
    return any(
        fnmatch("/".join(parts[i:]), pattern) for i in range(1, len(parts))
    )


#: The rule registry: id -> Rule instance.
RULES: Registry = Registry("lint rule")


def register_rule(rule: Rule) -> Rule:
    """Register a rule instance under its :attr:`Rule.id`."""
    if not rule.id:
        raise LintError("rule %r has no id" % type(rule).__name__)
    RULES.register(rule.id, rule)
    return rule


def all_rules() -> List[Rule]:
    return [rule for _, rule in RULES.items()]


# ----------------------------------------------------------------------
# Suppression
# ----------------------------------------------------------------------


def suppressed_lines(source: str) -> Dict[int, frozenset]:
    """Map line number -> rule ids disabled on that line.

    A ``# repro-lint: disable=...`` comment covers its own line and the
    line below it, so a suppression can sit above a long statement.
    ``disable=all`` covers every rule.
    """
    out: Dict[int, frozenset] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        ids = frozenset(
            token.strip() for token in m.group(1).split(",") if token.strip()
        )
        for covered in (i, i + 1):
            out[covered] = out.get(covered, frozenset()) | ids
    return out


def path_suppressed(rule_id: str, path: str) -> bool:
    from repro.lint.config import PATH_SUPPRESSIONS

    norm = path.replace("\\", "/")
    for pattern in PATH_SUPPRESSIONS.get(rule_id, ()):
        if _match(norm, pattern):
            return True
    return False


def is_suppressed(
    violation: Violation, line_suppressions: Dict[int, frozenset]
) -> bool:
    ids = line_suppressions.get(violation.line)
    if ids and ("all" in ids or violation.rule in ids):
        return True
    return path_suppressed(violation.rule, violation.path)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for v in self.violations:
            counts[v.rule] = counts.get(v.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "counts": self.counts_by_rule(),
            "rules": {
                rule.id: {
                    "category": rule.category,
                    "description": rule.description,
                }
                for rule in all_rules()
            },
            "violations": [v.to_dict() for v in self.violations],
        }

    def format(self) -> str:
        lines = [v.format() for v in self.violations]
        counts = self.counts_by_rule()
        if counts:
            lines.append("")
            for rule_id in sorted(counts):
                lines.append("%-24s %d" % (rule_id, counts[rule_id]))
        lines.append(
            "%d file%s checked: %d violation%s (%d suppressed)"
            % (
                self.files_checked,
                "" if self.files_checked == 1 else "s",
                len(self.violations),
                "" if len(self.violations) == 1 else "s",
                self.suppressed,
            )
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Shared AST utilities used by several rule modules
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    return dotted_name(node.func)


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def string_value(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def enclosing_functions(
    tree: ast.AST,
) -> Dict[ast.AST, Tuple[ast.AST, ...]]:
    """Map every node to the stack of function defs enclosing it."""
    out: Dict[ast.AST, Tuple[ast.AST, ...]] = {}

    def walk(node: ast.AST, stack: Tuple[ast.AST, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            out[child] = stack
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                walk(child, stack + (child,))
            else:
                walk(child, stack)

    walk(tree, ())
    return out


def class_slots(cls: ast.ClassDef) -> Optional[Sequence[str]]:
    """Names in a class's ``__slots__`` literal, or None when absent.

    Only direct tuple/list-of-strings assignments are understood —
    anything fancier returns an empty sequence (present but opaque).
    """
    for stmt in cls.body:
        targets: Iterable[ast.AST] = ()
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    names = []
                    for elt in value.elts:
                        text = string_value(elt)
                        if text is not None:
                            names.append(text)
                    return names
                return []
    return None


def is_dataclass_decorated(cls: ast.ClassDef) -> Tuple[bool, bool]:
    """(is a dataclass, declared with slots=True)."""
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            slots = False
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                        slots = bool(kw.value.value)
            return True, slots
    return False, False
