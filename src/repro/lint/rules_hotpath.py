"""Hot-path hygiene rules for the engine core.

The event-heap engine issues millions of instructions per run; the
rules here keep its per-cycle objects slotted (no per-instance
``__dict__``), its compiled-plan closures allocation-light, and
slotted classes honest about their attribute sets.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.lint.config import HOT_PATH_FILES
from repro.lint.framework import (
    Rule,
    Violation,
    call_name,
    class_slots,
    dotted_name,
    enclosing_functions,
    is_dataclass_decorated,
    register_rule,
)

#: Base classes whose subclasses are exempt from the slots requirement
#: (exceptions carry tracebacks, not per-cycle state; the typing/enum
#: metaclasses manage their own layout).
_EXEMPT_BASES = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "RuntimeError",
        "TypeError",
        "KeyError",
        "NamedTuple",
        "Enum",
        "IntEnum",
        "IntFlag",
        "Flag",
        "Protocol",
        "TypedDict",
        "ABC",
    }
)

#: numpy constructors that allocate a fresh array every call.
_NP_ALLOCATORS = frozenset(
    {"zeros", "ones", "empty", "full", "arange", "eye", "linspace", "tile"}
)


def _base_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for base in cls.bases:
        name = dotted_name(base)
        if name is not None:
            names.append(name.split(".")[-1])
    return names


def _is_exempt(cls: ast.ClassDef) -> bool:
    for name in _base_names(cls):
        if name in _EXEMPT_BASES or name.endswith("Error") or name.endswith(
            "Exception"
        ):
            return True
    return False


class HotPathSlotsRule(Rule):
    """Engine-core classes must declare ``__slots__``."""

    id = "hot-path-slots"
    category = "hot-path"
    description = (
        "classes in the engine core (core/sm.py, core/warp.py, "
        "timing/*) are instantiated per warp/split/event; without "
        "__slots__ each instance carries a dict and attribute access "
        "takes the slow path"
    )
    hint = (
        "add __slots__ = (...) naming every instance attribute, or "
        "@dataclass(slots=True); subclasses of slotted bases need "
        "__slots__ = ()"
    )
    include = HOT_PATH_FILES

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_exempt(node):
                continue
            is_dc, dc_slots = is_dataclass_decorated(node)
            if is_dc:
                if not dc_slots:
                    yield self.violation(
                        path,
                        node,
                        "dataclass %r without slots=True in a hot-path "
                        "file" % node.name,
                        hint="declare it @dataclass(slots=True)",
                    )
                continue
            if class_slots(node) is None:
                yield self.violation(
                    path,
                    node,
                    "class %r has no __slots__ in a hot-path file"
                    % node.name,
                )


class ErrstateInPlanRule(Rule):
    """No ``np.errstate`` inside compiled-plan closures."""

    id = "errstate-in-plan"
    category = "hot-path"
    description = (
        "np.errstate entered inside a compiled plan costs more than "
        "the warp-sized compute it guards; the SM run loops enter it "
        "once around the whole simulation"
    )
    hint = "hoist the errstate context to the run loop in core/sm.py"
    include = ("repro/functional/compiled.py",)

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        enclosing = enclosing_functions(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in ("np.errstate", "numpy.errstate") and len(
                enclosing.get(node, ())
            ) >= 2:
                yield self.violation(
                    path, node, "np.errstate entered inside a plan closure"
                )


class AllocInPlanRule(Rule):
    """No allocation-heavy numpy constructors inside plan closures."""

    id = "alloc-in-plan"
    category = "hot-path"
    description = (
        "np.zeros/ones/empty/... inside a compiled-plan closure "
        "allocates on every instruction issue; compile-time code (the "
        "enclosing specialiser) should allocate once and close over it"
    )
    hint = (
        "allocate the array in the compiling function and capture it "
        "in the closure (mark it read-only if shared)"
    )
    include = ("repro/functional/compiled.py",)

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        enclosing = enclosing_functions(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[0] in ("np", "numpy")
                and parts[1] in _NP_ALLOCATORS
                and len(enclosing.get(node, ())) >= 2
            ):
                yield self.violation(
                    path,
                    node,
                    "`%s` allocates inside a plan closure (runs per "
                    "instruction issue)" % name,
                )


class SlottedAttrCreationRule(Rule):
    """No attribute creation outside ``__slots__`` on slotted classes.

    Same-file analysis: for every class with a literal ``__slots__``,
    any ``self.<name> = ...`` where ``<name>`` is neither a slot (of
    the class or a same-file base) nor a class-level attribute would
    raise ``AttributeError`` at runtime — flag it at diff time.
    """

    id = "slotted-attr-creation"
    category = "hot-path"
    description = (
        "assigning an attribute that is not in __slots__ (or a base's) "
        "raises AttributeError at runtime; slots declarations and "
        "attribute writes must stay in sync"
    )
    hint = "add the attribute name to __slots__"
    include = HOT_PATH_FILES + ("repro/functional/*.py", "repro/core/*.py")

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }

        def allowed_names(cls: ast.ClassDef, seen: Set[str]) -> Optional[Set[str]]:
            """Slot + class-attr names, or None when layout is opaque."""
            if cls.name in seen:
                return set()
            seen.add(cls.name)
            slots = class_slots(cls)
            if slots is None or (slots == [] and not _slots_literal(cls)):
                return None
            names: Set[str] = set(slots)
            for stmt in cls.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    names.add(stmt.target.id)
            for base in cls.bases:
                base_name = dotted_name(base)
                short = base_name.split(".")[-1] if base_name else ""
                if short in classes:
                    inherited = allowed_names(classes[short], seen)
                    if inherited is None:
                        return None  # opaque base: give up on the chain
                    names |= inherited
                elif short not in ("object",):
                    return None  # unknown base may carry __dict__/slots
            return names

        def _slots_literal(cls: ast.ClassDef) -> bool:
            return class_slots(cls) is not None

        for cls in classes.values():
            is_dc, dc_slots = is_dataclass_decorated(cls)
            if is_dc:
                continue  # field set is the dataclass's business
            names = allowed_names(cls, set())
            if names is None:
                continue
            for node in ast.walk(cls):
                if isinstance(node, ast.ClassDef) and node is not cls:
                    continue
                targets: Sequence[ast.AST] = ()
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = (node.target,)
                elif isinstance(node, ast.AugAssign):
                    targets = ()  # augmented writes need the attr to exist
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr not in names
                    ):
                        yield self.violation(
                            path,
                            target,
                            "self.%s assigned on slotted class %r but "
                            "missing from its __slots__"
                            % (target.attr, cls.name),
                        )


register_rule(HotPathSlotsRule())
register_rule(ErrstateInPlanRule())
register_rule(AllocInPlanRule())
register_rule(SlottedAttrCreationRule())
