"""Registry and closed-vocabulary discipline rules.

The policy API's extension points are write-once registries and a
closed observer-event vocabulary (:mod:`repro.core.policy.events`);
the sweep service speaks a closed message vocabulary the same way
(:mod:`repro.service.protocol`).  Bypassing either — poking
``._entries`` directly, or comparing against a bare name string —
reintroduces exactly the silent-shadowing and typo classes the APIs
were built to kill.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Tuple

from repro.core.policy.events import VOCABULARY
from repro.lint.framework import (
    Rule,
    Violation,
    call_name,
    dotted_name,
    register_rule,
)
from repro.service.faults import FAULT_KINDS, SITES
from repro.service.protocol import VOCABULARY as PROTOCOL_VOCABULARY

#: Registry singletons writes must go through the Registry API.
_REGISTRY_NAMES = frozenset(
    {"SCHEDULERS", "DIVERGENCE", "POLICIES", "OBSERVERS", "RULES"}
)

#: Call sites where an event/origin/level name argument is expected.
_VOCAB_CALLEES = frozenset(
    {"record_issue", "MemEvent", "IssueRecord", "_record"}
)

#: Files that emit or dispatch on vocabulary names.
_VOCAB_FILES: Tuple[str, ...] = (
    "repro/core/sm.py",
    "repro/core/gpu.py",
    "repro/core/schedulers.py",
    "repro/core/policy/observers.py",
    "repro/timing/stats.py",
    "repro/analytics/*.py",
)

#: Call sites where a protocol message type / error code is expected.
_PROTOCOL_CALLEES = frozenset({"envelope", "ProtocolError", "_resolve_locked"})

#: Call sites where a fault kind or injection site is expected, and the
#: closed set of names they may be given.
_FAULT_CALLEES = frozenset({"fire", "crash", "FaultSpec"})
FAULT_VOCABULARY: FrozenSet[str] = frozenset(FAULT_KINDS) | frozenset(SITES)

#: Files that emit or dispatch on protocol vocabulary names (the
#: protocol module itself defines the constants and stays out).
_PROTOCOL_FILES: Tuple[str, ...] = (
    "repro/service/daemon.py",
    "repro/service/journal.py",
    "repro/service/remote.py",
)


class ClosedVocabularyRule(Rule):
    """Shared machinery: names from a closed set must be the constants.

    Subclasses set ``vocabulary`` (the closed set), ``callees`` (call
    sites whose arguments carry vocabulary names), ``module`` (where
    the constants live) and the usual rule metadata.  Flagged sites
    are comparisons against a bare vocabulary literal and vocabulary
    literals passed to the known callees — a bare string compares
    clean, typos and all.
    """

    vocabulary: FrozenSet[str] = frozenset()
    callees: FrozenSet[str] = frozenset()
    module = ""

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Compare):
                for comparator in node.comparators:
                    yield from self._literal(path, comparator)
            elif isinstance(node, ast.Call):
                name = call_name(node)
                short = name.split(".")[-1] if name else ""
                if short in self.callees:
                    for arg in node.args:
                        yield from self._literal(path, arg)
                    for kw in node.keywords:
                        yield from self._literal(path, kw.value)

    def _literal(self, path: str, node: ast.AST) -> Iterator[Violation]:
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in self.vocabulary
        ):
            yield self.violation(
                path,
                node,
                "bare vocabulary literal %r — use the constant from %s"
                % (node.value, self.module),
            )


class ObserverVocabularyRule(ClosedVocabularyRule):
    """Event/origin/level names come from the vocabulary module."""

    id = "observer-vocabulary"
    category = "registry"
    description = (
        "observer event kinds, issue origins and memory levels must be "
        "the constants from repro.core.policy.events — a bare string "
        "literal compares clean, typos and all"
    )
    hint = (
        "import the matching constant (ORIGIN_*, LEVEL_*, KIND_*) from "
        "repro.core.policy.events"
    )
    include = _VOCAB_FILES
    vocabulary = VOCABULARY
    callees = _VOCAB_CALLEES
    module = "repro.core.policy.events"


class ProtocolVocabularyRule(ClosedVocabularyRule):
    """Service message types / error codes come from the protocol module."""

    id = "protocol-vocabulary"
    category = "registry"
    description = (
        "sweep-service message types, error codes, cell sources and "
        "job states must be the MSG_*/ERR_*/SOURCE_*/STATUS_*/JOB_* "
        "constants from repro.service.protocol — a typo'd bare string "
        "is a silently dropped or misrouted message"
    )
    hint = (
        "import the matching constant (MSG_*, ERR_*, SOURCE_*, "
        "STATUS_*, JOB_*) from repro.service.protocol"
    )
    include = _PROTOCOL_FILES
    vocabulary = PROTOCOL_VOCABULARY
    callees = _PROTOCOL_CALLEES
    module = "repro.service.protocol"


class FaultVocabularyRule(ClosedVocabularyRule):
    """Fault kinds and injection sites come from the faults module."""

    id = "fault-vocabulary"
    category = "registry"
    description = (
        "fault-injection kinds and sites must be the FAULT_*/SITE_* "
        "constants from repro.service.faults — a typo'd bare string is "
        "a fault that silently never fires"
    )
    hint = (
        "import the matching constant (FAULT_*, SITE_*) from "
        "repro.service.faults"
    )
    include = ("repro/service/daemon.py", "repro/service/store.py")
    vocabulary = FAULT_VOCABULARY
    callees = _FAULT_CALLEES
    module = "repro.service.faults"


class RegistryDisciplineRule(Rule):
    """Registries are only written through the Registry API."""

    id = "registry-discipline"
    category = "registry"
    description = (
        "registry internals (._entries) and subscript writes on "
        "registry singletons bypass duplicate-name detection; two "
        "plugins could silently shadow each other"
    )
    hint = (
        "use REGISTRY.register(name, obj) / .unregister(name); tests "
        "wanting replacement pass replace=True"
    )
    exclude = ("repro/core/policy/registry.py",)

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and node.attr == "_entries":
                yield self.violation(
                    path,
                    node,
                    "direct access to Registry._entries outside the "
                    "registry module",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    base = dotted_name(target.value)
                    short = base.split(".")[-1] if base else ""
                    if short in _REGISTRY_NAMES:
                        yield self.violation(
                            path,
                            target,
                            "subscript write on registry %r bypasses "
                            "Registry.register()" % short,
                        )


register_rule(ObserverVocabularyRule())
register_rule(ProtocolVocabularyRule())
register_rule(FaultVocabularyRule())
register_rule(RegistryDisciplineRule())
