"""Structural fingerprint of the cache-key config schema.

The disk cache keys on every field of :class:`~repro.timing.config.SMConfig`
and :class:`~repro.timing.config.GPUConfig`, and policies enter via
:class:`~repro.core.policy.spec.PolicySpec` presets.  Adding, removing,
retyping or re-defaulting a field changes what a cache key *means*, so
the schema's structural hash is committed to
``src/repro/lint/data/config_fingerprint.json`` together with the
``CACHE_VERSION`` it was taken under.  The ``config-fingerprint`` lint
rule recomputes the hash on every run:

* schema unchanged — fine;
* schema changed, same ``CACHE_VERSION`` — **error**: stale disk
  entries would be reloaded under the new semantics.  Bump
  ``CACHE_VERSION`` in :mod:`repro.api.cache` and regenerate;
* regeneration is ``repro lint --update-fingerprint`` (never edit the
  JSON by hand).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, List, Optional

#: Committed fingerprint location (shipped via package_data).
DATA_FILE = os.path.join(os.path.dirname(__file__), "data", "config_fingerprint.json")


def _field_entry(f: "dataclasses.Field[Any]") -> Dict[str, Any]:
    if f.default is not dataclasses.MISSING:
        default = repr(f.default)
    elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        default = "<factory:%s>" % getattr(
            f.default_factory, "__name__", "anonymous"  # type: ignore[misc]
        )
    else:
        default = "<required>"
    type_name = f.type if isinstance(f.type, str) else getattr(
        f.type, "__name__", repr(f.type)
    )
    return {"name": f.name, "type": type_name, "default": default}


def _class_entry(cls: type) -> List[Dict[str, Any]]:
    return [_field_entry(f) for f in dataclasses.fields(cls)]


def schema() -> Dict[str, Any]:
    """The live config schema plus the CACHE_VERSION it keys under."""
    from repro.api.cache import CACHE_VERSION
    from repro.core.policy.spec import PolicySpec
    from repro.timing.config import GPUConfig, SMConfig

    classes = {
        "SMConfig": _class_entry(SMConfig),
        "GPUConfig": _class_entry(GPUConfig),
        "PolicySpec": _class_entry(PolicySpec),
    }
    return {"cache_version": CACHE_VERSION, "classes": classes}


def digest(payload: Optional[Dict[str, Any]] = None) -> str:
    data = schema() if payload is None else payload
    blob = json.dumps(data["classes"], sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def load_committed(path: str = DATA_FILE) -> Optional[Dict[str, Any]]:
    try:
        with open(path) as f:
            return json.load(f)
    except OSError:
        return None


def write_committed(path: str = DATA_FILE) -> Dict[str, Any]:
    """Regenerate the committed fingerprint from the live schema."""
    payload = schema()
    payload["digest"] = digest(payload)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    return payload
