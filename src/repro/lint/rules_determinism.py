"""Determinism rules: the byte-identical golden matrix depends on these.

Everything here guards one property: two runs of the same (workload,
size, config) cell produce identical bits, on any machine, any number
of processes, any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.config import CACHE_KEY_FILES, SIMULATION_FILES
from repro.lint.framework import (
    Rule,
    Violation,
    call_name,
    dotted_name,
    register_rule,
)

#: Any file under the package itself (src layout or installed).
REPRO_ALL: Tuple[str, ...] = (
    "repro/*.py",
    "repro/*/*.py",
    "repro/*/*/*.py",
)

#: numpy legacy global-RandomState entry points (process-wide hidden
#: state; draws depend on import order and thread timing).
_NP_GLOBAL_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "standard_normal",
        "uniform",
        "normal",
        "bytes",
        "get_state",
        "set_state",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }
)


class UnseededRandomRule(Rule):
    """No hidden-global randomness in simulation code."""

    id = "unseeded-random"
    category = "determinism"
    description = (
        "simulation code must not use the stdlib `random` module or "
        "numpy's global RandomState; draws must come from an explicitly "
        "seeded np.random.Generator"
    )
    hint = (
        "use repro.workloads.common.rng(name, size) or "
        "np.random.default_rng(stable_seed)"
    )
    include = SIMULATION_FILES

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.violation(
                            path,
                            node,
                            "stdlib `random` imported — its module-level "
                            "state is shared and unseeded",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        path,
                        node,
                        "stdlib `random` imported — its module-level "
                        "state is shared and unseeded",
                    )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                parts = name.split(".")
                if (
                    len(parts) >= 2
                    and parts[-2] == "random"
                    and parts[-1] in _NP_GLOBAL_RANDOM
                    and parts[0] in ("np", "numpy")
                ):
                    yield self.violation(
                        path,
                        node,
                        "numpy global RandomState call `%s` — process-wide "
                        "hidden state breaks reproducibility" % name,
                    )
                elif parts[-1] == "default_rng" and not (
                    node.args or node.keywords
                ):
                    yield self.violation(
                        path,
                        node,
                        "`default_rng()` without a seed draws OS entropy",
                        hint="pass a stable seed: default_rng(seed)",
                    )


class WallClockRule(Rule):
    """No wall-clock reads inside the simulation core."""

    id = "wall-clock"
    category = "determinism"
    description = (
        "simulation code must not read wall-clock time; simulated time "
        "is the only clock"
    )
    hint = (
        "thread the simulation cycle through instead; timing harnesses "
        "belong in repro.bench / benchmarks/"
    )
    include = SIMULATION_FILES

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _WALL_CLOCK:
                yield self.violation(
                    path, node, "wall-clock read `%s()` in simulation code" % name
                )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    return False


class SetIterationRule(Rule):
    """No iteration over sets: their order is address/hash dependent."""

    id = "set-iteration"
    category = "determinism"
    description = (
        "iterating a set visits elements in hash/address order, which "
        "varies across processes (PYTHONHASHSEED) and runs"
    )
    hint = "wrap the iterable in sorted(...) or keep an ordered list/dict"
    include = REPRO_ALL

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        for scope in ast.walk(tree):
            if not isinstance(
                scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            yield from self._check_scope(path, scope)

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk ``scope`` without descending into nested functions."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, path: str, scope: ast.AST) -> Iterator[Violation]:
        # Names bound to set expressions in this scope — conservative:
        # a name rebound from anything non-set drops out.
        set_names: Set[str] = set()
        unknown: Set[str] = set()
        for node in self._scope_nodes(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if _is_set_expr(node.value):
                        set_names.add(target.id)
                    else:
                        unknown.add(target.id)
        set_names -= unknown

        def flagged_iter(node: ast.AST) -> Optional[ast.AST]:
            if _is_set_expr(node):
                return node
            if isinstance(node, ast.Name) and node.id in set_names:
                return node
            return None

        for node in self._scope_nodes(scope):
            target: Optional[ast.AST] = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                target = flagged_iter(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    hit = flagged_iter(gen.iter)
                    if hit is not None:
                        target = hit
                        break
            if target is not None:
                yield self.violation(
                    path,
                    node,
                    "iteration over a set — element order is "
                    "nondeterministic across processes",
                )


class IdKeyedRule(Rule):
    """No ``id()`` values in state-affecting code."""

    id = "id-keyed-dict"
    category = "determinism"
    description = (
        "id() returns an object address: keys, orderings or branches "
        "derived from it differ between runs"
    )
    hint = (
        "key on stable identity (name, index, interned value); if the "
        "use is provably run-local, suppress with a justifying comment"
    )
    include = SIMULATION_FILES + ("repro/api/*.py",)

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                yield self.violation(
                    path,
                    node,
                    "id() call — object addresses vary run to run",
                )


class FloatDictKeyRule(Rule):
    """No float dict keys in cache-key derivation code."""

    id = "float-dict-key"
    category = "determinism"
    description = (
        "float dict keys in cache-key code invite -0.0/0.0 and NaN "
        "aliasing and repr drift across platforms"
    )
    hint = "key on the formatted/quantised value (string or int) instead"
    include = CACHE_KEY_FILES

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, float
                    ):
                        yield self.violation(
                            path, key, "float literal used as a dict key"
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, float)
                    ):
                        yield self.violation(
                            path,
                            target,
                            "float literal used as a dict subscript key",
                        )


register_rule(UnseededRandomRule())
register_rule(WallClockRule())
register_rule(SetIterationRule())
register_rule(IdKeyedRule())
register_rule(FloatDictKeyRule())
