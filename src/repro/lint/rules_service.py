"""Service-robustness rules.

The sweep service is the one part of the tree that talks to sockets,
other processes and a shared on-disk store — the places where "retry
until it works" quietly becomes "hang forever" and a broad ``except``
quietly swallows an injected :class:`~repro.service.faults.DaemonCrash`
or a ``KeyboardInterrupt``.  The fault-injection harness only proves
anything if every retry loop is bounded, so the discipline is promoted
to a lint rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.framework import Rule, Violation, register_rule

#: Files under service discipline (the whole service package).
_SERVICE_FILES = ("repro/service/*.py",)


def _is_while_true(node: ast.While) -> bool:
    return isinstance(node.test, ast.Constant) and node.test.value is True


def _own_statements(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements belonging to a loop body, not to nested loops.

    A ``continue`` inside a nested ``for``/``while`` retries *that*
    loop, and a nested ``def``/``lambda`` is a different control-flow
    scope entirely — neither says anything about the outer loop.
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.For, ast.While, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class ServiceRetryBoundedRule(Rule):
    """Every retry loop is bounded and no handler is a bare ``except:``."""

    id = "service-retry-bounded"
    category = "robustness"
    description = (
        "service code must not retry forever or catch everything: a "
        "`while True` loop that `continue`s out of an exception "
        "handler never gives up against a dead peer, and a bare "
        "`except:` swallows SystemExit, KeyboardInterrupt and injected "
        "DaemonCrash faults"
    )
    hint = (
        "bound retries with `for attempt in range(attempts)` (see "
        "RemoteClient._request) and catch concrete exception types; a "
        "deliberately unbounded loop (e.g. a heartbeat) takes an "
        "inline `# repro-lint: disable=service-retry-bounded`"
    )
    include = _SERVICE_FILES

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    path,
                    node,
                    "bare `except:` in service code — also catches "
                    "SystemExit/KeyboardInterrupt and injected "
                    "DaemonCrash faults",
                )
            elif isinstance(node, ast.While) and _is_while_true(node):
                yield from self._unbounded_retry(path, node)

    def _unbounded_retry(
        self, path: str, loop: ast.While
    ) -> Iterator[Violation]:
        for stmt in _own_statements(loop.body):
            if not isinstance(stmt, ast.Try):
                continue
            for handler in stmt.handlers:
                if any(
                    isinstance(inner, ast.Continue)
                    for inner in _own_statements(handler.body)
                ):
                    yield self.violation(
                        path,
                        loop,
                        "`while True` retry loop: the exception "
                        "handler `continue`s with no attempt bound",
                    )
                    return


register_rule(ServiceRetryBoundedRule())
