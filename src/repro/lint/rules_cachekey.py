"""Cache-key integrity rules.

The content-addressed result cache is only sound if (a) *every* config
field flows into the key, (b) serialisation never falls back to
``repr`` (which can embed memory addresses), and (c) structural schema
changes are acknowledged with a ``CACHE_VERSION`` bump.
"""

from __future__ import annotations

import ast
import dataclasses
import json
from typing import Any, Iterator

from repro.lint.config import CACHE_KEY_FILES
from repro.lint.framework import (
    Rule,
    RuleContext,
    Violation,
    call_name,
    register_rule,
)


class ReprKeyRule(Rule):
    """No ``repr``/``str`` serialisation fallbacks in key derivation."""

    id = "repr-key"
    category = "cache-key"
    description = (
        "json.dumps(default=repr/str) in cache-key code stringifies "
        "unknown values; repr can embed object addresses, so two runs "
        "of identical configs may derive different keys"
    )
    hint = (
        "drop the default= fallback and let json.dumps raise — every "
        "config field must be natively JSON-serialisable"
    )
    include = CACHE_KEY_FILES

    def check_file(
        self, path: str, tree: ast.AST, source: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name not in ("json.dumps", "dumps"):
                continue
            for kw in node.keywords:
                if kw.arg != "default":
                    continue
                fallback = kw.value
                if isinstance(fallback, ast.Name) and fallback.id in (
                    "repr",
                    "str",
                ):
                    yield self.violation(
                        path,
                        fallback,
                        "json.dumps(default=%s) in cache-key derivation"
                        % fallback.id,
                    )


class CacheKeyFieldsRule(Rule):
    """Every config field must perturb the cache key (runtime check)."""

    id = "cache-key-fields"
    category = "cache-key"
    description = (
        "mutating any single SMConfig/GPUConfig field must change "
        "config_key() and config_hash(); a field that does not flow "
        "into the key lets distinct configs collide in the cache"
    )
    hint = (
        "derive keys from dataclasses.asdict(config) so new fields are "
        "picked up automatically"
    )

    def check_project(self, ctx: RuleContext) -> Iterator[Violation]:
        from repro.api.cache import config_hash, config_key
        from repro.timing.config import GPUConfig, SMConfig

        for cls in (SMConfig, GPUConfig):
            base = cls()
            base_key = config_key(base)
            base_hash = config_hash(base)
            for f in dataclasses.fields(cls):
                value = getattr(base, f.name)
                mutated = _mutate(value)
                if mutated is _SKIP:
                    continue
                try:
                    variant = dataclasses.replace(base, **{f.name: mutated})
                except Exception:
                    # Validated/enumerated field: the probe value is
                    # rejected at construction.  Fall back to checking
                    # the field is structurally present in the key.
                    blob = json.dumps(
                        dataclasses.asdict(base), sort_keys=True
                    )
                    if '"%s"' % f.name not in blob:
                        yield Violation(
                            rule=self.id,
                            path="repro/api/cache.py",
                            line=0,
                            col=0,
                            message=(
                                "%s.%s is absent from the cache-key "
                                "payload" % (cls.__name__, f.name)
                            ),
                            hint=self.hint,
                        )
                    continue
                if (
                    config_key(variant) == base_key
                    or config_hash(variant) == base_hash
                ):
                    yield Violation(
                        rule=self.id,
                        path="repro/api/cache.py",
                        line=0,
                        col=0,
                        message=(
                            "%s.%s does not flow into the cache key: "
                            "mutating it leaves config_key/config_hash "
                            "unchanged" % (cls.__name__, f.name)
                        ),
                        hint=self.hint,
                    )


_SKIP = object()


def _mutate(value: Any) -> Any:
    """A value different from ``value`` with the same rough shape."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, str):
        return value + "_lintprobe"
    if value is None:
        return "lintprobe"
    if dataclasses.is_dataclass(value):
        for f in dataclasses.fields(value):
            inner = _mutate(getattr(value, f.name))
            if inner is _SKIP:
                continue
            try:
                return dataclasses.replace(value, **{f.name: inner})
            except Exception:
                continue  # validated field rejected the probe; try next
        return _SKIP
    if isinstance(value, (list, tuple)):
        return type(value)(list(value) + ["lintprobe"])
    return _SKIP


class ConfigFingerprintRule(Rule):
    """The committed config-schema fingerprint must match the code."""

    id = "config-fingerprint"
    category = "cache-key"
    description = (
        "the structural fingerprint of SMConfig/GPUConfig/PolicySpec "
        "is committed; schema drift without a CACHE_VERSION bump would "
        "reload stale disk cache entries under new semantics"
    )
    hint = (
        "bump CACHE_VERSION in repro/api/cache.py, then run "
        "`repro lint --update-fingerprint` and commit the result"
    )

    def check_project(self, ctx: RuleContext) -> Iterator[Violation]:
        from repro.lint import fingerprint

        if ctx.update_fingerprint:
            fingerprint.write_committed()
            return
        committed = fingerprint.load_committed()
        path = "repro/lint/data/config_fingerprint.json"
        if committed is None:
            yield Violation(
                rule=self.id,
                path=path,
                line=0,
                col=0,
                message=(
                    "no committed config fingerprint; run "
                    "`repro lint --update-fingerprint` and commit it"
                ),
                hint=self.hint,
            )
            return
        live = fingerprint.schema()
        live_digest = fingerprint.digest(live)
        if committed.get("digest") == live_digest and committed.get(
            "cache_version"
        ) == live["cache_version"]:
            return
        if committed.get("digest") != live_digest and committed.get(
            "cache_version"
        ) == live["cache_version"]:
            message = (
                "config schema changed but CACHE_VERSION is still %r — "
                "stale disk cache entries would be reloaded under the "
                "new field semantics" % live["cache_version"]
            )
        else:
            message = (
                "committed fingerprint is stale (taken under "
                "CACHE_VERSION=%r, code has %r); regenerate it"
                % (committed.get("cache_version"), live["cache_version"])
            )
        yield Violation(
            rule=self.id, path=path, line=0, col=0, message=message, hint=self.hint
        )


register_rule(ReprKeyRule())
register_rule(CacheKeyFieldsRule())
register_rule(ConfigFingerprintRule())
