"""Built-in policies: the paper's five modes plus three exploration
policies, and the divergence-model factories they reference.

Scheduler classes register themselves in
:data:`~repro.core.policy.SCHEDULERS` from
:mod:`repro.core.schedulers` (imported when the first machine is
built); this module only registers *data* (specs) and the lightweight
divergence factories, so importing the policy registry never drags the
pipeline in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.policy.registry import Registry
from repro.core.policy.spec import PolicySpec

if TYPE_CHECKING:  # import cycle: config resolves modes through us
    from repro.timing.config import SMConfig

from repro.timing.dwr import DWRModel
from repro.timing.frontier import FrontierModel
from repro.timing.hct import SBIModel
from repro.timing.stack import StackModel

#: Divergence-model registry: name -> factory(config, launch_mask, perm).
DIVERGENCE: Registry = Registry("divergence model")

#: Policy registry: mode name -> PolicySpec.
POLICIES: Registry = Registry("policy")


# ----------------------------------------------------------------------
# Divergence models
# ----------------------------------------------------------------------


@DIVERGENCE.register("stack")
def _stack(config: SMConfig, launch_mask: int, perm: Sequence[int]) -> StackModel:
    return StackModel(launch_mask, perm)


@DIVERGENCE.register("frontier")
def _frontier(config: SMConfig, launch_mask: int, perm: Sequence[int]) -> FrontierModel:
    return FrontierModel(launch_mask, perm)


@DIVERGENCE.register("sbi_heap")
def _sbi_heap(config: SMConfig, launch_mask: int, perm: Sequence[int]) -> SBIModel:
    return SBIModel(
        launch_mask,
        perm,
        cct_capacity=config.cct_capacity,
        insert_delay=config.cct_insert_delay,
    )


@DIVERGENCE.register("dwr")
def _dwr(config: SMConfig, launch_mask: int, perm: Sequence[int]) -> DWRModel:
    # Fixed 32-wide sub-warps: half of the paper's 64-wide warp, the
    # baseline machine's native width.
    return DWRModel(launch_mask, perm, subwarp_width=32)


# ----------------------------------------------------------------------
# The paper's five modes (Table 2 presets)
# ----------------------------------------------------------------------

_WIDE = dict(warp_count=16, warp_width=64)

POLICIES.register(
    "baseline",
    PolicySpec(
        name="baseline",
        scheduler="two_pool",
        divergence="stack",
        issue_width=2,
        two_pools=True,
        description="Fermi-like: 32x32 warps, two pools, IPDOM stack",
        preset=dict(
            warp_count=32,
            warp_width=32,
            scheduler_latency=1,
            delivery_latency=0,
            scoreboard_kind="warp",
            lane_shuffle="identity",
        ),
    ),
)

POLICIES.register(
    "warp64",
    PolicySpec(
        name="warp64",
        scheduler="single_issue",
        divergence="frontier",
        issue_width=1,
        description="thread-frontier 64-wide reference point (Figure 7)",
        preset=dict(
            scheduler_latency=1,
            delivery_latency=0,
            scoreboard_kind="warp",
            lane_shuffle="identity",
            **_WIDE,
        ),
    ),
)

POLICIES.register(
    "sbi",
    PolicySpec(
        name="sbi",
        scheduler="sbi_dual",
        divergence="sbi_heap",
        hot_capacity=2,
        uses_sbi=True,
        unit_bound_peak=True,
        description="Simultaneous Branch Interweaving: dual front-end "
        "co-issues CPC1/CPC2 of one warp",
        preset=dict(
            scheduler_latency=1,
            delivery_latency=1,
            scoreboard_kind="matrix",
            sbi_constraints=True,
            lane_shuffle="identity",
            **_WIDE,
        ),
    ),
)

_SWI_PRESET = dict(
    scheduler_latency=2,
    delivery_latency=1,
    scoreboard_kind="warp",
    lane_shuffle="xor_rev",
    swi_ways=None,
    **_WIDE,
)

POLICIES.register(
    "swi",
    PolicySpec(
        name="swi",
        scheduler="cascaded",
        divergence="frontier",
        uses_swi=True,
        unit_bound_peak=True,
        description="Simultaneous Warp Interweaving: cascaded scheduler "
        "fills free lanes from another warp (best-fit)",
        preset=dict(_SWI_PRESET),
    ),
)

POLICIES.register(
    "sbi_swi",
    PolicySpec(
        name="sbi_swi",
        scheduler="cascaded",
        divergence="sbi_heap",
        hot_capacity=2,
        uses_sbi=True,
        uses_swi=True,
        unit_bound_peak=True,
        description="combined SBI + SWI (the paper's headline machine)",
        preset=dict(
            scheduler_latency=2,
            delivery_latency=1,
            scoreboard_kind="matrix",
            sbi_constraints=True,
            lane_shuffle="xor_rev",
            swi_ways=None,
            **_WIDE,
        ),
    ),
)


# ----------------------------------------------------------------------
# Exploration policies (not in the paper)
# ----------------------------------------------------------------------

POLICIES.register(
    "swi_greedy",
    PolicySpec(
        name="swi_greedy",
        scheduler="cascaded_greedy",
        divergence="frontier",
        uses_swi=True,
        unit_bound_peak=True,
        description="SWI with a greedy-then-oldest secondary arbiter "
        "(max lane coverage, age tie-break, no randomness)",
        preset=dict(_SWI_PRESET),
    ),
)

POLICIES.register(
    "swi_rr",
    PolicySpec(
        name="swi_rr",
        scheduler="cascaded_rr",
        divergence="frontier",
        uses_swi=True,
        unit_bound_peak=True,
        description="SWI with a loose-round-robin primary warp arbiter "
        "(WaSP-style rotation instead of oldest-first)",
        preset=dict(_SWI_PRESET),
    ),
)

POLICIES.register(
    "dwr",
    PolicySpec(
        name="dwr",
        scheduler="cascaded",
        divergence="dwr",
        uses_swi=True,
        unit_bound_peak=True,
        description="dynamic warp resizing: divergent paths run as "
        "32-wide sub-warps, regrouped at reconvergence; free lanes "
        "filled SWI-style",
        preset=dict(_SWI_PRESET),
    ),
)
