"""Generic name -> object registries backing the policy API.

Every extension point of the simulator — scheduler policies,
divergence (reconvergence) models, cycle-level observers, and the
:class:`~repro.core.policy.spec.PolicySpec` bundles that tie them to a
configuration — is a :class:`Registry`.  Registration is explicit and
duplicate names are errors, so two plugins can never silently shadow
each other; lookups of unknown names fail with the full list of
registered names, mirroring the eager-validation style of
:class:`repro.api.SweepSpec`.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class PolicyLookupError(ValueError):
    """An unregistered name was looked up (message lists known names)."""


class DuplicateNameError(ValueError):
    """A name was registered twice without ``replace=True``."""


class Registry(Generic[T]):
    """An ordered, write-once mapping of names to policy objects."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self, name: str, obj: Optional[T] = None, *, replace: bool = False
    ):
        """Register ``obj`` under ``name``; usable as a decorator::

            @SCHEDULERS.register("my_arbiter")
            class MyArbiter(CascadedScheduler): ...

        Re-registering a name raises :class:`DuplicateNameError` unless
        ``replace=True`` (or the object is identical, which is a no-op
        so module reloads stay harmless).
        """
        if not name or not isinstance(name, str):
            raise ValueError("%s name must be a non-empty string" % self.kind)

        def _add(value: T) -> T:
            existing = self._entries.get(name)
            if existing is not None and not replace and existing is not value:
                raise DuplicateNameError(
                    "%s %r is already registered (to %r); pick another name "
                    "or pass replace=True" % (self.kind, name, existing)
                )
            self._entries[name] = value
            return value

        if obj is None:
            return _add
        return _add(obj)

    def unregister(self, name: str) -> None:
        """Remove ``name`` (missing names are ignored; test cleanup)."""
        self._entries.pop(name, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise PolicyLookupError(
                "unknown %s %r: registered names are %s (register your own "
                "via repro.core.policy, or import the module that defines "
                "it first)"
                % (self.kind, name, ", ".join(self.names()) or "(none)")
            ) from None

    def names(self) -> List[str]:
        return list(self._entries)

    def items(self) -> Iterator[Tuple[str, T]]:
        return iter(list(self._entries.items()))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return "Registry(%s: %s)" % (self.kind, ", ".join(self.names()))
