"""Cycle-level observer hooks.

An :class:`Observer` attaches to a simulation
(``simulate(..., observers=[...])`` or
``StreamingMultiprocessor(..., observers=[...])``) and receives typed
events as the machine runs:

* :class:`IssueEvent` — every instruction issue (cycle, warp, PC,
  issue origin, thread mask, execution group);
* :class:`RetireEvent` — a warp finished;
* :class:`SplitEvent` — a divergent branch created a new warp-split;
* :class:`MemEvent` — L1 misses (per SM) and L2 misses (per device).

Observers are pure listeners: the pipeline never reads anything back
from them, so attaching one cannot change timing or results.  The SM
skips event construction entirely when no observer is attached, so the
hooks are free in ordinary runs.  The first in-tree consumer is
:class:`repro.analysis.pipeline_trace.IssueTrace` (the Figure 2
machinery); :class:`EventCounter` below is a minimal reference
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.policy.events import (
    KIND_ISSUE,
    KIND_L1_MISS,
    KIND_L2_MISS,
    KIND_RETIRE,
    KIND_SPLIT,
)
from repro.core.policy.registry import Registry


@dataclass(frozen=True)
class IssueEvent:
    """One instruction issue."""

    cycle: int
    sm_id: int
    wid: int
    pc: int
    origin: str  # "primary" | "sbi" | "swi"
    mask: int
    group: str
    active: int


@dataclass(frozen=True)
class RetireEvent:
    """One warp retired (all of its threads exited)."""

    cycle: int
    sm_id: int
    wid: int
    cta: int


@dataclass(frozen=True)
class SplitEvent:
    """A divergent branch split one warp-split in two."""

    cycle: int
    sm_id: int
    wid: int
    pc: int
    live_splits: int


@dataclass(frozen=True)
class MemEvent:
    """Cache misses observed this cycle (``level`` is "l1" or "l2")."""

    cycle: int
    sm_id: int
    level: str
    count: int


class Observer:
    """Base class: override any subset of the hooks."""

    def on_issue(self, event: IssueEvent) -> None:
        pass

    def on_retire(self, event: RetireEvent) -> None:
        pass

    def on_split(self, event: SplitEvent) -> None:
        pass

    def on_l1_miss(self, event: MemEvent) -> None:
        pass

    def on_l2_miss(self, event: MemEvent) -> None:
        pass

    def finalize(self, stats: object) -> None:
        """Called once after the run with the final stats object
        (``Stats`` for one SM, ``DeviceStats`` for a device run).
        Streaming aggregators close out their last open interval
        here; the default is a no-op so plain listeners need not
        care."""
        pass


#: Observer registry (name -> Observer subclass).  Entries are
#: *classes*; callers instantiate per run.
OBSERVERS: Registry = Registry("observer")


@OBSERVERS.register("counter")
class EventCounter(Observer):
    """Counts events by kind and records the unified (kind, cycle)
    sequence — the reference observer used by the event-ordering
    tests."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.sequence: List[Tuple[str, int]] = []

    def _record(self, kind: str, cycle: int) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.sequence.append((kind, cycle))

    def on_issue(self, event: IssueEvent) -> None:
        self._record(KIND_ISSUE, event.cycle)

    def on_retire(self, event: RetireEvent) -> None:
        self._record(KIND_RETIRE, event.cycle)

    def on_split(self, event: SplitEvent) -> None:
        self._record(KIND_SPLIT, event.cycle)

    def on_l1_miss(self, event: MemEvent) -> None:
        self.counts[KIND_L1_MISS] = self.counts.get(KIND_L1_MISS, 0) + event.count
        self.sequence.append((KIND_L1_MISS, event.cycle))

    def on_l2_miss(self, event: MemEvent) -> None:
        self.counts[KIND_L2_MISS] = self.counts.get(KIND_L2_MISS, 0) + event.count
        self.sequence.append((KIND_L2_MISS, event.cycle))
