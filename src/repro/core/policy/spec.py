"""The structured description of one microarchitecture policy.

A :class:`PolicySpec` is what an :class:`~repro.timing.config.SMConfig`
``mode`` string resolves to: it names the scheduler policy and the
divergence model (both registry keys), carries the front-end shape the
pipeline derives from the mode today (issue width, hot-split
capacity, SBI/SWI capabilities), and optionally a ``preset`` mapping
of configuration defaults so ``presets.by_name``/``SweepSpec`` can
build a ready-to-run machine from just the name.

The spec is pure data — registering one never imports a simulator
module — so third-party policies can be declared before (or without)
constructing any machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping


@dataclass(frozen=True)
class PolicySpec:
    """One registered microarchitecture policy.

    ``scheduler`` and ``divergence`` are names in the
    :data:`~repro.core.policy.SCHEDULERS` and
    :data:`~repro.core.policy.DIVERGENCE` registries; they are resolved
    when a machine is constructed, not at registration, so a spec can
    reference a scheduler whose module has not been imported yet.
    """

    name: str
    scheduler: str
    divergence: str

    #: Instructions the front end may issue per cycle (1 or 2).
    issue_width: int = 2
    #: Runnable warp-splits exposed to fetch/decode (2 for SBI's
    #: dual front-end, 1 otherwise).
    hot_capacity: int = 1

    #: Capability flags the pipeline and schedulers key off.
    uses_sbi: bool = False
    uses_swi: bool = False
    two_pools: bool = False
    #: Peak IPC is bounded by the execution units (SBI/SWI fill idle
    #: lanes) rather than by issue slots alone (baseline/warp64).
    unit_bound_peak: bool = False

    description: str = ""
    #: SMConfig field defaults applied by ``presets.by_name(name)``.
    preset: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("PolicySpec.name must be a non-empty string")
        if self.issue_width not in (1, 2):
            raise ValueError("issue_width must be 1 or 2")
        if self.hot_capacity not in (1, 2):
            raise ValueError("hot_capacity must be 1 or 2")
        # Freeze the preset mapping into a plain dict copy so a caller
        # mutating their dict later cannot skew registered defaults —
        # and fail on typo'd keys *now*, not at the first by_name().
        preset = dict(self.preset)
        import dataclasses

        from repro.timing.config import SMConfig

        valid = {f.name for f in dataclasses.fields(SMConfig)} - {"mode"}
        bad = sorted(set(preset) - valid)
        if bad:
            raise ValueError(
                "PolicySpec %r preset has unknown SMConfig fields %s "
                "('mode' is implied by the spec name); valid fields: %s"
                % (self.name, ", ".join(bad), ", ".join(sorted(valid)))
            )
        object.__setattr__(self, "preset", preset)

    def describe(self) -> str:
        caps = [
            flag
            for flag, on in (
                ("sbi", self.uses_sbi),
                ("swi", self.uses_swi),
                ("two-pools", self.two_pools),
            )
            if on
        ]
        return "%s: scheduler=%s divergence=%s issue=%d hot=%d%s%s" % (
            self.name,
            self.scheduler,
            self.divergence,
            self.issue_width,
            self.hot_capacity,
            " [%s]" % ",".join(caps) if caps else "",
            " — %s" % self.description if self.description else "",
        )

    def preset_dict(self) -> Dict[str, Any]:
        """A fresh copy of the preset defaults."""
        return dict(self.preset)
