"""The closed vocabulary of observer event names.

Every string that crosses the observer boundary — issue origins,
memory-event levels, and the event *kind* tags observers may use to
label unified streams — is defined here and nowhere else.  Emit sites
(:mod:`repro.core.sm`, :mod:`repro.core.gpu`, the schedulers) and
consumers must reference these constants rather than re-typing the
literals; ``repro lint``'s ``observer-vocabulary`` rule enforces this,
so a typo'd event name is a diff-time error instead of a silently
uncounted event.

This module is a pure leaf: it imports nothing, so any layer
(including :mod:`repro.timing`) may import it without cycles.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

# -- issue origins (IssueEvent.origin, Stats issue-slot counters) ------

#: The primary scheduler slot issued the instruction.
ORIGIN_PRIMARY: str = "primary"
#: SBI: the same warp's CPC2 co-issued through the dual front-end.
ORIGIN_SBI: str = "sbi"
#: SWI: another warp's split filled the free lanes.
ORIGIN_SWI: str = "swi"

#: Every valid ``IssueEvent.origin`` value.
ISSUE_ORIGINS: Tuple[str, ...] = (ORIGIN_PRIMARY, ORIGIN_SBI, ORIGIN_SWI)

# -- memory-event levels (MemEvent.level) ------------------------------

#: Per-SM L1 miss events.
LEVEL_L1: str = "l1"
#: Device-level L2 miss events.
LEVEL_L2: str = "l2"

#: Every valid ``MemEvent.level`` value.
MEM_LEVELS: Tuple[str, ...] = (LEVEL_L1, LEVEL_L2)

# -- event kinds (observer-side stream labels) -------------------------

KIND_ISSUE: str = "issue"
KIND_RETIRE: str = "retire"
KIND_SPLIT: str = "split"
KIND_L1_MISS: str = "l1_miss"
KIND_L2_MISS: str = "l2_miss"

#: Every event kind an :class:`~repro.core.policy.Observer` can see.
EVENT_KINDS: Tuple[str, ...] = (
    KIND_ISSUE,
    KIND_RETIRE,
    KIND_SPLIT,
    KIND_L1_MISS,
    KIND_L2_MISS,
)

#: The full vocabulary, for validation and for the lint rule.
VOCABULARY: FrozenSet[str] = frozenset(ISSUE_ORIGINS + MEM_LEVELS + EVENT_KINDS)
