"""repro.core.policy — the pluggable microarchitecture policy API.

The simulator's extension points are name -> object registries:

* :data:`POLICIES` — :class:`PolicySpec` bundles (what an
  ``SMConfig.mode`` string resolves to);
* :data:`SCHEDULERS` — scheduler-policy classes (``factory(sm)``),
  populated by :mod:`repro.core.schedulers` and by plugins;
* :data:`DIVERGENCE` — divergence-model factories
  (``factory(config, launch_mask, lane_perm)``);
* :data:`OBSERVERS` — cycle-level :class:`Observer` classes.

Defining a new microarchitecture needs no simulator edits::

    from repro.core import policy
    from repro.core.schedulers import CascadedScheduler

    @policy.SCHEDULERS.register("my_arbiter")
    class MyArbiter(CascadedScheduler):
        def _secondary_key(self, warp, split, entry):
            return (split.active_threads, -entry.fetch_cycle)

    policy.register_policy(policy.PolicySpec(
        name="my_swi", scheduler="my_arbiter", divergence="frontier",
        uses_swi=True, unit_bound_peak=True,
        preset=dict(warp_count=16, warp_width=64, scheduler_latency=2,
                    delivery_latency=1, lane_shuffle="xor_rev"),
    ))

after which ``"my_swi"`` works everywhere a mode name does:
``presets.by_name``, ``SweepSpec`` configs, the ``policy`` sweep axis,
and ``repro sweep --policy my_swi`` (load the defining module with
``--plugin``).
"""

from __future__ import annotations

from typing import Union

from repro.core.policy.registry import (
    DuplicateNameError,
    PolicyLookupError,
    Registry,
)
from repro.core.policy.spec import PolicySpec
from repro.core.policy.observers import (
    OBSERVERS,
    EventCounter,
    IssueEvent,
    MemEvent,
    Observer,
    RetireEvent,
    SplitEvent,
)

#: Scheduler-policy registry: name -> class/factory taking the SM.
#: Built-in entries register from :mod:`repro.core.schedulers`.
SCHEDULERS: Registry = Registry("scheduler")

# Built-in specs and divergence factories (pure data; importing them
# pulls no pipeline modules in).
from repro.core.policy.builtin import DIVERGENCE, POLICIES  # noqa: E402


def register_policy(spec: PolicySpec, replace: bool = False) -> PolicySpec:
    """Register ``spec`` under ``spec.name`` and return it."""
    return POLICIES.register(spec.name, spec, replace=replace)


def coerce_policy(mode: Union[str, PolicySpec]) -> PolicySpec:
    """Resolve a config ``mode`` (name or spec) to a registered spec.

    Passing an unregistered :class:`PolicySpec` registers it on the
    spot, so ``SMConfig(mode=my_spec)`` just works; passing a spec
    whose name is already registered *differently* is an error (two
    machines must never share a cache key).
    """
    if isinstance(mode, PolicySpec):
        if mode.name in POLICIES:
            existing = POLICIES.get(mode.name)
            if existing != mode:
                raise DuplicateNameError(
                    "policy %r is already registered with a different spec; "
                    "rename yours or register_policy(spec, replace=True) "
                    "first" % mode.name
                )
            return existing
        return register_policy(mode)
    if isinstance(mode, str):
        return POLICIES.get(mode)
    raise TypeError(
        "mode must be a policy name or a PolicySpec, got %r" % (mode,)
    )


__all__ = [
    "DIVERGENCE",
    "DuplicateNameError",
    "EventCounter",
    "IssueEvent",
    "MemEvent",
    "OBSERVERS",
    "Observer",
    "POLICIES",
    "PolicyLookupError",
    "PolicySpec",
    "Registry",
    "RetireEvent",
    "SCHEDULERS",
    "SplitEvent",
    "coerce_policy",
    "register_policy",
]
