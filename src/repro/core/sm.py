"""The SM pipeline: ties front end, back end and memory together.

One :class:`StreamingMultiprocessor` simulates a kernel launch on a
single SM (the paper evaluates one SM with a 10 GB/s memory share).
CTAs are dispatched onto warp slots as earlier CTAs retire; each cycle
the mode-specific scheduler issues up to two instructions, the fetch
engine refills up to two instruction buffers, and timed events
(writebacks, DRAM fills, branch redirects, CCT insertions) release
stalled resources.  Cycles where nothing can happen are skipped to the
next event, which changes no architectural behaviour — only wall-clock
simulation speed.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.functional.executor import Executor
from repro.functional.memory import MemoryImage, SharedMemory
from repro.isa.builder import Kernel
from repro.isa.instructions import Instruction, Op, OpClass
from repro.core.policy import IssueEvent, MemEvent, RetireEvent, SplitEvent
from repro.core.policy.events import (
    LEVEL_L1,
    ORIGIN_PRIMARY,
    ORIGIN_SBI,
    ORIGIN_SWI,
)
from repro.core.report import deadlock_report, overrun_report
from repro.core.warp import TimingWarp
from repro.timing.cache import L1Cache
from repro.timing.config import SMConfig
from repro.timing.dram import DRAMChannel
from repro.timing.fetch import FetchEngine, IBufEntry
from repro.timing.lsu import LoadStoreUnit
from repro.timing.masks import bools_to_mask, mask_to_bools, popcount
from repro.timing.scoreboard import build_transition
from repro.timing.stats import Stats
from repro.timing.units import Backend, ExecGroup
from repro.timing.divergence import Split


class SimulationError(Exception):
    """Deadlock or cycle-limit overrun."""


# Back-compat alias: the overrun/deadlock text now lives in
# repro.core.report, shared with the device loop.
_overrun_report = overrun_report


@dataclass(slots=True)
class IssueRecord:
    """What the scheduler learns from a completed issue."""

    warp: TimingWarp
    split: Split
    instr: Instruction
    lane_mask: int
    group: ExecGroup
    diverged: bool
    active: int


class StreamingMultiprocessor:
    """Cycle-level model of one SM running one kernel launch.

    By default the SM is a self-contained single-SM simulation: it
    owns a private DRAM channel and pulls CTAs from a private
    sequential dispatcher over the whole grid.  A
    :class:`repro.core.gpu.GPUDevice` instead injects the shared
    memory sink (L2 system or per-SM bandwidth slice) and the shared
    GigaThread dispatcher, and drives many SMs in lock-step through
    :meth:`step` / :meth:`next_event_cycle`.
    """

    __slots__ = (
        "kernel",
        "memory",
        "config",
        "sm_id",
        "stats",
        "executor",
        "backend",
        "cache",
        "dram",
        "lsu_logic",
        "fetch",
        "scheduler",
        "observers",
        "dispatcher",
        "warp_slots",
        "cta_warps",
        "pending_launches",
        "trace",
        "_wb_heap",
        "_seq",
        "_wake_heap",
        "_wake_dirty",
        "_wake_seq",
        "_live_cache",
        "_parity_cache",
    )

    def __init__(
        self,
        kernel: Kernel,
        memory: MemoryImage,
        config: SMConfig,
        *,
        dispatcher=None,
        memory_sink=None,
        sm_id: int = 0,
        observers=None,
        compiled: bool = True,
    ) -> None:
        from repro.core.schedulers import make_scheduler  # cycle-free import

        self.kernel = kernel
        self.memory = memory
        self.config = config
        self.sm_id = sm_id
        self.stats = Stats()
        # ``compiled`` selects the specialised execution path (identical
        # architectural behaviour; see repro.functional.compiled).  It is
        # deliberately not an SMConfig field: cache keys must not change.
        self.executor = Executor(kernel, memory, compiled=compiled)
        self.backend = Backend(config)
        self.cache = L1Cache(config.l1_size, config.l1_ways, config.l1_block, config.l1_latency)
        if memory_sink is None:
            memory_sink = DRAMChannel(config.dram_bandwidth, config.dram_latency)
        self.dram = memory_sink
        self.lsu_logic = LoadStoreUnit(config, self.cache, self.dram, self.stats)
        self.fetch = FetchEngine(
            kernel.program, config.fetch_width, config.policy.hot_capacity
        )
        self.scheduler = make_scheduler(config, self)
        #: Attached cycle-level observers (see :mod:`repro.core.policy`).
        #: Event construction is skipped entirely when the list is empty.
        self.observers = list(observers or ())

        if dispatcher is None:
            from repro.core.gpu import CTADispatcher  # cycle-free import

            dispatcher = CTADispatcher(kernel.grid_size)
        self.dispatcher = dispatcher
        self.warp_slots: List[Optional[TimingWarp]] = [None] * config.warp_count
        self.cta_warps: Dict[int, List[TimingWarp]] = {}
        self.pending_launches: List[Tuple[int, Tuple[int, ...]]] = []
        self._wb_heap: List[Tuple[int, int, TimingWarp, object]] = []
        self._seq = 0
        # Event engine: lazy-deletion min-heap of per-warp wake events
        # ``(wake_cycle, seq, warp)``.  An entry is valid while its
        # cycle equals ``warp.heap_wake``; superseded entries are left
        # in the heap and dropped when popped.  ``_wake_dirty`` queues
        # warps whose divergence model changed (on_change hook) for a
        # heap refresh at the next event query.
        self._wake_heap: List[Tuple[int, int, TimingWarp]] = []
        self._wake_dirty: List[TimingWarp] = []
        self._wake_seq = 0
        self._live_cache: Optional[List[TimingWarp]] = None
        self._parity_cache: Optional[Tuple[List[TimingWarp], List[TimingWarp]]] = None
        #: Optional issue trace: when a list is attached, every issue
        #: appends an IssueEvent (used by repro.analysis.pipeline_trace).
        self.trace: Optional[list] = None

        if kernel.cta_size > config.total_threads:
            raise SimulationError(
                "CTA of %d threads does not fit on the SM (%d threads)"
                % (kernel.cta_size, config.total_threads)
            )

    # ------------------------------------------------------------------
    # CTA dispatch
    # ------------------------------------------------------------------

    @property
    def warps_per_cta(self) -> int:
        width = self.config.warp_width
        return (self.kernel.cta_size + width - 1) // width

    def _free_slots(self) -> List[int]:
        return [i for i, w in enumerate(self.warp_slots) if w is None]

    def _launch_cta(self, cta: int, slots: Tuple[int, ...], now: int) -> None:
        shared = SharedMemory(max(self.kernel.shared_bytes, 4))
        warps = []
        width = self.config.warp_width
        dirty = self._wake_dirty
        fetch = self.fetch
        fetch._sleep_until = 0
        for i, slot in enumerate(slots):
            tids = np.arange(i * width, (i + 1) * width, dtype=np.int64)
            warp = TimingWarp(slot, cta, self.config, self.kernel, tids, shared)
            warp.ibuf = self.fetch.ways_for(slot)

            def _changed(
                w: TimingWarp = warp,
                dirty: List[TimingWarp] = dirty,
                fetch: FetchEngine = fetch,
            ) -> None:
                # Divergence-model change: the warp may have become
                # schedulable/fetchable, and its split wake times may
                # have moved — clear the stall memos and queue a wake-
                # heap refresh.
                w.stall0 = 0
                w.stall1 = 0
                w.fetch_stall = 0
                fetch._sleep_until = 0
                if not w.wake_dirty:
                    w.wake_dirty = True
                    dirty.append(w)

            warp.model.on_change = _changed
            self.warp_slots[slot] = warp
            warps.append(warp)
        self.cta_warps[cta] = warps
        self.stats.ctas_launched += 1
        self._live_cache = None
        self._parity_cache = None

    def try_launch_cta(self, now: int) -> bool:
        """Accept one CTA from the dispatcher if a slot set is free."""
        if not self.dispatcher.has_pending():
            return False
        free = self._free_slots()
        if len(free) < self.warps_per_cta:
            return False
        cta = self.dispatcher.acquire()
        if cta is None:
            return False
        self._launch_cta(cta, tuple(free[: self.warps_per_cta]), now)
        return True

    def _initial_launch(self) -> None:
        while self.try_launch_cta(0):
            pass

    def _launch_pending(self, now: int) -> None:
        while self.pending_launches and self.pending_launches[0][0] <= now:
            _, slots = heapq.heappop(self.pending_launches)
            # Another SM may have drained the grid since the retire
            # that scheduled this launch; the slots simply stay free.
            cta = self.dispatcher.acquire()
            if cta is not None:
                self._launch_cta(cta, slots, now)

    def _retire_warp(self, warp: TimingWarp, now: int) -> None:
        warp.done = True
        self.stats.warps_retired += 1
        self.stats.merges += warp.model.merge_count
        self.fetch.flush_warp(warp.wid)
        if self.observers:
            event = RetireEvent(now, self.sm_id, warp.wid, warp.cta_id)
            for observer in self.observers:
                observer.on_retire(event)
        cta_warps = self.cta_warps[warp.cta_id]
        if all(w.done for w in cta_warps):
            slots = tuple(w.wid for w in cta_warps)
            for slot in slots:
                self.warp_slots[slot] = None
            del self.cta_warps[warp.cta_id]
            if self.dispatcher.has_pending():
                heapq.heappush(
                    self.pending_launches,
                    (now + self.config.cta_launch_latency, slots),
                )
        self._live_cache = None
        self._parity_cache = None

    def live_warps(self) -> List[TimingWarp]:
        if self._live_cache is None:
            self._live_cache = [
                w for w in self.warp_slots if w is not None and not w.done
            ]
        return self._live_cache

    def live_warps_by_parity(self) -> Tuple[List[TimingWarp], List[TimingWarp]]:
        """Live warps split into (even, odd) warp-id pools (two_pool)."""
        if self._parity_cache is None:
            live = self.live_warps()
            self._parity_cache = (
                [w for w in live if w.wid % 2 == 0],
                [w for w in live if w.wid % 2 == 1],
            )
        return self._parity_cache

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------

    def issue(
        self,
        warp: TimingWarp,
        slot: int,
        split: Split,
        entry: IBufEntry,
        now: int,
        origin: str,
        co_issue: bool,
    ) -> Optional[IssueRecord]:
        """Execute + retire bookkeeping for one instruction.

        Returns None when no execution group can accept the instruction
        this cycle (the caller treats it as a lost arbitration).
        """
        instr = entry.instr
        config = self.config
        op_class = instr.op_class
        lane_mask = split.lane_mask
        group = self.backend.pick_group(op_class, now, lane_mask, co_issue)
        if group is None:
            return None
        # Freeze the split while its instruction is in flight through the
        # issue path: structural queries below may pop CCT entries, and a
        # merge changing this mask mid-issue would corrupt both the lane
        # reservation and the set of threads executing the instruction.
        split.pending = True
        model = warp.model
        scoreboard = warp.scoreboard
        matrix = warp.matrix_sb
        if matrix:
            old_masks = model.slot_masks(now)
            slot_ctx = model.slot_of(split, now)
        else:
            # Only the matrix scoreboard reads context slots.
            old_masks = None
            slot_ctx = 0

        outcome = self.executor.execute_masked(instr, warp.fwarp, split.mask)
        active_mask = outcome.active_mask
        active_bits = active_mask.bit_count()
        # Stats.record_issue, inlined: this runs once per issued
        # instruction and the call overhead is measurable.
        stats = self.stats
        stats.instructions_issued += 1
        stats.thread_instructions += active_bits
        per_op = stats.per_op_class
        oc = op_class.value
        per_op[oc] = per_op.get(oc, 0) + active_bits
        if origin == ORIGIN_PRIMARY:
            stats.issued_primary += 1
        elif origin == ORIGIN_SBI:
            stats.issued_sbi_secondary += 1
        elif origin == ORIGIN_SWI:
            stats.issued_swi_secondary += 1
        else:
            raise ValueError("unknown issue origin %r" % origin)
        if self.trace is not None:
            self.trace.append(
                (now, warp.wid, entry.pc, origin, split.mask, group.name)
            )
        if self.observers:
            event = IssueEvent(
                now, self.sm_id, warp.wid, entry.pc, origin,
                split.mask, group.name, active_bits,
            )
            for observer in self.observers:
                observer.on_issue(event)

        # Timing: occupancy and writeback.
        if op_class is OpClass.LSU:
            misses_before = stats.l1_misses
            occupancy, wb = self.lsu_logic.access(instr, outcome, now)
            if self.observers and stats.l1_misses > misses_before:
                event = MemEvent(
                    now, self.sm_id, LEVEL_L1, stats.l1_misses - misses_before
                )
                for observer in self.observers:
                    observer.on_l1_miss(event)
            group.accept(now, lane_mask)
            group.hold(now + occupancy)
            wb += config.delivery_latency
        else:
            waves = group.accept(now, lane_mask)
            wb = now + config.issue_to_writeback + (waves - 1)
        if instr.dst is not None:
            sb_entry = scoreboard.add(instr, split.mask, slot_ctx)
            heapq.heappush(self._wb_heap, (wb, self._seq, warp, sb_entry))
            self._seq += 1

        self.fetch.consume(warp.wid, entry)
        # A freed buffer way may be refilled, and the scoreboard add
        # above may block the other slot: wake the warp's memos.
        warp.fetch_stall = 0
        self.fetch._sleep_until = 0
        warp.stall0 = 0
        warp.stall1 = 0
        warp.last_issue_cycle = now
        split.pending = False

        # Architectural control effects.
        diverged = False
        op = instr.op
        if op is Op.BRA:
            stats.branches += 1
            taken = bools_to_mask(np.asarray(outcome.taken) & outcome.active)
            split.redirect_ready_at = now + config.branch_latency
            diverged = model.branch(split, taken, instr.target, instr.reconv_pc, now)
            if diverged:
                stats.divergent_branches += 1
                n_splits = sum(1 for _ in model.all_splits())
                stats.max_live_splits = max(stats.max_live_splits, n_splits)
                if self.observers:
                    event = SplitEvent(now, self.sm_id, warp.wid, entry.pc, n_splits)
                    for observer in self.observers:
                        observer.on_split(event)
        elif op is Op.EXIT:
            model.exit_threads(split, active_mask, now)
            if split.mask:
                model.advance(split, now)
            if model.done:
                self._retire_warp(warp, now)
            self._check_barrier(warp.cta_id, now)
        elif op is Op.BAR:
            model.park(split, now)
            self._check_barrier(warp.cta_id, now)
        else:
            model.advance(split, now)

        if matrix:
            new_masks = model.slot_masks(now)
            if new_masks != old_masks:
                scoreboard.on_transition(build_transition(old_masks, new_masks))
        return IssueRecord(
            warp, split, instr, lane_mask, group, diverged, active_bits
        )

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------

    def _check_barrier(self, cta_id: int, now: int) -> None:
        warps = self.cta_warps.get(cta_id)
        if not warps:
            return
        # Fast out: with no thread parked anywhere in the CTA (every
        # EXIT of a barrier-free kernel lands here), the release
        # condition below cannot hold unless the CTA is already empty
        # — and then there is nothing to unpark either.
        if not any(w.model.parked_threads for w in warps if not w.done):
            return
        live = parked = 0
        for warp in warps:
            if warp.done:
                continue
            for s in warp.model.all_splits():
                threads = popcount(s.mask)
                live += threads
                if s.parked:
                    parked += threads
        if live == 0 or parked < live:
            return
        for warp in warps:
            if warp.done:
                continue
            matrix = warp.matrix_sb
            old = warp.model.slot_masks(now) if matrix else None
            warp.model.unpark_all(now)
            if matrix:
                new = warp.model.slot_masks(now)
                if new != old:
                    warp.scoreboard.on_transition(build_transition(old, new))

    # ------------------------------------------------------------------
    # Timed events
    # ------------------------------------------------------------------

    def _process_writebacks(self, now: int) -> None:
        heap = self._wb_heap
        while heap and heap[0][0] <= now:
            _, _, warp, sb_entry = heapq.heappop(heap)
            warp.scoreboard.release(sb_entry)
            # A released destination can unblock either hot slot.
            warp.stall0 = 0
            warp.stall1 = 0

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest future cycle at which anything can happen here.

        ``None`` means this SM has no scheduled events — a deadlock in
        a standalone run, and for a device either a finished SM or one
        stuck until the whole device deadlocks.

        Split wake-ups (branch redirects, CCT sideband insertions) are
        served from a per-warp sorted cache keyed on the divergence
        model's mutation counter, so idle scans stop re-walking every
        live split: only warps whose model changed since the last scan
        rebuild their wake list.
        """
        best: Optional[int] = None
        if self._wb_heap:
            c = self._wb_heap[0][0]
            if c <= now:  # caller did not drain writebacks first (tests)
                c = min((w for w, _, _, _ in self._wb_heap if w > now), default=None)
            if c is not None:
                best = c
        nxt = self.backend.next_free_cycle(now)
        if nxt is not None and (best is None or nxt < best):
            best = nxt
        nxt = self.fetch.next_ready_after(now)
        if nxt is not None and (best is None or nxt < best):
            best = nxt
        if self.pending_launches:
            c = self.pending_launches[0][0]
            if c <= now:
                c = min((p for p, _ in self.pending_launches if p > now), default=None)
            if c is not None and (best is None or c < best):
                best = c
        for warp in self.live_warps():
            model = warp.model
            if warp.wake_version != model.version:
                wakes = set()
                for s in model.all_splits():
                    if s.redirect_ready_at:
                        wakes.add(s.redirect_ready_at)
                    if s.ready_at:
                        wakes.add(s.ready_at)
                warp.wake_cache = sorted(wakes)
                warp.wake_version = model.version
            cache = warp.wake_cache
            i = bisect_right(cache, now)
            if i < len(cache):
                c = cache[i]
                if best is None or c < best:
                    best = c
        return best

    def _first_wake_after(self, warp: TimingWarp, now: int) -> int:
        """Earliest future split wake of one warp, or -1.

        A single pass over the live splits — no sorted cache: the scan
        engine's per-warp wake list (``wake_cache``) answers *every*
        possible ``now`` and so must be rebuilt on any change, but the
        heap only ever needs the minimum for the current cycle.
        Equivalent to ``wake_cache[bisect_right(wake_cache, now)]``
        when the cache is fresh.
        """
        best = -1
        for s in warp.model.all_splits():
            r = s.redirect_ready_at
            if r > now and (best < 0 or r < best):
                best = r
            r = s.ready_at
            if r > now and (best < 0 or r < best):
                best = r
        return best

    def _flush_wake_dirty(self, now: int) -> None:
        """Refresh heap entries of warps whose model changed.

        Recomputes each queued warp's first future wake and pushes it
        as a new heap entry; the previous entry, if any, is superseded
        in place (``warp.heap_wake`` no longer matches) and dropped
        lazily.
        """
        dirty = self._wake_dirty
        if not dirty:
            return
        heap = self._wake_heap
        for warp in dirty:
            warp.wake_dirty = False
            if warp.done:
                warp.heap_wake = -1
                continue
            c = self._first_wake_after(warp, now)
            if c >= 0:
                if c != warp.heap_wake:
                    warp.heap_wake = c
                    self._wake_seq += 1
                    heapq.heappush(heap, (c, self._wake_seq, warp))
            else:
                warp.heap_wake = -1
        del dirty[:]

    def _heap_wake_peek(self, now: int) -> Optional[int]:
        """Earliest valid future warp wake in the heap (lazy deletion).

        Pops superseded/retired entries; an entry whose cycle has
        passed advances to the warp's next cached wake.  The surviving
        minimum equals the scan's ``min`` over per-warp wake caches.
        """
        heap = self._wake_heap
        while heap:
            c, _, warp = heap[0]
            if warp.done or c != warp.heap_wake:
                heapq.heappop(heap)  # stale: superseded or retired
                continue
            if c <= now:
                # Time passed this entry (the wake cycle was stepped
                # for another reason): advance to the warp's next wake.
                # The direct walk is exact here: any split change since
                # the entry was pushed queued the warp dirty, and the
                # flush preceding this peek already re-registered it.
                heapq.heappop(heap)
                nc = self._first_wake_after(warp, now)
                if nc >= 0:
                    warp.heap_wake = nc
                    self._wake_seq += 1
                    heapq.heappush(heap, (nc, self._wake_seq, warp))
                else:
                    warp.heap_wake = -1
                continue
            return c
        return None

    def _heap_next_event(self, now: int) -> Optional[int]:
        """Heap-fed :meth:`next_event_cycle`: same result, no warp scan.

        The fixed event sources (writebacks, execution groups, fetch
        decode, CTA relaunches) are O(1) queries; split wake-ups come
        from the wake heap instead of a scan over every live warp.
        """
        best: Optional[int] = None
        if self._wb_heap:
            c = self._wb_heap[0][0]
            if c <= now:  # caller did not drain writebacks first (tests)
                c = min((w for w, _, _, _ in self._wb_heap if w > now), default=None)
            if c is not None:
                best = c
        nxt = self.backend.next_free_cycle(now)
        if nxt is not None and (best is None or nxt < best):
            best = nxt
        nxt = self.fetch.next_ready_after(now)
        if nxt is not None and (best is None or nxt < best):
            best = nxt
        if self.pending_launches:
            c = self.pending_launches[0][0]
            if c <= now:
                c = min((p for p, _ in self.pending_launches if p > now), default=None)
            if c is not None and (best is None or c < best):
                best = c
        self._flush_wake_dirty(now)
        nxt = self._heap_wake_peek(now)
        if nxt is not None and (best is None or nxt < best):
            best = nxt
        return best

    def event_heap_snapshot(self) -> List[Tuple[int, int]]:
        """Valid pending ``(wake_cycle, warp_id)`` events, soonest first
        (diagnostics: dumped into deadlock reports)."""
        self._flush_wake_dirty(-1)
        out = [
            (c, w.wid)
            for c, _, w in self._wake_heap
            if not w.done and c == w.heap_wake
        ]
        out.sort()
        return out

    def _next_event(self, now: int) -> int:
        nxt = self.next_event_cycle(now)
        if nxt is None:
            raise SimulationError(self._deadlock_report(now))
        return nxt

    def _deadlock_report(self, now: int) -> str:
        header = "deadlock at cycle %d in kernel %s (SM %d)" % (
            now,
            self.kernel.name,
            self.sm_id,
        )
        return deadlock_report(header, [self], now)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return (
            not self.live_warps()
            and not self.pending_launches
            and not self.dispatcher.has_pending()
        )

    def step(self, now: int) -> bool:
        """Simulate one cycle; True when any issue or fetch happened.

        Drivers stepping the SM directly should enter
        ``np.errstate(all="ignore")`` around their loop (as
        :meth:`run` and :class:`~repro.core.gpu.GPUDevice` do):
        compiled plans skip the per-issue errstate the interpreter
        pays, so garbage-lane arithmetic may otherwise emit numpy
        RuntimeWarnings — results are unaffected either way.
        """
        if self.pending_launches:
            self._launch_pending(now)
        heap = self._wb_heap
        if heap and heap[0][0] <= now:
            self._process_writebacks(now)
        issued = self.scheduler.tick(now)
        fetched = self.fetch.tick(now, self.live_warps())
        if issued:
            self.stats.busy_cycles += 1
            return True
        return fetched > 0

    def run(self, engine: str = "event") -> Stats:
        """Simulate to completion.

        ``engine="event"`` (default) feeds idle-span jumps from the
        SM's wake heap; ``engine="reference"`` re-derives every jump by
        scanning all event sources (:meth:`next_event_cycle`).  Both
        engines step exactly the same cycle sequence and produce
        byte-identical stats — the reference loop exists for
        differential testing (``tests/test_event_engine.py``).
        """
        if engine == "event":
            next_event = self._heap_next_event
        elif engine == "reference":
            next_event = self.next_event_cycle
        else:
            raise ValueError("unknown engine %r" % (engine,))
        self._initial_launch()
        now = 0
        max_cycles = self.config.max_cycles
        # One errstate for the whole run: compiled plans deliberately
        # skip the per-issue ``np.errstate`` the interpreter pays.
        with np.errstate(all="ignore"):
            while now < max_cycles:
                progressed = self.step(now)
                if self.finished:
                    self.stats.cycles = now + 1
                    return self.stats
                if progressed:
                    now += 1
                else:
                    nxt = next_event(now)
                    if nxt is None:
                        raise SimulationError(self._deadlock_report(now))
                    now = nxt
        raise SimulationError(
            overrun_report(self.kernel.name, max_cycles, now, self.stats)
        )
