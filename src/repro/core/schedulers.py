"""Instruction scheduler policies (the ``SCHEDULERS`` registry).

Built-ins, registered under the names the
:class:`~repro.core.policy.PolicySpec` entries reference:

* ``two_pool`` :class:`BaselineScheduler` — two warp pools (even/odd
  ids), each issuing its oldest ready instruction per cycle (paper
  section 2).
* ``single_issue`` :class:`Warp64Scheduler` — single pool, single
  issue (the "Warp 64" thread-frontier reference of Figure 7).
* ``sbi_dual`` :class:`SBIScheduler` — one warp selected per cycle;
  its ``CPC1`` and ``CPC2`` warp-splits issue simultaneously through
  the dual front-end.  Enforces the selective synchronization barrier
  and the one-divergence-per-cycle HCT restriction.
* ``cascaded`` :class:`CascadedScheduler` — SWI and SBI+SWI: a primary
  pick spends one extra pipeline stage (Table 2's 2-cycle scheduler
  latency) during which the secondary scheduler fills the remaining
  lanes — from the same warp's ``CPC2`` (SBI+SWI) or from another warp
  whose lane mask fits (best-fit, pseudo-random tie-break,
  set-associative candidate window).  Conflicts between the two
  decoupled pickers are detected a posteriori and the primary copy is
  discarded, as in the paper (section 4).
* ``cascaded_greedy`` :class:`GreedyCascadedScheduler` — the cascaded
  machine with a deterministic greedy-then-oldest secondary arbiter.
* ``cascaded_rr`` :class:`LooseRoundRobinScheduler` — the cascaded
  machine with a loose-round-robin primary warp arbiter.

Custom schedulers subclass any of these (the extension hooks are
:meth:`CascadedScheduler._secondary_key` and
:meth:`CascadedScheduler._pick_primary`) and register under a new
name; a :class:`~repro.core.policy.PolicySpec` then makes them
selectable by mode string everywhere.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.core.policy import SCHEDULERS
from repro.core.policy.events import ORIGIN_PRIMARY, ORIGIN_SBI, ORIGIN_SWI
from repro.core.sm import IssueRecord, StreamingMultiprocessor
from repro.core.warp import TimingWarp
from repro.timing.divergence import Split
from repro.timing.fetch import IBufEntry
from repro.timing.masks import popcount

#: Candidate tuple: (age key, warp, slot, split, entry).
Candidate = Tuple[Tuple[int, int], TimingWarp, int, Split, IBufEntry]

#: Stall-memo retry sentinel: blocked until a generation counter moves.
_NEVER = 1 << 62


class SchedulerBase:
    """Shared readiness checks and pseudo-random tie-breaking."""

    def __init__(self, sm: StreamingMultiprocessor) -> None:
        self.sm = sm
        self.config = sm.config
        self._rand_state = sm.config.seed & 0x7FFFFFFF or 1

    def tick(self, now: int) -> int:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------

    def _rand(self) -> int:
        self._rand_state = (self._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._rand_state

    def _ready_entry(
        self, warp: TimingWarp, slot: int, split: Split, now: int
    ) -> Optional[IBufEntry]:
        """Decoded, fresh, hazard-free instruction for this slot.

        Negative verdicts are memoized as an absolute stall cycle per
        hot slot (``warp.stall0``/``stall1``): the slot has no ready
        instruction before that cycle.  Every event that could wake the
        slot clears the field at its source — divergence-model changes
        via the model's ``on_change`` hook, scoreboard add/release and
        buffer fill/consume at their SM/fetch call sites — and purely
        time-gated stalls (decode delay, branch redirect) record their
        retry cycle.  Stalls are additionally capped at the model's
        ``_settle_wake`` so SBI's read-path settling (a sideband
        promotion re-ordering the hot pair with no mutation in between)
        is re-observed the cycle it can first happen.
        """
        if now < (warp.stall0 if slot == 0 else warp.stall1):
            return None
        retry = _NEVER
        entry = None
        if split.parked or split.pending:
            pass  # suspended or frozen: wait for a model mutation
        elif split.redirect_ready_at > now:
            retry = split.redirect_ready_at  # branch still resolving
        else:
            # Inlined FetchEngine.entry_for over the warp-bound ways
            # (PC tags are unique per buffer, so the first match is
            # the only one; if it is still decoding, its ready time
            # is the retry cycle).
            pc = split.pc
            for e in warp.ibuf:
                if e is not None and e.pc == pc:
                    if e.ready_at <= now:
                        entry = e
                    else:
                        retry = e.ready_at
                    break
        if entry is None:
            wake = warp.model._settle_wake
            if retry > wake:
                retry = wake
            if slot == 0:
                warp.stall0 = retry
            else:
                warp.stall1 = retry
            return None
        # Scoreboard check with the register-mask prefilter inlined:
        # no in-flight destination overlaps this instruction's
        # read/write set in the common case.
        scoreboard = warp.scoreboard
        instr = entry.instr
        if scoreboard._dst_mask & instr.hazard_mask:
            if not scoreboard.can_issue(
                instr, split.mask, slot if slot < 2 else 2
            ):
                entry = None
        elif instr.dst is not None and len(scoreboard.entries) >= scoreboard.capacity:
            entry = None
        if entry is None:
            retry = warp.model._settle_wake
            if slot == 0:
                warp.stall0 = retry
            else:
                warp.stall1 = retry
        return entry

    def _group_free(self, instr: Instruction, split: Split, now: int, co_issue: bool) -> bool:
        return (
            self.sm.backend.pick_group(instr.op_class, now, split.lane_mask, co_issue)
            is not None
        )

    def _sync_blocked(self, warp: TimingWarp, split: Split, instr: Instruction, now: int) -> bool:
        """SBI selective synchronization barrier (paper section 3.3).

        The *secondary* warp-split is suspended at a reconvergence
        marker while ``PCdiv < CPC1 < PCrec``; once ``CPC1`` leaves the
        divergent region (or reaches the marker and merges), it runs.
        """
        if not self.config.sbi_constraints or instr.sync_pcdiv is None:
            return False
        hot = warp.model.hot_splits(now)
        if len(hot) < 2 or hot[1] is not split:
            return False
        cpc1 = hot[0].pc
        if instr.sync_pcdiv < cpc1 < split.pc:
            self.sm.stats.sync_suspensions += 1
            return True
        return False

    def _oldest(self, candidates: List[Candidate]) -> Optional[Candidate]:
        return min(candidates, default=None, key=lambda c: c[0])


@SCHEDULERS.register("two_pool")
class BaselineScheduler(SchedulerBase):
    """Two independent pools of 32-wide warps, oldest-first."""

    def tick(self, now: int) -> int:
        issued = 0
        ready_entry = self._ready_entry
        pick_group = self.sm.backend.pick_group
        for pool in self.sm.live_warps_by_parity():
            best: Optional[Candidate] = None
            best_key = None
            for warp in pool:
                # Stall fast path first: a stalled warp skips even the
                # hot-split probe (safe because stalls are capped at the
                # model's settle wake — see _ready_entry).
                if warp.done or now < warp.stall0:
                    continue
                model = warp.model
                hot = model._hot_cache
                if hot is None:
                    hot = model.hot_splits(now)
                if not hot:
                    continue
                split = hot[0]
                entry = ready_entry(warp, 0, split, now)
                if entry is None:
                    continue
                key = (entry.fetch_cycle, warp.wid)
                if best_key is not None and key >= best_key:
                    continue
                if (
                    pick_group(entry.instr.op_class, now, split.lane_mask, False)
                    is None
                ):
                    continue
                best_key = key
                best = (key, warp, 0, split, entry)
            if best is not None:
                record = self.sm.issue(
                    best[1], best[2], best[3], best[4], now, ORIGIN_PRIMARY, co_issue=False
                )
                if record is not None:
                    issued += 1
        return issued


@SCHEDULERS.register("single_issue")
class Warp64Scheduler(SchedulerBase):
    """Single pool, one issue per cycle (thread-frontier reference)."""

    def tick(self, now: int) -> int:
        best: Optional[Candidate] = None
        ready_entry = self._ready_entry
        pick_group = self.sm.backend.pick_group
        for warp in self.sm.live_warps():
            if now < warp.stall0:
                continue
            model = warp.model
            hot = model._hot_cache
            if hot is None:
                hot = model.hot_splits(now)
            if not hot:
                continue
            split = hot[0]
            entry = ready_entry(warp, 0, split, now)
            if entry is None:
                continue
            key = (entry.fetch_cycle, warp.wid)
            if best is not None and key >= best[0]:
                continue
            if pick_group(entry.instr.op_class, now, split.lane_mask, False) is None:
                continue
            best = (key, warp, 0, split, entry)
        if best is None:
            return 0
        record = self.sm.issue(best[1], best[2], best[3], best[4], now, ORIGIN_PRIMARY, co_issue=False)
        return 1 if record is not None else 0


@SCHEDULERS.register("sbi_dual")
class SBIScheduler(SchedulerBase):
    """Dual front-end on one warp: co-issue CPC1 and CPC2 splits."""

    def tick(self, now: int) -> int:
        # Select the warp owning the oldest ready instruction in either slot.
        best: Optional[Candidate] = None
        ready_entry = self._ready_entry
        for warp in self.sm.live_warps():
            if now < warp.stall0 and now < warp.stall1:
                continue
            hot = warp.model.hot_splits(now)
            if len(hot) < 2 and now >= warp.stall1:
                # No secondary context: stall slot 1 so single-split
                # warps take the two-compare fast path above.  A second
                # hot split can only appear through a model change (the
                # on_change hook clears this) or a sideband promotion
                # (capped by the settle wake).
                warp.stall1 = warp.model._settle_wake
            for slot, split in enumerate(hot[:2]):
                entry = ready_entry(warp, slot, split, now)
                if entry is None:
                    continue
                if slot == 1 and self._sync_blocked(warp, split, entry.instr, now):
                    continue
                if not self._group_free(entry.instr, split, now, co_issue=slot == 1):
                    continue
                key = (entry.fetch_cycle, warp.wid)
                if best is None or key < best[0]:
                    best = (key, warp, slot, split, entry)
        if best is None:
            return 0
        warp = best[1]
        issued = 0
        primary: Optional[IssueRecord] = None
        hot = warp.model.hot_splits(now)
        if hot:
            split = hot[0]
            entry = self._ready_entry(warp, 0, split, now)
            if entry is not None:
                primary = self.sm.issue(warp, 0, split, entry, now, ORIGIN_PRIMARY, co_issue=False)
                if primary is not None:
                    issued += 1
        # Secondary front-end: re-read the heap (the primary may have
        # diverged or merged) and issue CPC2 when legal.
        hot = warp.model.hot_splits(now)
        if len(hot) > 1:
            split = hot[1]
            entry = self._ready_entry(warp, 1, split, now)
            if entry is not None and not self._sync_blocked(warp, split, entry.instr, now):
                one_divergence_ok = not (
                    entry.instr.is_branch and primary is not None and primary.diverged
                )
                if one_divergence_ok:
                    origin = ORIGIN_SBI
                    record = self.sm.issue(warp, 1, split, entry, now, origin, co_issue=True)
                    if record is not None:
                        issued += 1
        return issued


@SCHEDULERS.register("cascaded")
class CascadedScheduler(SchedulerBase):
    """SWI / SBI+SWI two-phase scheduler with conflict detection.

    Subclass hooks: :meth:`_pick_primary` chooses the warp whose CPC1
    issues next cycle (oldest-first here), :meth:`_secondary_key`
    ranks same-cycle lane-filling candidates (best-fit with a
    pseudo-random tie-break here, maximising is better).
    """

    def __init__(self, sm: StreamingMultiprocessor) -> None:
        super().__init__(sm)
        self.pending: Optional[Tuple[TimingWarp, Split, IBufEntry]] = None

    # -- picks -----------------------------------------------------------

    def _primary_ready(self, warp: TimingWarp, now: int) -> Optional[Candidate]:
        """This warp's CPC1 as a primary candidate, if eligible."""
        if now < warp.stall0:
            return None
        model = warp.model
        hot = model._hot_cache
        if hot is None:
            hot = model.hot_splits(now)
        if not hot:
            return None
        split = hot[0]
        entry = self._ready_entry(warp, 0, split, now)
        if entry is None:
            return None
        # The group must plausibly be free at the issue stage.
        group = self.sm.backend.pick_group(
            entry.instr.op_class, now, split.lane_mask, co_issue=False
        )
        if group is None and not any(
            g.free_at <= now + 1
            for g in self.sm.backend.candidates(entry.instr.op_class)
        ):
            return None
        return ((entry.fetch_cycle, warp.wid), warp, 0, split, entry)

    def _pick_primary(self, now: int) -> Optional[Candidate]:
        """Oldest ready CPC1 instruction (issues next cycle)."""
        best: Optional[Candidate] = None
        primary_ready = self._primary_ready
        for warp in self.sm.live_warps():
            cand = primary_ready(warp, now)
            if cand is not None and (best is None or cand[0] < best[0]):
                best = cand
        return best

    def _secondary_key(
        self, warp: TimingWarp, split: Split, entry: IBufEntry
    ) -> Tuple[int, ...]:
        """Ranking key of one SWI candidate (higher wins): best lane
        fit, pseudo-random among equals (paper section 4)."""
        return (popcount(split.mask), -self._rand())

    def _candidate_warps(self, primary: Optional[IssueRecord]) -> List[TimingWarp]:
        """Set-associative lookup window (paper section 4).

        A ``ways``-entry window of warp ids following the primary's,
        standing in for the banked instruction-buffer sets indexed by
        the primary warp id's low-order bits.  ``None`` = fully
        associative (search everything).
        """
        live = self.sm.live_warps()
        if primary is None or self.config.swi_ways is None:
            return live
        ways = self.config.swi_ways
        count = self.config.warp_count
        window = {(primary.warp.wid + 1 + i) % count for i in range(ways)}
        return [w for w in live if w.wid in window]

    def _pick_secondary(
        self, now: int, primary: Optional[IssueRecord]
    ) -> Optional[Tuple[str, TimingWarp, int, Split, IBufEntry]]:
        # SBI+SWI: prefer the same warp's CPC2 split.
        if primary is not None and self.config.uses_sbi:
            warp = primary.warp
            hot = warp.model.hot_splits(now)
            if len(hot) > 1:
                split = hot[1]
                entry = self._ready_entry(warp, 1, split, now)
                if (
                    entry is not None
                    and not self._sync_blocked(warp, split, entry.instr, now)
                    and not (entry.instr.is_branch and primary.diverged)
                    and self._group_free(entry.instr, split, now, co_issue=True)
                ):
                    return (ORIGIN_SBI, warp, 1, split, entry)
        # SWI: best-fit search over the candidate window.
        if primary is not None:
            self.sm.stats.swi_lookups += 1
        best = None
        best_key = None
        ready_entry = self._ready_entry
        for warp in self._candidate_warps(primary):
            if primary is not None and warp is primary.warp:
                continue
            if now < warp.stall0:
                continue
            model = warp.model
            hot = model._hot_cache
            if hot is None:
                hot = model.hot_splits(now)
            if not hot:
                continue
            split = hot[0]
            entry = ready_entry(warp, 0, split, now)
            if entry is None:
                continue
            if not self._group_free(entry.instr, split, now, co_issue=primary is not None):
                continue
            key = self._secondary_key(warp, split, entry)
            if best_key is None or key > best_key:
                best_key = key
                best = (ORIGIN_SWI if primary is not None else ORIGIN_PRIMARY, warp, 0, split, entry)
        return best

    # -- tick --------------------------------------------------------------

    def tick(self, now: int) -> int:
        issued = 0
        primary_rec: Optional[IssueRecord] = None

        # Issue stage: the primary picked last cycle issues now.
        if self.pending is not None:
            warp, split, entry = self.pending
            if warp.done or split.mask == 0 or split.pc != entry.pc:
                # The split died (merge/exit) or was redirected: void pick.
                split.pending = False
                # Unfreezing re-enables heap merges involving this
                # split: invalidate the model's memoized views.
                warp.model._touch()
                self.pending = None
            elif not warp.scoreboard.can_issue(
                entry.instr, split.mask, warp.model.slot_of(split, now)
            ):
                return 0  # hazard materialised; hold in the issue stage
            else:
                record = self.sm.issue(warp, 0, split, entry, now, ORIGIN_PRIMARY, co_issue=False)
                if record is None:
                    return 0  # structural stall: group still busy
                self.pending = None
                primary_rec = record
                issued += 1

        # Primary pick for the next cycle and secondary pick for this one
        # happen in decoupled schedulers "in parallel" — both observe the
        # same post-primary-issue state and may select the same
        # instruction; the conflict is detected a posteriori and the
        # primary's copy is discarded (paper section 4).
        nxt = self._pick_primary(now)
        secondary = self._pick_secondary(now, primary_rec)
        if secondary is not None and nxt is not None and secondary[4] is nxt[4]:
            self.sm.stats.scheduler_conflicts += 1
            nxt = None
        if nxt is not None:
            # Freeze the picked split before the secondary issues: a merge
            # triggered by that issue must not absorb or grow it while its
            # instruction sits in the scheduler pipeline stage.
            nxt[3].pending = True

        if secondary is not None:
            origin, warp, slot, split, entry = secondary
            record = self.sm.issue(
                warp, slot, split, entry, now, origin, co_issue=primary_rec is not None
            )
            if record is not None:
                issued += 1
                if origin == ORIGIN_SWI:
                    self.sm.stats.swi_hits += 1

        if nxt is not None:
            _, warp, _, split, entry = nxt
            self.pending = (warp, split, entry)
        return issued


class GreedyCascadedScheduler(CascadedScheduler):
    """Cascaded scheduler with a greedy-then-oldest secondary arbiter.

    Where the paper's SWI arbiter breaks best-fit ties pseudo-randomly
    (cheap in hardware), this variant is fully deterministic: widest
    split first, then the *oldest* fetched instruction, then the
    lowest warp id — trading arbiter wiring for starvation-freedom.
    """

    def _secondary_key(
        self, warp: TimingWarp, split: Split, entry: IBufEntry
    ) -> Tuple[int, ...]:
        return (popcount(split.mask), -entry.fetch_cycle, -warp.wid)


class LooseRoundRobinScheduler(CascadedScheduler):
    """Cascaded scheduler with a loose-round-robin primary arbiter.

    Instead of oldest-first, the primary pick rotates: scanning starts
    at the warp after the last picked one and takes the first ready
    CPC1 ("loose" because stalled warps are skipped, as in WaSP-style
    LRR scheduling).  The secondary arbiter is unchanged.
    """

    def __init__(self, sm: StreamingMultiprocessor) -> None:
        super().__init__(sm)
        self._last_wid = -1

    def _pick_primary(self, now: int) -> Optional[Candidate]:
        count = self.config.warp_count
        order = sorted(
            self.sm.live_warps(),
            key=lambda w: (w.wid - self._last_wid - 1) % count,
        )
        for warp in order:
            cand = self._primary_ready(warp, now)
            if cand is not None:
                self._last_wid = warp.wid
                return cand
        return None


SCHEDULERS.register("cascaded_greedy", GreedyCascadedScheduler)
SCHEDULERS.register("cascaded_rr", LooseRoundRobinScheduler)


def make_scheduler(config, sm: StreamingMultiprocessor) -> SchedulerBase:
    """Instantiate the scheduler policy named by ``config.policy``."""
    return SCHEDULERS.get(config.policy.scheduler)(sm)
