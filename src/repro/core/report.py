"""Shared stall diagnostics for the SM and device run loops.

Both :meth:`repro.core.sm.StreamingMultiprocessor.run` and
:class:`repro.core.gpu.GPUDevice` raise
:class:`~repro.core.sm.SimulationError` on a deadlock (no scheduled
events while warps are live) or a cycle-limit overrun; the message
bodies are built here so the two loops cannot drift apart.  Deadlock
reports include each SM's pending event heap (per-warp wake cycles) —
when a run wedges, the first question is always "what was the engine
waiting for".
"""

from __future__ import annotations

from typing import List


def overrun_report(kernel_name: str, limit: int, now: int, stats_like, sm_count: int = 0) -> str:
    """Cycle-limit message: progress counters plus a correct IPC.

    ``stats_like`` needs ``instructions_issued`` and
    ``thread_instructions`` (a :class:`~repro.timing.stats.Stats` or a
    device total); ``sm_count`` > 0 appends the device suffix.
    """
    cycles = max(now, 1)
    msg = (
        "kernel %s exceeded the %d-cycle limit at cycle %d: "
        "%d instructions issued, %d thread instructions so far "
        "(IPC %.2f, issue IPC %.3f)"
        % (
            kernel_name,
            limit,
            now,
            stats_like.instructions_issued,
            stats_like.thread_instructions,
            stats_like.thread_instructions / cycles,
            stats_like.instructions_issued / cycles,
        )
    )
    if sm_count:
        msg = "%s (%d SMs)" % (msg, sm_count)
    return msg


def deadlock_report(header: str, sms, now: int) -> str:
    """Per-SM warp states plus the pending event heap, one SM per block."""
    lines: List[str] = [header]
    for sm in sms:
        for warp in sm.live_warps():
            splits = ", ".join(repr(s) for s in warp.model.all_splits())
            lines.append(
                "  warp %d (cta %d): %s; scoreboard=%d"
                % (warp.wid, warp.cta_id, splits, len(warp.scoreboard))
            )
        heap = sm.event_heap_snapshot()
        lines.append(
            "  pending event heap (SM %d): %s"
            % (
                sm.sm_id,
                ", ".join("w%d@%d" % (wid, c) for c, wid in heap) or "empty",
            )
        )
    return "\n".join(lines)
