"""Configuration presets — paper Table 2.

===================  =========  =======  =======  =========
Parameter            Baseline   SBI      SWI      SBI+SWI
===================  =========  =======  =======  =========
Warps x width        32 x 32    16 x 64  16 x 64  16 x 64
Scheduler latency    1          1        2        2
Delivery latency     0          1        1        1
Execution latency    8          8        8        8
Scoreboard           6/warp     matrix   6/warp   matrix
Reconvergence        stack      HCT/CCT  frontier HCT/CCT
===================  =========  =======  =======  =========

``warp64`` is the Figure 7 reference: thread frontiers with 64-wide
warps and a single conventional scheduler.
"""

from __future__ import annotations

from typing import Optional

from repro.timing.config import GPUConfig, SMConfig


def baseline(**overrides) -> SMConfig:
    """Fermi-like baseline: 32 x 32 warps, two pools, IPDOM stack."""
    cfg = dict(
        mode="baseline",
        warp_count=32,
        warp_width=32,
        scheduler_latency=1,
        delivery_latency=0,
        scoreboard_kind="warp",
        lane_shuffle="identity",
    )
    cfg.update(overrides)
    return SMConfig(**cfg)


def warp64(**overrides) -> SMConfig:
    """Thread-frontier 64-wide reference point (Figure 7)."""
    cfg = dict(
        mode="warp64",
        warp_count=16,
        warp_width=64,
        scheduler_latency=1,
        delivery_latency=0,
        scoreboard_kind="warp",
        lane_shuffle="identity",
    )
    cfg.update(overrides)
    return SMConfig(**cfg)


def sbi(constraints: bool = True, **overrides) -> SMConfig:
    """Simultaneous Branch Interweaving."""
    cfg = dict(
        mode="sbi",
        warp_count=16,
        warp_width=64,
        scheduler_latency=1,
        delivery_latency=1,
        scoreboard_kind="matrix",
        sbi_constraints=constraints,
        lane_shuffle="identity",
    )
    cfg.update(overrides)
    return SMConfig(**cfg)


def swi(
    lane_shuffle: str = "xor_rev", ways: Optional[int] = None, **overrides
) -> SMConfig:
    """Simultaneous Warp Interweaving (``ways=None`` = fully assoc.)."""
    cfg = dict(
        mode="swi",
        warp_count=16,
        warp_width=64,
        scheduler_latency=2,
        delivery_latency=1,
        scoreboard_kind="warp",
        lane_shuffle=lane_shuffle,
        swi_ways=ways,
    )
    cfg.update(overrides)
    return SMConfig(**cfg)


def sbi_swi(
    constraints: bool = True,
    lane_shuffle: str = "xor_rev",
    ways: Optional[int] = None,
    **overrides,
) -> SMConfig:
    """Combined SBI + SWI (the paper's headline configuration)."""
    cfg = dict(
        mode="sbi_swi",
        warp_count=16,
        warp_width=64,
        scheduler_latency=2,
        delivery_latency=1,
        scoreboard_kind="matrix",
        sbi_constraints=constraints,
        lane_shuffle=lane_shuffle,
        swi_ways=ways,
    )
    cfg.update(overrides)
    return SMConfig(**cfg)


#: Figure 7 configuration set, in presentation order.
FIGURE7_CONFIGS = ("baseline", "sbi", "swi", "sbi_swi", "warp64")


def device(
    name: str = "sbi_swi",
    sm_count: int = 4,
    l2_size: int = 2 * 1024 * 1024,
    dram_partitions: int = 4,
    sm_overrides: Optional[dict] = None,
    **gpu_overrides,
) -> GPUConfig:
    """Device-scale preset: N copies of a named SM preset behind a
    shared 2 MB sectored L2 and address-partitioned DRAM.

    ``l2_size=0`` drops the L2 and gives each SM a private channel
    with its ``1/sm_count`` bandwidth share (the paper's per-SM
    memory model, scaled out).
    """
    sm = by_name(name, **(sm_overrides or {}))
    cfg = dict(
        sm=sm,
        sm_count=sm_count,
        l2_size=l2_size,
        dram_partitions=dram_partitions,
    )
    cfg.update(gpu_overrides)
    return GPUConfig(**cfg)


def by_name(name: str, **overrides) -> SMConfig:
    factory = {
        "baseline": baseline,
        "warp64": warp64,
        "sbi": sbi,
        "swi": swi,
        "sbi_swi": sbi_swi,
    }.get(name)
    if factory is None:
        raise ValueError("unknown preset %r" % name)
    return factory(**overrides)
