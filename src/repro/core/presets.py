"""Configuration presets — registry entries with paper Table 2 defaults.

===================  =========  =======  =======  =========
Parameter            Baseline   SBI      SWI      SBI+SWI
===================  =========  =======  =======  =========
Warps x width        32 x 32    16 x 64  16 x 64  16 x 64
Scheduler latency    1          1        2        2
Delivery latency     0          1        1        1
Execution latency    8          8        8        8
Scoreboard           6/warp     matrix   6/warp   matrix
Reconvergence        stack      HCT/CCT  frontier HCT/CCT
===================  =========  =======  =======  =========

``warp64`` is the Figure 7 reference: thread frontiers with 64-wide
warps and a single conventional scheduler.

Every preset is a :class:`~repro.core.policy.PolicySpec` in
:data:`repro.core.policy.POLICIES` carrying these defaults; the
functions below are thin conveniences over :func:`from_policy`, which
works for *any* registered policy — including third-party ones — so
``by_name`` needs no edits when a new microarchitecture is registered.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import POLICIES
from repro.timing.config import GPUConfig, SMConfig


def from_policy(name: str, **overrides) -> SMConfig:
    """An :class:`SMConfig` for any registered policy: the spec's
    preset defaults, with ``overrides`` applied on top."""
    spec = POLICIES.get(name)
    cfg = spec.preset_dict()
    cfg.update(overrides)
    return SMConfig(mode=spec.name, **cfg)


def baseline(**overrides) -> SMConfig:
    """Fermi-like baseline: 32 x 32 warps, two pools, IPDOM stack."""
    return from_policy("baseline", **overrides)


def warp64(**overrides) -> SMConfig:
    """Thread-frontier 64-wide reference point (Figure 7)."""
    return from_policy("warp64", **overrides)


def sbi(constraints: bool = True, **overrides) -> SMConfig:
    """Simultaneous Branch Interweaving."""
    return from_policy("sbi", sbi_constraints=constraints, **overrides)


def swi(
    lane_shuffle: str = "xor_rev", ways: Optional[int] = None, **overrides
) -> SMConfig:
    """Simultaneous Warp Interweaving (``ways=None`` = fully assoc.)."""
    return from_policy("swi", lane_shuffle=lane_shuffle, swi_ways=ways, **overrides)


def sbi_swi(
    constraints: bool = True,
    lane_shuffle: str = "xor_rev",
    ways: Optional[int] = None,
    **overrides,
) -> SMConfig:
    """Combined SBI + SWI (the paper's headline configuration)."""
    return from_policy(
        "sbi_swi",
        sbi_constraints=constraints,
        lane_shuffle=lane_shuffle,
        swi_ways=ways,
        **overrides,
    )


#: Figure 7 configuration set, in presentation order.
FIGURE7_CONFIGS = ("baseline", "sbi", "swi", "sbi_swi", "warp64")

#: Convenience wrappers keeping their historical keyword aliases
#: (``constraints``/``ways``); other names go straight to from_policy.
_ALIASED = {
    "baseline": baseline,
    "warp64": warp64,
    "sbi": sbi,
    "swi": swi,
    "sbi_swi": sbi_swi,
}


def device(
    name: str = "sbi_swi",
    sm_count: int = 4,
    l2_size: int = 2 * 1024 * 1024,
    dram_partitions: int = 4,
    sm_overrides: Optional[dict] = None,
    **gpu_overrides,
) -> GPUConfig:
    """Device-scale preset: N copies of a named SM preset behind a
    shared 2 MB sectored L2 and address-partitioned DRAM.

    ``l2_size=0`` drops the L2 and gives each SM a private channel
    with its ``1/sm_count`` bandwidth share (the paper's per-SM
    memory model, scaled out).
    """
    sm = by_name(name, **(sm_overrides or {}))
    cfg = dict(
        sm=sm,
        sm_count=sm_count,
        l2_size=l2_size,
        dram_partitions=dram_partitions,
    )
    cfg.update(gpu_overrides)
    return GPUConfig(**cfg)


def by_name(name: str, **overrides) -> SMConfig:
    """Resolve any registered policy name to a preset configuration."""
    factory = _ALIASED.get(name)
    if factory is not None:
        return factory(**overrides)
    return from_policy(name, **overrides)
