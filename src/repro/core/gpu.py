"""Whole-device model: many SMs behind a shared memory hierarchy.

A :class:`GPUDevice` shards one kernel grid across ``sm_count``
:class:`~repro.core.sm.StreamingMultiprocessor` instances.  CTAs are
handed out by a GigaThread-style :class:`CTADispatcher` — breadth
first at launch (one CTA per SM per round, as the hardware work
distributor balances occupancy) and then on demand as earlier CTAs
retire.  All SMs read and write the same functional
:class:`~repro.functional.memory.MemoryImage`, and their L1 misses
meet either in a shared :class:`~repro.timing.l2.L2System` (sectored,
set-associative, partitioned across DRAM channels) or, with the L2
disabled, in private per-SM channels carrying a ``1/sm_count`` share
of the device bandwidth.

The SMs are driven in lock-step: each global cycle every unfinished
SM takes one :meth:`~repro.core.sm.StreamingMultiprocessor.step`, and
idle stretches skip to the earliest event over the whole device.
Stepping order is fixed (SM 0 first), so runs are deterministic, and
a ``GPUConfig(sm_count=1)`` device executes the exact event sequence
of the single-SM :func:`~repro.core.simulator.simulate` path.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import Kernel
from repro.core.policy import MemEvent
from repro.core.policy.events import LEVEL_L2
from repro.core.report import deadlock_report, overrun_report
from repro.core.sm import SimulationError, StreamingMultiprocessor
from repro.timing.config import GPUConfig
from repro.timing.dram import DRAMChannel
from repro.timing.l2 import L2System
from repro.timing.stats import DeviceStats


class CTADispatcher:
    """GigaThread work distributor: hands out CTA ids in grid order.

    Shared by every SM of a device; with a single SM it degenerates to
    the sequential dispatch of the original single-SM model.
    """

    def __init__(self, grid_size: int) -> None:
        if grid_size < 0:
            raise ValueError("grid_size must be >= 0")
        self.grid_size = grid_size
        self.next_cta = 0

    def has_pending(self) -> bool:
        return self.next_cta < self.grid_size

    def acquire(self) -> Optional[int]:
        """Claim the next CTA id, or None once the grid is drained."""
        if self.next_cta >= self.grid_size:
            return None
        cta = self.next_cta
        self.next_cta += 1
        return cta

    @property
    def remaining(self) -> int:
        return self.grid_size - self.next_cta


class GPUDevice:
    """Cycle-level model of one GPU running one kernel launch."""

    def __init__(
        self,
        kernel: Kernel,
        memory: MemoryImage,
        config: GPUConfig,
        observers=None,
    ) -> None:
        self.kernel = kernel
        self.memory = memory
        self.config = config
        self.dispatcher = CTADispatcher(kernel.grid_size)
        self.l2: Optional[L2System] = L2System(config) if config.uses_l2 else None
        #: Cycle-level observers: shared with every SM (issue/retire/
        #: split/L1 events); the device itself reports L2 misses.
        self.observers = list(observers or ())
        self.sms: List[StreamingMultiprocessor] = []
        for i in range(config.sm_count):
            if self.l2 is not None:
                sink = self.l2
            else:
                sink = DRAMChannel(config.sm_dram_share, config.effective_dram_latency)
            self.sms.append(
                StreamingMultiprocessor(
                    kernel,
                    memory,
                    config.sm,
                    dispatcher=self.dispatcher,
                    memory_sink=sink,
                    sm_id=i,
                    observers=self.observers,
                )
            )

    # ------------------------------------------------------------------

    def _initial_launch(self) -> None:
        """Breadth-first fill: one CTA per SM per round until full."""
        launched = True
        while launched:
            launched = False
            for sm in self.sms:
                if sm.try_launch_cta(0):
                    launched = True

    def _deadlock_report(self, now: int) -> str:
        header = "device deadlock at cycle %d (%d SMs)" % (now, len(self.sms))
        return deadlock_report(
            header, [sm for sm in self.sms if not sm.finished], now
        )

    def run(self, engine: str = "event") -> DeviceStats:
        """Simulate to completion and return aggregated statistics.

        ``engine="event"`` (default) schedules SM steps from a device-
        level min-heap of per-SM wake events; ``engine="reference"``
        keeps the lock-step ``wake[]`` scan.  Both drive every SM
        through exactly the same stepped-cycle sequence (SM-index order
        within a cycle), so stats are byte-identical.
        """
        self._initial_launch()
        now = 0
        max_cycles = self.config.sm.max_cycles
        done = [False] * len(self.sms)
        # Per-SM wake times: an SM whose step made no progress cannot
        # do anything before its own next scheduled event (the same
        # assumption the single-SM loop's event skip rests on — no
        # cross-SM coupling creates work without a local event), so it
        # sleeps instead of burning a no-op step every device cycle.
        # None = no scheduled events at all.
        wake: List[Optional[int]] = [0] * len(self.sms)
        l2_misses_seen = 0
        # One errstate for the whole run: compiled plans deliberately
        # skip the per-issue ``np.errstate`` the interpreter pays.
        with np.errstate(all="ignore"):
            if engine == "event":
                return self._run_event_loop(max_cycles)
            if engine == "reference":
                return self._run_loop(now, max_cycles, done, wake, l2_misses_seen)
        raise ValueError("unknown engine %r" % (engine,))

    def _run_event_loop(self, max_cycles: int) -> DeviceStats:
        """Event-driven device clock: a heap of ``(wake, sm_index)``.

        Pops every SM due at the current cycle (sorted back into SM-
        index order so stepping matches the reference scan), steps
        them, and re-queues each at ``now + 1`` on progress or at its
        own next event otherwise.  The clock jumps straight to the heap
        minimum across globally-idle spans.
        """
        sms = self.sms
        done = [False] * len(sms)
        l2_misses_seen = 0
        observers = self.observers
        l2 = self.l2
        heap: List[tuple] = [(0, i) for i in range(len(sms))]
        now = 0
        while now < max_cycles:
            if not heap:
                raise SimulationError(self._deadlock_report(now))
            now = heap[0][0]
            if now >= max_cycles:
                break
            due: List[int] = []
            while heap and heap[0][0] <= now:
                due.append(heapq.heappop(heap)[1])
            # The reference loop steps SMs in index order each cycle.
            due.sort()
            for i in due:
                sm = sms[i]
                if done[i]:
                    continue
                if sm.step(now):
                    heapq.heappush(heap, (now + 1, i))
                else:
                    nxt = sm._heap_next_event(now)
                    if nxt is not None:
                        heapq.heappush(heap, (nxt, i))
                if observers and l2 is not None:
                    new_misses = l2.misses - l2_misses_seen
                    if new_misses:
                        l2_misses_seen = l2.misses
                        event = MemEvent(now, sm.sm_id, LEVEL_L2, new_misses)
                        for observer in observers:
                            observer.on_l2_miss(event)
                if sm.finished:
                    done[i] = True
                    sm.stats.cycles = now + 1
            if all(done):
                return self._collect(now + 1)
        totals = DeviceStats(cycles=now, sm_stats=[sm.stats for sm in sms])
        raise SimulationError(
            overrun_report(
                self.kernel.name, max_cycles, now, totals, sm_count=len(sms)
            )
        )

    def _run_loop(self, now, max_cycles, done, wake, l2_misses_seen) -> DeviceStats:
        while now < max_cycles:
            progressed = False
            for i, sm in enumerate(self.sms):
                if done[i] or wake[i] is None or wake[i] > now:
                    continue
                if sm.step(now):
                    progressed = True
                    wake[i] = now + 1
                else:
                    wake[i] = sm.next_event_cycle(now)
                if self.observers and self.l2 is not None:
                    new_misses = self.l2.misses - l2_misses_seen
                    if new_misses:
                        l2_misses_seen = self.l2.misses
                        event = MemEvent(now, sm.sm_id, LEVEL_L2, new_misses)
                        for observer in self.observers:
                            observer.on_l2_miss(event)
                if sm.finished:
                    done[i] = True
                    sm.stats.cycles = now + 1
            if all(done):
                return self._collect(now + 1)
            if progressed:
                now += 1
            else:
                candidates = [
                    wake[i]
                    for i in range(len(self.sms))
                    if not done[i] and wake[i] is not None and wake[i] > now
                ]
                if not candidates:
                    raise SimulationError(self._deadlock_report(now))
                now = min(candidates)
        totals = DeviceStats(cycles=now, sm_stats=[sm.stats for sm in self.sms])
        raise SimulationError(
            overrun_report(
                self.kernel.name, max_cycles, now, totals, sm_count=len(self.sms)
            )
        )

    def _collect(self, device_cycles: int) -> DeviceStats:
        stats = DeviceStats(
            cycles=device_cycles,
            sm_stats=[sm.stats for sm in self.sms],
        )
        if self.l2 is not None:
            stats.l2_accesses = self.l2.accesses
            stats.l2_hits = self.l2.hits
            stats.l2_misses = self.l2.misses
            stats.l2_sector_fills = self.l2.sector_fills
            stats.dram_bytes = self.l2.dram_bytes
        else:
            stats.dram_bytes = sum(sm.dram.bytes_transferred for sm in self.sms)
        return stats


def simulate_device(
    kernel: Kernel,
    memory: MemoryImage,
    config: Optional[GPUConfig] = None,
    observers=None,
    engine: str = "event",
) -> DeviceStats:
    """Run ``kernel`` on a whole device and return its :class:`DeviceStats`.

    ``memory`` is mutated, exactly as with :func:`simulate`; with the
    default ``GPUConfig()`` (one SM, no L2) the run is cycle-identical
    to ``simulate(kernel, memory, config.sm)``.  ``observers`` attaches
    cycle-level listeners to every SM (and to the shared L2).
    ``engine="reference"`` selects the lock-step cycle-scanning loop
    instead of the event heap — same stats, slower; it exists for
    differential testing.
    """
    if config is None:
        config = GPUConfig()
    device = GPUDevice(kernel, memory, config, observers=observers)
    return device.run(engine=engine)


__all__ = ["CTADispatcher", "GPUDevice", "simulate_device"]
