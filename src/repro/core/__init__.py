"""The paper's contribution: SBI/SWI schedulers, the SM pipeline, the
multi-SM device layer, and the public simulation API.

Typical use::

    from repro.core import presets, simulate
    stats = simulate(kernel, memory, presets.sbi_swi())
    print(stats.ipc)

or, for a whole device::

    from repro.core import presets, simulate_device
    dstats = simulate_device(kernel, memory, presets.device("sbi_swi", sm_count=4))
    print(dstats.ipc)
"""

from repro.core import policy
from repro.core import presets
from repro.core.gpu import CTADispatcher, GPUDevice, simulate_device
from repro.core.simulator import simulate, SimulationError
from repro.core.sm import StreamingMultiprocessor

__all__ = [
    "CTADispatcher",
    "GPUDevice",
    "SimulationError",
    "StreamingMultiprocessor",
    "policy",
    "presets",
    "simulate",
    "simulate_device",
]
