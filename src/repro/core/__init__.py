"""The paper's contribution: SBI/SWI schedulers, the SM pipeline, and
the public simulation API.

Typical use::

    from repro.core import presets, simulate
    stats = simulate(kernel, memory, presets.sbi_swi())
    print(stats.ipc)
"""

from repro.core import presets
from repro.core.simulator import simulate, SimulationError
from repro.core.sm import StreamingMultiprocessor

__all__ = ["StreamingMultiprocessor", "SimulationError", "presets", "simulate"]
