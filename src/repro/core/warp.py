"""Timing-side warp container binding functional and timing state."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.functional.executor import FunctionalWarp
from repro.functional.memory import SharedMemory
from repro.core.policy import DIVERGENCE
from repro.timing import lanes
from repro.timing.divergence import DivergenceModel
from repro.timing.masks import bools_to_mask
from repro.timing.scoreboard import ScoreboardBase, make_scoreboard


def make_divergence_model(config, launch_mask: int, perm: Sequence[int]) -> DivergenceModel:
    """Instantiate the divergence model named by ``config.policy``."""
    factory = DIVERGENCE.get(config.policy.divergence)
    return factory(config, launch_mask, perm)


class TimingWarp:
    """One resident warp: divergence model, scoreboard, register file."""

    __slots__ = (
        "wid",
        "cta_id",
        "config",
        "lane_perm",
        "fwarp",
        "launch_mask",
        "model",
        "scoreboard",
        "last_issue_cycle",
        "done",
        "wake_cache",
        "wake_version",
        "ibuf",
        "stall0",
        "stall1",
        "fetch_stall",
        "heap_wake",
        "wake_dirty",
        "matrix_sb",
    )

    def __init__(
        self,
        wid: int,
        cta_id: int,
        config,
        kernel,
        tids_in_cta: np.ndarray,
        shared: SharedMemory,
    ) -> None:
        self.wid = wid
        self.cta_id = cta_id
        self.config = config
        width = config.warp_width
        self.lane_perm = lanes.permutation(
            config.lane_shuffle, wid, width, config.warp_count
        )
        tids_in_cta = np.asarray(tids_in_cta, dtype=np.int64)
        launch_bools = tids_in_cta < kernel.cta_size
        self.fwarp = FunctionalWarp(
            warp_id=wid,
            width=width,
            nregs=kernel.nregs,
            # Clamp out-of-range tids (partial warps); those threads are
            # masked out of the launch mask and never execute.
            tids_in_cta=np.minimum(tids_in_cta, kernel.cta_size - 1),
            cta_index=cta_id,
            shared=shared,
        )
        self.fwarp.launch_mask = launch_bools
        self.launch_mask = bools_to_mask(launch_bools)
        self.model = make_divergence_model(config, self.launch_mask, self.lane_perm)
        self.scoreboard: ScoreboardBase = make_scoreboard(
            config.scoreboard_kind, config.scoreboard_entries
        )
        # Matrix scoreboards track per-context rows, so issue and
        # barrier release must feed them slot transitions (hoisted
        # from a per-issue string compare).
        self.matrix_sb = self.scoreboard.kind == "matrix"
        self.last_issue_cycle = -1
        self.done = False
        # Sorted split wake-up cycles, valid while the divergence
        # model's mutation counter equals ``wake_version`` (see
        # StreamingMultiprocessor.next_event_cycle).
        self.wake_cache: Sequence[int] = ()
        self.wake_version = -1
        # The warp's instruction-buffer ways, shared with (and owned
        # by) the SM's FetchEngine; bound at CTA launch so schedulers
        # probe the buffer without a dict lookup per readiness check.
        self.ibuf: Sequence = ()
        # Absolute stall cycles: hot slot N has no ready instruction
        # (stall0/stall1), or fetch has nothing to do (fetch_stall),
        # before the stored cycle.  Every event that could wake the
        # warp clears them — divergence-model changes through the
        # model's on_change hook (bound by the SM at launch), and
        # scoreboard add/release plus instruction-buffer fill/consume
        # at their call sites.  Time-gated stalls (decode, branch
        # redirect, the SBI settle wake) store their retry cycle.
        self.stall0 = 0
        self.stall1 = 0
        self.fetch_stall = 0
        # Event-heap bookkeeping (StreamingMultiprocessor._wake_heap):
        # the wake cycle of this warp's current valid heap entry (-1 =
        # none), and whether the warp is queued for a heap refresh.
        self.heap_wake = -1
        self.wake_dirty = False

    def retire_check(self) -> bool:
        if not self.done and self.model.done:
            self.done = True
        return self.done

    def __repr__(self) -> str:
        return "TimingWarp(wid=%d, cta=%d%s)" % (
            self.wid,
            self.cta_id,
            ", done" if self.done else "",
        )
