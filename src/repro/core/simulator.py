"""Public simulation entry points.

``simulate`` runs one kernel on a single SM (the paper's evaluation
setup); ``simulate_device`` — re-exported from
:mod:`repro.core.gpu` — runs it on a whole multi-SM device with a
shared memory hierarchy.
"""

from __future__ import annotations

from typing import Optional

from repro.functional.memory import MemoryImage
from repro.isa.builder import Kernel
from repro.core.gpu import simulate_device
from repro.core.sm import SimulationError, StreamingMultiprocessor
from repro.timing.config import SMConfig
from repro.timing.stats import Stats


def simulate(
    kernel: Kernel,
    memory: MemoryImage,
    config: Optional[SMConfig] = None,
    observers=None,
    compiled: bool = True,
    engine: str = "event",
) -> Stats:
    """Run ``kernel`` on one SM and return its :class:`Stats`.

    ``memory`` is mutated — read results back with
    :meth:`MemoryImage.read_array`.  The functional outcome is
    identical for every configuration; only the timing differs.
    ``observers`` attaches cycle-level listeners
    (:class:`repro.core.policy.Observer`), which never affect timing.
    ``compiled=False`` selects the reference interpreter instead of
    the compiled instruction plans, and ``engine="reference"`` the
    cycle-scanning run loop instead of the event heap — same stats,
    slower; both exist for differential testing.
    """
    if config is None:
        config = SMConfig()
    sm = StreamingMultiprocessor(
        kernel, memory, config, observers=observers, compiled=compiled
    )
    return sm.run(engine=engine)


__all__ = ["simulate", "simulate_device", "SimulationError"]
