"""Per-SM occupancy / IPC heatmap aggregator for device runs.

One row per SM, one column per time bin; every cell carries

* ``ipc`` — thread instructions retired into that bin divided by the
  bin's cycle span;
* ``occupancy`` — fraction of the bin's cycles on which the SM issued
  at least one instruction (front-end duty cycle);
* ``issues`` — raw instruction issues.

All SM rows share one :class:`~repro.analytics.binning.BinnedSeries`
axis, so they rebin together and the grid stays rectangular.  State is
O(SMs × bins) plus a per-cycle scratch set bounded by the SM count —
independent of how many cycles the device runs.  Works on single-SM
runs too (a one-row heatmap), so the same observer name serves
``simulate`` and ``simulate_device``.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.policy.observers import IssueEvent, Observer, OBSERVERS

from repro.analytics.binning import BinnedSeries
from repro.analytics.timeline import DEFAULT_BINS

#: Render palette, blank -> dense.
_SHADES = " .:-=+*#%@"


@OBSERVERS.register("heatmap")
class HeatmapAggregator(Observer):
    """Streaming SM × time grid of IPC and issue occupancy."""

    def __init__(self, bins: int = DEFAULT_BINS) -> None:
        self.series = BinnedSeries(bins, ())
        self.sm_ids: Set[int] = set()
        self._cycle = 0
        self._issued_now: Set[int] = set()  # SMs that issued this cycle
        self.total_cycles = 0
        self._finalized = False

    @staticmethod
    def _key(sm_id: int, metric: str) -> str:
        return "sm%d:%s" % (sm_id, metric)

    def _advance(self, cycle: int) -> None:
        if cycle == self._cycle:
            return
        for sm_id in self._issued_now:
            self.series.add(self._cycle, self._key(sm_id, "issue_cycles"))
        self._issued_now.clear()
        self._cycle = cycle

    def on_issue(self, event: IssueEvent) -> None:
        self._advance(event.cycle)
        if event.sm_id not in self.sm_ids:
            self.sm_ids.add(event.sm_id)
            for metric in ("issues", "threads", "issue_cycles"):
                self.series.ensure_series(self._key(event.sm_id, metric))
        self.series.add(event.cycle, self._key(event.sm_id, "issues"))
        self.series.add(event.cycle, self._key(event.sm_id, "threads"), event.active)
        self._issued_now.add(event.sm_id)

    def finalize(self, stats: object) -> None:
        if self._finalized:
            return
        self._finalized = True
        self._advance(self._cycle + 1)  # flush the scratch cycle
        total = int(getattr(stats, "cycles", 0) or 0)
        self.total_cycles = max(total, self._cycle)

    # -- outputs -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary (see README "Observability" for the
        schema)."""
        total = self.total_cycles or self._cycle + 1
        width = self.series.width
        used = self.series.used_bins(total)
        spans = [min(total, (i + 1) * width) - i * width for i in range(used)]
        sms = sorted(self.sm_ids)
        grid = {"ipc": [], "occupancy": [], "issues": []}
        for sm_id in sms:
            threads = self.series.trimmed(self._key(sm_id, "threads"), total)
            cycles = self.series.trimmed(self._key(sm_id, "issue_cycles"), total)
            grid["issues"].append(
                self.series.trimmed(self._key(sm_id, "issues"), total)
            )
            grid["ipc"].append(
                [round(t / span, 4) for t, span in zip(threads, spans)]
            )
            grid["occupancy"].append(
                [round(c / span, 4) for c, span in zip(cycles, spans)]
            )
        return {
            "kind": "heatmap",
            "version": 1,
            "bin_width": width,
            "bins": used,
            "total_cycles": total,
            "sms": sms,
            "ipc": grid["ipc"],
            "occupancy": grid["occupancy"],
            "issues": grid["issues"],
        }

    def render(self) -> str:
        """ASCII heatmap: one character cell per (SM, bin), shaded by
        IPC relative to the grid's maximum."""
        snap = self.snapshot()
        ipc: List[List[float]] = snap["ipc"]
        if not ipc:
            return "(no issues observed)"
        top = max((max(row) for row in ipc if row), default=0.0)
        lines = [
            "ipc heatmap (bin width %d cycles, %d SMs, peak %.2f ipc/bin)"
            % (snap["bin_width"], len(snap["sms"]), top)
        ]
        for sm_id, row in zip(snap["sms"], ipc):
            cells = []
            for value in row:
                index = 0
                if top > 0 and value > 0:
                    index = 1 + int((len(_SHADES) - 2) * value / top)
                cells.append(_SHADES[index])
            lines.append("sm%-3d |%s|" % (sm_id, "".join(cells)))
        mean_occ = [sum(col) / len(col) for col in zip(*snap["occupancy"])]
        lines.append(
            "occupancy (mean across SMs): %s"
            % " ".join("%.2f" % v for v in mean_occ)
        )
        return "\n".join(lines)
