"""Binned cycle-timeline aggregator: warp activity over the run.

Subscribes to the full observer event stream and maintains, per time
bin, the number of instruction issues, warp-cycles spent *active*
(issued this cycle) and *live* (launched, not yet retired), plus cache
misses, retires and splits.  Stalled and idle warp-cycles derive at
snapshot time::

    stalled = live - active          (live but not issuing)
    idle    = peak_live * span - live  (slots the run used at its
                                        high-water mark, now empty)

Memory is O(bins): the bin axis rebins by doubling
(:class:`~repro.analytics.binning.BinnedSeries`) and the only other
state is the live-warp set and the current-cycle scratch set, both
bounded by the machine's warp slots — never by cycle count.

A warp becomes live on its *first issue* (the event stream has no
launch event) and dies on retire; cycles between events integrate as
one span, so event-free memory stalls are accounted without per-cycle
work.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.policy.observers import (
    IssueEvent,
    MemEvent,
    Observer,
    OBSERVERS,
    RetireEvent,
    SplitEvent,
)

from repro.analytics.binning import BinnedSeries

#: Series kept per bin (``stalled``/``idle`` derive at snapshot time).
_SERIES = (
    "issues",
    "active_warp_cycles",
    "live_warp_cycles",
    "l1_misses",
    "l2_misses",
    "retires",
    "splits",
)

#: Default bin capacity of the in-tree aggregators.
DEFAULT_BINS = 64


@OBSERVERS.register("timeline")
class TimelineAggregator(Observer):
    """Streaming active/stalled/idle warp timeline (fixed memory)."""

    def __init__(self, bins: int = DEFAULT_BINS) -> None:
        self.series = BinnedSeries(bins, _SERIES)
        self._live: Set[Tuple[int, int]] = set()
        self._issuers: Set[Tuple[int, int]] = set()
        self._cycle = 0
        self.peak_live = 0
        self.total_cycles = 0
        self._finalized = False

    # -- event plumbing ------------------------------------------------

    def _advance(self, cycle: int) -> None:
        """Flush the scratch cycle when the stream moves past it."""
        if cycle == self._cycle:
            return
        self._flush_cycle()
        # Event-free gap: every live warp sat stalled through it.
        self.series.add_span(
            self._cycle + 1, cycle, "live_warp_cycles", len(self._live)
        )
        self._cycle = cycle

    def _flush_cycle(self) -> None:
        if self._issuers:
            self.series.add(self._cycle, "active_warp_cycles", len(self._issuers))
            self._issuers.clear()
        if self._live:
            self.series.add(self._cycle, "live_warp_cycles", len(self._live))

    def on_issue(self, event: IssueEvent) -> None:
        self._advance(event.cycle)
        self.series.add(event.cycle, "issues")
        warp = (event.sm_id, event.wid)
        self._live.add(warp)
        self._issuers.add(warp)
        if len(self._live) > self.peak_live:
            self.peak_live = len(self._live)

    def on_retire(self, event: RetireEvent) -> None:
        self._advance(event.cycle)
        self.series.add(event.cycle, "retires")
        warp = (event.sm_id, event.wid)
        if warp in self._live:
            # The warp occupied its slot through the retire cycle, but
            # the flush at the next advance only sees the post-retire
            # set — credit that last cycle here.
            self.series.add(event.cycle, "live_warp_cycles")
            self._live.discard(warp)

    def on_split(self, event: SplitEvent) -> None:
        self._advance(event.cycle)
        self.series.add(event.cycle, "splits")

    def on_l1_miss(self, event: MemEvent) -> None:
        self._advance(event.cycle)
        self.series.add(event.cycle, "l1_misses", event.count)

    def on_l2_miss(self, event: MemEvent) -> None:
        self._advance(event.cycle)
        self.series.add(event.cycle, "l2_misses", event.count)

    def finalize(self, stats: object) -> None:
        if self._finalized:
            return
        self._finalized = True
        self._flush_cycle()
        total = int(getattr(stats, "cycles", 0) or 0)
        total = max(total, self._cycle + 1)
        self.series.add_span(
            self._cycle + 1, total, "live_warp_cycles", len(self._live)
        )
        self.total_cycles = total

    # -- outputs -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary (see README "Observability" for the
        schema)."""
        total = self.total_cycles or self._cycle + 1
        width = self.series.width
        used = self.series.used_bins(total)
        active = self.series.trimmed("active_warp_cycles", total)
        live = self.series.trimmed("live_warp_cycles", total)
        spans = [
            min(total, (i + 1) * width) - i * width for i in range(used)
        ]
        stalled = [max(0, lv - ac) for lv, ac in zip(live, active)]
        idle = [
            max(0, self.peak_live * span - lv) for span, lv in zip(spans, live)
        ]
        return {
            "kind": "timeline",
            "version": 1,
            "bin_width": width,
            "bins": used,
            "total_cycles": total,
            "peak_live_warps": self.peak_live,
            "series": {
                "issues": self.series.trimmed("issues", total),
                "active_warp_cycles": active,
                "stalled_warp_cycles": stalled,
                "idle_warp_cycles": idle,
                "l1_misses": self.series.trimmed("l1_misses", total),
                "l2_misses": self.series.trimmed("l2_misses", total),
                "retires": self.series.trimmed("retires", total),
                "splits": self.series.trimmed("splits", total),
            },
        }

    def render(self) -> str:
        """Text table of the timeline (one row per used bin)."""
        from repro.analysis.report import format_table

        snap = self.snapshot()
        series = snap["series"]
        width = snap["bin_width"]
        rows: List[List[object]] = []
        for i in range(snap["bins"]):
            rows.append(
                [
                    i * width,
                    series["issues"][i],
                    series["active_warp_cycles"][i],
                    series["stalled_warp_cycles"][i],
                    series["idle_warp_cycles"][i],
                    series["l1_misses"][i],
                    series["l2_misses"][i],
                ]
            )
        return format_table(
            ["cycle", "issues", "active", "stalled", "idle", "l1_miss", "l2_miss"],
            rows,
            title="timeline (bin width %d cycles, peak %d live warps)"
            % (width, self.peak_live),
        )
