"""Issue-origin breakdown aggregator (primary / SBI / SWI).

Counts instruction issues and thread instructions by issue origin —
the paper's headline split between the primary scheduler slot and the
two interweaving mechanisms — overall and per SM, and tracks the peak
number of issues any single SM performed in one cycle.  That peak is
the observable the :mod:`repro.hwcost` front-end validation checks
against a policy's modeled issue width: an observed rate above the
modeled width means the simulator issued through hardware the cost
model never paid for.

State is O(SMs): fixed-size origin counters per SM plus a one-cycle
scratch map, nothing proportional to cycles or events.
"""

from __future__ import annotations

from typing import Dict

from repro.core.policy.events import ISSUE_ORIGINS
from repro.core.policy.observers import IssueEvent, Observer, OBSERVERS


@OBSERVERS.register("origins")
class OriginAggregator(Observer):
    """Streaming issue counts by origin, with per-SM peak issue rate."""

    def __init__(self) -> None:
        self.issues: Dict[str, int] = {o: 0 for o in ISSUE_ORIGINS}
        self.threads: Dict[str, int] = {o: 0 for o in ISSUE_ORIGINS}
        self.per_sm: Dict[int, Dict[str, int]] = {}
        self.peak_per_cycle: Dict[int, int] = {}
        self._cycle = 0
        self._issued_now: Dict[int, int] = {}  # sm_id -> issues this cycle
        self.total_cycles = 0
        self._finalized = False

    def _flush_cycle(self) -> None:
        for sm_id, count in self._issued_now.items():
            if count > self.peak_per_cycle.get(sm_id, 0):
                self.peak_per_cycle[sm_id] = count
        self._issued_now.clear()

    def on_issue(self, event: IssueEvent) -> None:
        if event.cycle != self._cycle:
            self._flush_cycle()
            self._cycle = event.cycle
        if event.origin not in self.issues:
            raise ValueError(
                "issue origin %r is outside the closed vocabulary %s"
                % (event.origin, ISSUE_ORIGINS)
            )
        self.issues[event.origin] += 1
        self.threads[event.origin] += event.active
        per = self.per_sm.setdefault(
            event.sm_id, {o: 0 for o in ISSUE_ORIGINS}
        )
        per[event.origin] += 1
        self._issued_now[event.sm_id] = self._issued_now.get(event.sm_id, 0) + 1

    def finalize(self, stats: object) -> None:
        if self._finalized:
            return
        self._finalized = True
        self._flush_cycle()
        total = int(getattr(stats, "cycles", 0) or 0)
        self.total_cycles = max(total, self._cycle + 1)

    # -- outputs -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary (see README "Observability" for the
        schema)."""
        return {
            "kind": "origins",
            "version": 1,
            "total_cycles": self.total_cycles or self._cycle + 1,
            "issues": dict(self.issues),
            "threads": dict(self.threads),
            "per_sm": {
                str(sm_id): dict(per)
                for sm_id, per in sorted(self.per_sm.items())
            },
            "peak_issues_per_cycle": {
                str(sm_id): peak
                for sm_id, peak in sorted(self.peak_per_cycle.items())
            },
        }

    def render(self) -> str:
        """Text table of the origin split plus the per-SM issue peaks."""
        from repro.analysis.report import format_table

        total = sum(self.issues.values())
        rows = []
        for origin in ISSUE_ORIGINS:
            count = self.issues[origin]
            share = 100.0 * count / total if total else 0.0
            rows.append([origin, count, self.threads[origin], share])
        table = format_table(
            ["origin", "issues", "threads", "share%"],
            rows,
            title="issue origins (%d issues)" % total,
        )
        peaks = ", ".join(
            "sm%d=%d" % (sm_id, peak)
            for sm_id, peak in sorted(self.peak_per_cycle.items())
        )
        return "%s\npeak issues/cycle: %s" % (table, peaks or "(none)")
