"""Fixed-capacity cycle binning with power-of-two rebinning.

The streaming aggregators must hold O(bins) state no matter how long a
simulation runs, yet they cannot know the final cycle count up front.
:class:`BinnedSeries` squares that circle the classic way: a *fixed*
number of bins whose width starts at one cycle and doubles whenever an
event lands past the last bin — each doubling pairwise-sums the
existing counters in place, so no history is ever replayed and no raw
event is ever buffered.  Every series sharing one :class:`BinnedSeries`
rebins in lockstep, which keeps multi-metric timelines (and per-SM
heatmap rows) aligned on a single time axis.
"""

from __future__ import annotations

from typing import Dict, Iterable, List


class BinnedSeries:
    """Named per-cycle-bin counters over one shared, growing time axis.

    ``bin_count`` must be even (doublings merge bins pairwise).  Bins
    cover ``[i * width, (i + 1) * width)`` cycles; ``width`` is always
    a power of two.
    """

    def __init__(self, bin_count: int, names: Iterable[str]) -> None:
        if bin_count < 2 or bin_count % 2:
            raise ValueError(
                "bin_count must be an even number >= 2, got %r" % (bin_count,)
            )
        self.bin_count = bin_count
        self.width = 1
        self.series: Dict[str, List[int]] = {
            name: [0] * bin_count for name in names
        }

    def ensure_series(self, name: str) -> List[int]:
        """The counters for ``name``, created zeroed on first use
        (new series join at the current width, so all stay aligned)."""
        arr = self.series.get(name)
        if arr is None:
            arr = [0] * self.bin_count
            self.series[name] = arr
        return arr

    def _ensure_capacity(self, cycle: int) -> None:
        while cycle >= self.bin_count * self.width:
            half = self.bin_count // 2
            for arr in self.series.values():
                for i in range(half):
                    arr[i] = arr[2 * i] + arr[2 * i + 1]
                for i in range(half, self.bin_count):
                    arr[i] = 0
            self.width *= 2

    def add(self, cycle: int, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the bin containing ``cycle``."""
        self._ensure_capacity(cycle)
        self.series[name][cycle // self.width] += amount

    def add_span(self, start: int, end: int, name: str, weight: int) -> None:
        """Add ``weight`` per cycle over ``[start, end)``.

        Spans integrate event-free stretches (e.g. warps stalled on
        memory) in one call instead of one add per cycle, so the cost
        is O(bins touched), not O(cycles).
        """
        if end <= start or weight == 0:
            return
        self._ensure_capacity(end - 1)
        arr = self.series[name]
        cycle = start
        while cycle < end:
            index = cycle // self.width
            bin_end = (index + 1) * self.width
            step = min(end, bin_end) - cycle
            arr[index] += weight * step
            cycle += step

    def used_bins(self, total_cycles: int) -> int:
        """How many leading bins ``total_cycles`` of run actually fill."""
        if total_cycles <= 0:
            return 0
        return min(self.bin_count, -(-total_cycles // self.width))

    def trimmed(self, name: str, total_cycles: int) -> List[int]:
        """Copy of ``name``'s counters cut to :meth:`used_bins`."""
        return self.series[name][: self.used_bins(total_cycles)]
