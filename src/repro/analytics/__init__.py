"""repro.analytics — streaming, bounded-memory run analytics.

Online aggregators built on the cycle-level observer hooks
(:mod:`repro.core.policy.observers`).  Each aggregator consumes the
event stream as the machine runs, holds a *fixed* amount of state
(bins and SMs, never cycles or raw events), and produces two outputs:

* :meth:`snapshot` — a JSON-ready dict (the ``repro analyze --json``
  artifact; schemas documented in README "Observability");
* :meth:`render` — a human-readable text table.

Importing this package registers the in-tree aggregators in the
observer registry, so the names work everywhere observers do::

    repro analyze --workload bfs --config sbi_swi
    repro sweep ... --observer timeline
    Engine(observers=["origins"]).run(spec)

===========  ========================================  ==============
name         what it aggregates                        state
===========  ========================================  ==============
``timeline``  active/stalled/idle warps per cycle bin  O(bins)
``heatmap``   per-SM IPC + issue occupancy grid        O(SMs × bins)
``origins``   issues by origin, peak issues/cycle      O(SMs)
===========  ========================================  ==============

Aggregators see every event exactly once: observed cells always
simulate (the engine bypasses the result cache), and
``finalize(stats)`` closes the last open interval after the run.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.policy.observers import Observer, OBSERVERS

from repro.analytics.binning import BinnedSeries
from repro.analytics.heatmap import HeatmapAggregator
from repro.analytics.origins import OriginAggregator
from repro.analytics.timeline import DEFAULT_BINS, TimelineAggregator

__all__ = [
    "BinnedSeries",
    "DEFAULT_BINS",
    "HeatmapAggregator",
    "OriginAggregator",
    "TimelineAggregator",
    "make_aggregators",
]


def make_aggregators(
    names: Sequence[str], bins: Optional[int] = None
) -> Dict[str, Observer]:
    """Instantiate registered observers by name.

    ``bins`` overrides the bin capacity of aggregators that take one;
    observers without a ``bins`` parameter (e.g. ``counter``,
    ``origins``) are constructed bare.
    """
    out: Dict[str, Observer] = {}
    for name in names:
        cls = OBSERVERS.get(name)
        if bins is not None:
            try:
                out[name] = cls(bins=bins)
                continue
            except TypeError:
                pass
        out[name] = cls()
    return out
