"""Vectorised per-warp instruction execution.

The :class:`Executor` computes the architectural effect of one
instruction for an arbitrary subset of a warp's threads (an execution
mask), which is exactly the contract SBI/SWI need: warp-splits of the
same warp execute the same register file through disjoint masks.

Registers are ``float64[nregs, warp_width]``.  Integer semantics
(logic, shifts, addressing) round-trip through ``int64`` which is exact
for ``|x| < 2**53``.

Two execution paths produce bit-identical state:

* the **compiled** path (default) specialises each program instruction
  into a closure at first issue (:mod:`repro.functional.compiled`) —
  operands pre-resolved, compute function bound directly;
* the **reference interpreter** (``Executor(..., compiled=False)``)
  dispatches per issue, kept as the executable specification and used
  by the differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.functional.memory import MemoryImage, SharedMemory
from repro.isa.builder import Kernel
from repro.isa.instructions import (
    CmpOp,
    Instruction,
    MemSpace,
    Op,
    Operand,
    OperandKind,
)
from repro.timing.masks import bools_to_mask, mask_to_bools


class ExecutionError(Exception):
    """Raised on semantic errors (bad operand counts, unknown ops...)."""


@dataclass(slots=True)
class ExecOutcome:
    """Result of executing one instruction under a mask.

    ``active`` is the effective mask (issue mask AND predicate); for
    branches ``taken`` holds the per-thread outcome over the full warp
    (only meaningful where ``active``); memory operations expose their
    byte ``addresses`` (full-warp array, meaningful where ``active``)
    and the address ``space`` so the timing model can coalesce.
    ``active_mask`` is the bit-mask form of ``active``, filled by
    :meth:`Executor.execute_masked` so the timing model never converts
    a bool array back to an integer on the hot path.
    """

    active: np.ndarray
    taken: Optional[np.ndarray] = None
    addresses: Optional[np.ndarray] = None
    space: Optional[MemSpace] = None
    active_mask: Optional[int] = None

    @property
    def is_memory(self) -> bool:
        return self.addresses is not None


class FunctionalWarp:
    """Architectural state of one warp (registers + thread identity)."""

    __slots__ = (
        "warp_id",
        "width",
        "regs",
        "tids_in_cta",
        "cta_index",
        "shared",
        "launch_mask",
        "tids_f64",
        "lanes_f64",
        "ctaid_f64",
        "warpid_f64",
    )

    def __init__(
        self,
        warp_id: int,
        width: int,
        nregs: int,
        tids_in_cta: np.ndarray,
        cta_index: int,
        shared: SharedMemory,
    ) -> None:
        self.warp_id = warp_id
        self.width = width
        self.regs = np.zeros((nregs, width), dtype=np.float64)
        self.tids_in_cta = np.asarray(tids_in_cta, dtype=np.int64)
        self.cta_index = cta_index
        self.shared = shared
        self.launch_mask = np.ones(width, dtype=bool)
        if len(self.tids_in_cta) != width:
            raise ExecutionError("tids array must have warp width entries")
        # Special-register vectors are launch constants: computed once
        # and frozen for the compiled operand getters.
        self.tids_f64 = self.tids_in_cta.astype(np.float64)
        self.tids_f64.setflags(write=False)
        self.lanes_f64 = (self.tids_in_cta % width).astype(np.float64)
        self.lanes_f64.setflags(write=False)
        self.ctaid_f64 = np.float64(cta_index)
        self.warpid_f64 = np.float64(warp_id)


class Executor:
    """Executes instructions for warps of one kernel launch.

    ``compiled=True`` (the default) lazily specialises each program
    instruction into a closure on first issue; ``compiled=False``
    selects the reference interpreter.  Both paths produce identical
    architectural state — instructions outside the kernel program
    (``pc`` unset, or a foreign instruction object) always take the
    interpreter.
    """

    def __init__(
        self, kernel: Kernel, memory: MemoryImage, compiled: bool = True
    ) -> None:
        self.kernel = kernel
        self.memory = memory
        self.compiled = compiled
        self._instrs = kernel.program.instructions
        self._plans = [None] * len(self._instrs) if compiled else None
        self._plan_width: Optional[int] = None
        self._bools_memo: dict = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def execute(
        self, instr: Instruction, warp: FunctionalWarp, mask: np.ndarray
    ) -> ExecOutcome:
        """Apply ``instr`` for the threads in ``mask`` (bool[width]).

        Compiled plans are errstate-free (the SM run loops enter one
        ``np.errstate`` for a whole simulation), so this generic entry
        wraps the call to keep direct use warning-silent like the
        interpreter.
        """
        plans = self._plans
        if plans is not None:
            pc = instr.pc
            if 0 <= pc < len(plans) and self._instrs[pc] is instr:
                if warp.width != self._plan_width:
                    if self._plan_width is not None:
                        return self._execute_interp(instr, warp, mask)
                    self._plan_width = warp.width
                plan = plans[pc]
                if plan is None:
                    from repro.functional.compiled import compile_guarded

                    plan = compile_guarded(
                        instr, self.kernel, self.memory, warp.width
                    )
                    plans[pc] = plan
                with np.errstate(all="ignore"):
                    return plan(warp, mask)
        return self._execute_interp(instr, warp, mask)

    def execute_masked(
        self, instr: Instruction, warp: FunctionalWarp, mask: int
    ) -> ExecOutcome:
        """:meth:`execute` for a bit-mask, with ``active_mask`` filled.

        The timing model's hot path: the bool expansion is interned,
        for unpredicated instructions (the common case) the active
        bit-mask is the issue mask itself — no reverse conversion —
        and the compiled-plan dispatch of :meth:`execute` is inlined
        (one call frame per issue is measurable).
        """
        width = warp.width
        plans = self._plans
        if plans is not None and width == self._plan_width:
            # Int-keyed bool-expansion memo: same results as the shared
            # (mask, width) intern, but an int key hashes to itself —
            # faster on a lookup that runs once per issued instruction.
            memo = self._bools_memo
            bools = memo.get(mask)
            if bools is None:
                if len(memo) >= 1 << 14:
                    memo.clear()
                bools = memo[mask] = mask_to_bools(mask, width)
            pc = instr.pc
            if 0 <= pc < len(plans) and self._instrs[pc] is instr:
                plan = plans[pc]
                if plan is None:
                    from repro.functional.compiled import compile_guarded

                    plan = plans[pc] = compile_guarded(
                        instr, self.kernel, self.memory, width
                    )
                outcome = plan(warp, bools)
            else:
                outcome = self._execute_interp(
                    instr, warp, mask_to_bools(mask, width)
                )
        else:
            outcome = self.execute(instr, warp, mask_to_bools(mask, width))
        if instr.pred is None:
            outcome.active_mask = mask
        else:
            outcome.active_mask = bools_to_mask(outcome.active)
        return outcome

    # ------------------------------------------------------------------
    # Operand evaluation
    # ------------------------------------------------------------------

    def _value(self, operand: Operand, warp: FunctionalWarp) -> np.ndarray:
        kind = operand.kind
        if kind is OperandKind.REG:
            return warp.regs[operand.value]
        if kind is OperandKind.IMM:
            return np.float64(operand.value)
        name = operand.value
        if isinstance(name, tuple):  # ("param", i)
            index = name[1]
            if index >= len(self.kernel.params):
                raise ExecutionError(
                    "kernel %s launched with %d params, wants param%d"
                    % (self.kernel.name, len(self.kernel.params), index)
                )
            return np.float64(self.kernel.params[index])
        if name == "tid":
            return warp.tids_in_cta.astype(np.float64)
        if name == "ctaid":
            return np.float64(warp.cta_index)
        if name == "ntid":
            return np.float64(self.kernel.cta_size)
        if name == "nctaid":
            return np.float64(self.kernel.grid_size)
        if name == "laneid":
            return (warp.tids_in_cta % warp.width).astype(np.float64)
        if name == "warpid":
            return np.float64(warp.warp_id)
        raise ExecutionError("unknown special %r" % (name,))

    @staticmethod
    def _as_int(values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64).astype(np.int64)

    def _effective_mask(
        self, instr: Instruction, warp: FunctionalWarp, mask: np.ndarray
    ) -> np.ndarray:
        if instr.pred is None:
            return mask
        pred = warp.regs[instr.pred] != 0
        if instr.pred_neg:
            pred = ~pred
        return mask & pred

    # ------------------------------------------------------------------
    # Reference interpreter
    # ------------------------------------------------------------------

    def _execute_interp(
        self, instr: Instruction, warp: FunctionalWarp, mask: np.ndarray
    ) -> ExecOutcome:
        """Per-issue dispatch: the executable specification of the ISA."""
        active = self._effective_mask(instr, warp, mask)
        op = instr.op
        if op is Op.BRA:
            return self._branch(instr, warp, active)
        if op in (Op.BAR, Op.EXIT, Op.NOP):
            return ExecOutcome(active=active)
        if instr.is_memory:
            return self._memory(instr, warp, active)
        return self._arith(instr, warp, active)

    def _branch(
        self, instr: Instruction, warp: FunctionalWarp, active: np.ndarray
    ) -> ExecOutcome:
        if instr.srcs:
            cond = self._value(instr.srcs[0], warp)
            taken = np.broadcast_to(cond, (warp.width,)) != 0
            if instr.pred_neg:
                taken = ~taken
            taken = np.array(taken)
        else:
            taken = np.ones(warp.width, dtype=bool)
        return ExecOutcome(active=active, taken=taken)

    def _arith(
        self, instr: Instruction, warp: FunctionalWarp, active: np.ndarray
    ) -> ExecOutcome:
        srcs = tuple(self._value(s, warp) for s in instr.srcs)
        with np.errstate(all="ignore"):
            result = self._compute(instr, srcs)
        if instr.dst is not None:
            dst = warp.regs[instr.dst]
            result = np.broadcast_to(np.asarray(result, dtype=np.float64), dst.shape)
            dst[active] = result[active]
        return ExecOutcome(active=active)

    def _compute(self, instr: Instruction, srcs: Tuple[np.ndarray, ...]):
        op = instr.op
        if op is Op.MOV:
            return srcs[0]
        if op is Op.ADD:
            return srcs[0] + srcs[1]
        if op is Op.SUB:
            return srcs[0] - srcs[1]
        if op is Op.MUL:
            return srcs[0] * srcs[1]
        if op is Op.MAD:
            return srcs[0] * srcs[1] + srcs[2]
        if op is Op.MIN:
            return np.minimum(srcs[0], srcs[1])
        if op is Op.MAX:
            return np.maximum(srcs[0], srcs[1])
        if op is Op.AND:
            return (self._as_int(srcs[0]) & self._as_int(srcs[1])).astype(np.float64)
        if op is Op.OR:
            return (self._as_int(srcs[0]) | self._as_int(srcs[1])).astype(np.float64)
        if op is Op.XOR:
            return (self._as_int(srcs[0]) ^ self._as_int(srcs[1])).astype(np.float64)
        if op is Op.NOT:
            return (~self._as_int(srcs[0])).astype(np.float64)
        if op is Op.SHL:
            return (self._as_int(srcs[0]) << self._as_int(srcs[1])).astype(np.float64)
        if op is Op.SHR:
            return (self._as_int(srcs[0]) >> self._as_int(srcs[1])).astype(np.float64)
        if op is Op.ABS:
            return np.abs(srcs[0])
        if op is Op.NEG:
            return -srcs[0]
        if op is Op.FLOOR:
            return np.floor(srcs[0])
        if op is Op.I2F or op is Op.F2I:
            # Register values are numeric either way; F2I truncates.
            if op is Op.F2I:
                return np.trunc(srcs[0])
            return srcs[0]
        if op is Op.SETP:
            return self._compare(instr.cmp, srcs[0], srcs[1])
        if op is Op.SEL:
            return np.where(np.asarray(srcs[0]) != 0, srcs[1], srcs[2])
        if op is Op.RCP:
            return 1.0 / srcs[0]
        if op is Op.DIV:
            return srcs[0] / srcs[1]
        if op is Op.SQRT:
            return np.sqrt(srcs[0])
        if op is Op.RSQRT:
            return 1.0 / np.sqrt(srcs[0])
        if op is Op.SIN:
            return np.sin(srcs[0])
        if op is Op.COS:
            return np.cos(srcs[0])
        if op is Op.EX2:
            return np.exp2(srcs[0])
        if op is Op.LG2:
            return np.log2(srcs[0])
        raise ExecutionError("unhandled op %r" % op)

    @staticmethod
    def _compare(cmp: CmpOp, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if cmp is CmpOp.LT:
            out = np.less(a, b)
        elif cmp is CmpOp.LE:
            out = np.less_equal(a, b)
        elif cmp is CmpOp.GT:
            out = np.greater(a, b)
        elif cmp is CmpOp.GE:
            out = np.greater_equal(a, b)
        elif cmp is CmpOp.EQ:
            out = np.equal(a, b)
        elif cmp is CmpOp.NE:
            out = np.not_equal(a, b)
        else:
            raise ExecutionError("unknown comparison %r" % cmp)
        return np.asarray(out, dtype=np.float64)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def _addresses(self, instr: Instruction, warp: FunctionalWarp) -> np.ndarray:
        base = self._value(instr.srcs[0], warp)
        n_addr_srcs = len(instr.srcs) - (1 if instr.writes_memory else 0)
        addr = np.broadcast_to(np.asarray(base, dtype=np.float64), (warp.width,)).copy()
        if n_addr_srcs >= 2:
            addr = addr + self._value(instr.srcs[1], warp)
        if instr.offset:
            addr = addr + instr.offset
        return self._as_int(addr)

    def _space_of(self, instr: Instruction, warp: FunctionalWarp) -> MemoryImage:
        if instr.space is MemSpace.SHARED:
            return warp.shared
        return self.memory

    def _memory(
        self, instr: Instruction, warp: FunctionalWarp, active: np.ndarray
    ) -> ExecOutcome:
        addrs = self._addresses(instr, warp)
        mem = self._space_of(instr, warp)
        op = instr.op
        if op is Op.LD:
            if instr.dst is None:
                raise ExecutionError("load without destination")
            if active.any():
                warp.regs[instr.dst][active] = mem.load(addrs[active])
        elif op is Op.ST:
            values = np.broadcast_to(
                np.asarray(self._value(instr.srcs[-1], warp), dtype=np.float64),
                (warp.width,),
            )
            if active.any():
                mem.store(addrs[active], values[active])
        else:  # atomics
            values = np.broadcast_to(
                np.asarray(self._value(instr.srcs[-1], warp), dtype=np.float64),
                (warp.width,),
            )
            atom_op = {"atom.add": "add", "atom.min": "min", "atom.max": "max"}[op.value]
            if active.any():
                old = mem.atomic(addrs[active], values[active], atom_op)
                if instr.dst is not None:
                    warp.regs[instr.dst][active] = old
        return ExecOutcome(active=active, addresses=addrs, space=instr.space)
