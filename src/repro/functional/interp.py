"""Reference interpreter: kernel execution without a timing model.

Executes a kernel launch to completion using thread-frontier (min-PC)
scheduling of warp-splits, one CTA at a time.  This is the executable
semantics of the ISA: every timing configuration (baseline stack, SBI,
SWI...) must leave global memory in exactly the state this interpreter
produces.  It is also used by workloads to compute dynamic instruction
counts independent of the micro-architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.functional.executor import Executor, FunctionalWarp
from repro.functional.memory import MemoryImage, SharedMemory
from repro.isa.builder import Kernel
from repro.isa.instructions import Op


class InterpreterError(Exception):
    """Kernel did not terminate or broke an execution invariant."""


@dataclass
class InterpResult:
    """Dynamic execution summary of one launch."""

    instructions: int = 0
    thread_instructions: int = 0
    per_op_class: Dict[str, int] = field(default_factory=dict)
    branches: int = 0
    divergent_branches: int = 0

    def record(self, instr, active_count: int) -> None:
        self.instructions += 1
        self.thread_instructions += active_count
        key = instr.op_class.value
        self.per_op_class[key] = self.per_op_class.get(key, 0) + active_count


class _Split:
    __slots__ = ("warp", "pc", "mask", "parked")

    def __init__(self, warp: FunctionalWarp, pc: int, mask: np.ndarray) -> None:
        self.warp = warp
        self.pc = pc
        self.mask = mask
        self.parked = False


def _make_warps(kernel: Kernel, cta: int, warp_width: int, shared: SharedMemory):
    warps = []
    n_warps = (kernel.cta_size + warp_width - 1) // warp_width
    for w in range(n_warps):
        lo = w * warp_width
        tids = np.arange(lo, lo + warp_width, dtype=np.int64)
        warp = FunctionalWarp(
            warp_id=cta * n_warps + w,
            width=warp_width,
            nregs=kernel.nregs,
            tids_in_cta=np.minimum(tids, kernel.cta_size - 1),
            cta_index=cta,
            shared=shared,
        )
        launch = tids < kernel.cta_size
        warp.launch_mask = launch
        warps.append(warp)
    return warps


def run_kernel(
    kernel: Kernel,
    memory: MemoryImage,
    warp_width: int = 32,
    max_steps: int = 20_000_000,
) -> InterpResult:
    """Run all CTAs of ``kernel`` to completion; mutates ``memory``."""
    executor = Executor(kernel, memory)
    result = InterpResult()
    for cta in range(kernel.grid_size):
        shared = SharedMemory(max(kernel.shared_bytes, 4))
        warps = _make_warps(kernel, cta, warp_width, shared)
        splits: List[_Split] = [
            _Split(w, 0, w.launch_mask.copy()) for w in warps if w.launch_mask.any()
        ]
        _run_cta(kernel, executor, splits, result, max_steps)
    return result


def _merge(splits: List[_Split], split: _Split) -> None:
    """Merge ``split`` into an existing same-warp same-PC runnable split."""
    for other in splits:
        if other is split or other.parked:
            continue
        if other.warp is split.warp and other.pc == split.pc:
            other.mask = other.mask | split.mask
            splits.remove(split)
            return


def _run_cta(kernel, executor, splits, result, max_steps) -> None:
    program = kernel.program
    steps = 0
    while splits:
        steps += 1
        if steps > max_steps:
            raise InterpreterError(
                "kernel %s exceeded %d steps (infinite loop?)" % (kernel.name, max_steps)
            )
        runnable = [s for s in splits if not s.parked]
        if not runnable:
            # All live threads parked at the barrier: release everyone.
            for s in splits:
                s.parked = False
                s.pc += 1
                _merge(splits, s)
            continue
        split = min(runnable, key=lambda s: s.pc)
        instr = program[split.pc]
        outcome = executor.execute(instr, split.warp, split.mask)
        result.record(instr, int(outcome.active.sum()))
        op = instr.op
        if op is Op.BRA:
            result.branches += 1
            taken = outcome.taken & split.mask
            fallthrough = split.mask & ~taken
            if taken.any() and fallthrough.any():
                result.divergent_branches += 1
                split.mask = taken
                split.pc = instr.target
                sibling = _Split(split.warp, instr.pc + 1, fallthrough)
                splits.append(sibling)
                _merge(splits, sibling)
                _merge(splits, split)
            elif taken.any():
                split.pc = instr.target
                _merge(splits, split)
            else:
                split.pc += 1
                _merge(splits, split)
        elif op is Op.EXIT:
            splits.remove(split)
        elif op is Op.BAR:
            split.parked = True
        else:
            split.pc += 1
            _merge(splits, split)
