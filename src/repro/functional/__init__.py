"""Functional SIMT simulator — the reproduction's Barra substrate.

Provides vectorised per-warp execution of the reproduction ISA over
numpy register files, a flat global-memory image, per-CTA shared
memory, and a reference interpreter (:func:`repro.functional.interp.run_kernel`)
that executes kernels to completion with thread-frontier scheduling,
independently of the timing pipeline.  The timing model and the
reference interpreter share :class:`repro.functional.executor.Executor`,
so any timing-model scheduling decision that violated SIMT semantics
would show up as a divergence from the reference.
"""

from repro.functional.memory import MemoryImage, SharedMemory
from repro.functional.executor import Executor, FunctionalWarp, ExecOutcome
from repro.functional.interp import run_kernel

__all__ = [
    "ExecOutcome",
    "Executor",
    "FunctionalWarp",
    "MemoryImage",
    "SharedMemory",
    "run_kernel",
]
