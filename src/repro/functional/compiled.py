"""Compiled instruction plans: per-instruction specialised closures.

The reference :class:`~repro.functional.executor.Executor` resolves
operands and dispatches on the opcode *per issue* — a string/kind
switch through ``_value`` and a ~30-branch if-chain in ``_compute``.
Kernels execute the same few static instructions millions of times, so
all of that work can be done once per instruction at kernel load:

* operand access is pre-resolved into a getter closure (register row,
  pre-built immediate/param scalar, cached special-register vector);
* the op's compute function, comparison operator, memory space and
  atomic kind are bound directly;
* the predicate guard is compiled in only when the instruction is
  predicated.

Every closure reproduces the reference interpreter's numpy expressions
verbatim (same dtypes, same operation order), so the two paths produce
bit-identical architectural state — pinned by the differential test
over all 21 workloads and the golden smoke matrix.

The only deliberate shortcut is the *full-warp fast path*: when the
effective mask is the interned all-active array (identity comparison
against :func:`repro.timing.masks.mask_to_bools` of the full mask),
masked scatters/gathers degenerate to whole-row operations, which
assign exactly the same elements.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.functional.memory import MemoryImage
from repro.isa.builder import Kernel
from repro.isa.instructions import (
    CmpOp,
    Instruction,
    MemSpace,
    Op,
    Operand,
    OperandKind,
)
from repro.timing.masks import bools_to_indices, full_mask, mask_to_bools

# ``ExecutionError``/``ExecOutcome`` live in executor.py; imported
# lazily inside functions to avoid a circular import (executor.py
# imports this module).


def _as_int(values: np.ndarray) -> np.ndarray:
    return np.asarray(values, dtype=np.float64).astype(np.int64)


def _int_binop(op) -> Callable:
    return lambda a, b: op(_as_int(a), _as_int(b)).astype(np.float64)


_CMP_FUNCS = {
    CmpOp.LT: np.less,
    CmpOp.LE: np.less_equal,
    CmpOp.GT: np.greater,
    CmpOp.GE: np.greater_equal,
    CmpOp.EQ: np.equal,
    CmpOp.NE: np.not_equal,
}

#: op -> f(*src_values), mirroring ``Executor._compute`` case by case.
_COMPUTE_FUNCS = {
    Op.MOV: lambda a: a,
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.MAD: lambda a, b, c: a * b + c,
    Op.MIN: np.minimum,
    Op.MAX: np.maximum,
    Op.AND: _int_binop(lambda a, b: a & b),
    Op.OR: _int_binop(lambda a, b: a | b),
    Op.XOR: _int_binop(lambda a, b: a ^ b),
    Op.NOT: lambda a: (~_as_int(a)).astype(np.float64),
    Op.SHL: _int_binop(lambda a, b: a << b),
    Op.SHR: _int_binop(lambda a, b: a >> b),
    Op.ABS: np.abs,
    Op.NEG: lambda a: -a,
    Op.FLOOR: np.floor,
    Op.I2F: lambda a: a,
    Op.F2I: np.trunc,
    Op.SEL: lambda c, a, b: np.where(np.asarray(c) != 0, a, b),
    Op.RCP: lambda a: 1.0 / a,
    Op.DIV: lambda a, b: a / b,
    Op.SQRT: np.sqrt,
    Op.RSQRT: lambda a: 1.0 / np.sqrt(a),
    Op.SIN: np.sin,
    Op.COS: np.cos,
    Op.EX2: np.exp2,
    Op.LG2: np.log2,
}

_ATOM_OPS = {Op.ATOM_ADD: "add", Op.ATOM_MIN: "min", Op.ATOM_MAX: "max"}


def _src_getter(operand: Operand, kernel: Kernel) -> Callable:
    """Pre-resolved operand access: ``getter(fwarp) -> value``."""
    from repro.functional.executor import ExecutionError

    kind = operand.kind
    if kind is OperandKind.REG:
        index = operand.value
        return lambda fw: fw.regs[index]
    if kind is OperandKind.IMM:
        const = np.float64(operand.value)
        return lambda fw: const
    name = operand.value
    if isinstance(name, tuple):  # ("param", i)
        index = name[1]
        if index >= len(kernel.params):
            raise ExecutionError(
                "kernel %s launched with %d params, wants param%d"
                % (kernel.name, len(kernel.params), index)
            )
        const = np.float64(kernel.params[index])
        return lambda fw: const
    if name == "tid":
        return lambda fw: fw.tids_f64
    if name == "ctaid":
        return lambda fw: fw.ctaid_f64
    if name == "ntid":
        const = np.float64(kernel.cta_size)
        return lambda fw: const
    if name == "nctaid":
        const = np.float64(kernel.grid_size)
        return lambda fw: const
    if name == "laneid":
        return lambda fw: fw.lanes_f64
    if name == "warpid":
        return lambda fw: fw.warpid_f64
    raise ExecutionError("unknown special %r" % (name,))


def compile_instruction(
    instr: Instruction, kernel: Kernel, memory: MemoryImage, width: int
) -> Callable:
    """Specialise ``instr`` into ``plan(fwarp, active_bools) -> ExecOutcome``.

    ``active_bools`` is the already-predicated execution mask; the
    predicate guard (when present) is compiled into the returned plan
    by :func:`compile_guarded`.
    """
    from repro.functional.executor import ExecOutcome, ExecutionError

    op = instr.op
    full_arr = mask_to_bools(full_mask(width), width)

    if op is Op.BRA:
        if instr.srcs:
            get_cond = _src_getter(instr.srcs[0], kernel)
            negate = instr.pred_neg
            if instr.srcs[0].kind is OperandKind.REG:
                # Register condition: already full-width, and the !=
                # comparison allocates a fresh array — no broadcast,
                # no defensive copy.
                def plan(fw, active):
                    taken = get_cond(fw) != 0
                    if negate:
                        taken = ~taken
                    return ExecOutcome(active=active, taken=taken)

                return plan

            def plan(fw, active):
                taken = np.broadcast_to(get_cond(fw), (width,)) != 0
                if negate:
                    taken = ~taken
                return ExecOutcome(active=active, taken=np.array(taken))

            return plan
        ones = np.ones(width, dtype=bool)
        ones.setflags(write=False)
        return lambda fw, active: ExecOutcome(active=active, taken=ones)

    if op in (Op.BAR, Op.EXIT, Op.NOP):
        return lambda fw, active: ExecOutcome(active=active)

    if instr.is_memory:
        return _compile_memory(instr, kernel, memory, width, full_arr)

    # Arithmetic / logic / transcendental.  ``np.errstate`` is *not*
    # entered per issue (it costs more than the compute for warp-sized
    # arrays); the SM run loops enter it once instead.
    compute = _COMPUTE_FUNCS.get(op)
    if op is Op.SETP:
        cmp_fn = _CMP_FUNCS.get(instr.cmp)
        if cmp_fn is None:
            raise ExecutionError("unknown comparison %r" % instr.cmp)
        compute = lambda a, b: np.asarray(cmp_fn(a, b), dtype=np.float64)
    if compute is None:
        raise ExecutionError("unhandled op %r" % op)
    getters = tuple(_src_getter(s, kernel) for s in instr.srcs)
    dst = instr.dst

    # Arity-specialised source evaluation (the list-comprehension splat
    # costs ~20% of a small-array numpy op per issue).
    if len(getters) == 1:
        g0 = getters[0]
        values = lambda fw: compute(g0(fw))
    elif len(getters) == 2:
        g0, g1 = getters
        values = lambda fw: compute(g0(fw), g1(fw))
    elif len(getters) == 3:
        g0, g1, g2 = getters
        values = lambda fw: compute(g0(fw), g1(fw), g2(fw))
    else:
        values = lambda fw: compute(*[g(fw) for g in getters])

    if dst is None:
        def plan(fw, active):
            values(fw)
            return ExecOutcome(active=active)

        return plan

    copyto = np.copyto

    def plan(fw, active):
        row = fw.regs[dst]
        if active is full_arr:
            copyto(row, values(fw))
        else:
            # Same elementwise writes as the interpreter's
            # broadcast-then-scatter, in one numpy call.
            copyto(row, values(fw), where=active)
        return ExecOutcome(active=active)

    return plan


def _compile_memory(
    instr: Instruction, kernel: Kernel, memory: MemoryImage, width: int, full_arr
) -> Callable:
    from repro.functional.executor import ExecOutcome, ExecutionError

    op = instr.op
    space = instr.space
    shared = space is MemSpace.SHARED
    get_base = _src_getter(instr.srcs[0], kernel)
    n_addr_srcs = len(instr.srcs) - (1 if instr.writes_memory else 0)
    get_index = (
        _src_getter(instr.srcs[1], kernel) if n_addr_srcs >= 2 else None
    )
    offset = instr.offset
    dst = instr.dst

    def addresses(fw) -> np.ndarray:
        # Scalar/vector shapes resolve by numpy broadcasting in the
        # same IEEE order as the interpreter's broadcast-then-add; the
        # final astype always copies, so no defensive copy up front.
        addr = get_base(fw)
        if get_index is not None:
            addr = addr + get_index(fw)
        if offset:
            addr = addr + offset
        addr = np.asarray(addr, dtype=np.float64)
        if addr.ndim == 0:
            addr = np.broadcast_to(addr, (width,))
        return addr.astype(np.int64)

    if op is Op.LD:
        if dst is None:
            raise ExecutionError("load without destination")

        def plan(fw, active):
            addrs = addresses(fw)
            mem = fw.shared if shared else memory
            if active is full_arr:
                fw.regs[dst][:] = mem.load(addrs)
            else:
                # Index-array gather/scatter touches the same elements
                # as the interpreter's boolean indexing, in the same
                # ascending-lane order.
                idx = bools_to_indices(active)
                if idx.size:
                    fw.regs[dst][idx] = mem.load(addrs[idx])
            return ExecOutcome(active=active, addresses=addrs, space=space)

        return plan

    get_value = _src_getter(instr.srcs[-1], kernel)

    def store_values(fw) -> np.ndarray:
        values = np.asarray(get_value(fw), dtype=np.float64)
        if values.ndim == 0:
            return np.broadcast_to(values, (width,))
        return values

    if op is Op.ST:

        def plan(fw, active):
            addrs = addresses(fw)
            mem = fw.shared if shared else memory
            if active is full_arr:
                mem.store(addrs, store_values(fw))
            else:
                idx = bools_to_indices(active)
                if idx.size:
                    mem.store(addrs[idx], store_values(fw)[idx])
            return ExecOutcome(active=active, addresses=addrs, space=space)

        return plan

    atom_op = _ATOM_OPS[op]

    def plan(fw, active):
        addrs = addresses(fw)
        mem = fw.shared if shared else memory
        if active is full_arr:
            old = mem.atomic(addrs, store_values(fw), atom_op)
            if dst is not None:
                fw.regs[dst][:] = old
        else:
            idx = bools_to_indices(active)
            if idx.size:
                old = mem.atomic(addrs[idx], store_values(fw)[idx], atom_op)
                if dst is not None:
                    fw.regs[dst][idx] = old
        return ExecOutcome(active=active, addresses=addrs, space=space)

    return plan


def compile_guarded(
    instr: Instruction, kernel: Kernel, memory: MemoryImage, width: int
) -> Callable:
    """Full plan including the predicate guard:
    ``plan(fwarp, mask_bools) -> ExecOutcome``."""
    body = compile_instruction(instr, kernel, memory, width)
    pred = instr.pred
    if pred is None:
        return body
    negate = instr.pred_neg

    def guarded(fw, mask):
        taken = fw.regs[pred] != 0
        if negate:
            taken = ~taken
        return body(fw, mask & taken)

    return guarded
