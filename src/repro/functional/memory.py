"""Memory images for the functional simulator.

Memory is word-addressable at 4-byte granularity (the data width of
every load/store in the ISA), with byte addresses at the interface to
match the coalescing rules of the timing model (128-byte transaction
blocks).  Word values are stored as ``float64`` — exact for the 32-bit
integer and float ranges the workloads use, and uniform with the
register file representation.
"""

from __future__ import annotations

import numpy as np

#: Bytes per memory word (all loads/stores are one word).
WORD_BYTES = 4


class MemoryAccessError(Exception):
    """Out-of-range or misaligned access."""


class MemoryImage:
    """Flat global memory with a bump allocator.

    The first 128 bytes are reserved so that address 0 stays invalid —
    it catches uninitialised-pointer bugs in kernels.
    """

    def __init__(self, size_bytes: int = 1 << 22) -> None:
        if size_bytes % WORD_BYTES:
            raise ValueError("size must be a multiple of %d" % WORD_BYTES)
        self.size_bytes = size_bytes
        self.words = np.zeros(size_bytes // WORD_BYTES, dtype=np.float64)
        self._next_free = 128

    # ------------------------------------------------------------------
    # Allocation and host-side array access
    # ------------------------------------------------------------------

    def alloc(self, nbytes: int, align: int = 128) -> int:
        """Reserve ``nbytes`` and return the base byte address."""
        base = (self._next_free + align - 1) // align * align
        if base + nbytes > self.size_bytes:
            raise MemoryAccessError(
                "out of memory: need %d bytes at %d, have %d"
                % (nbytes, base, self.size_bytes)
            )
        self._next_free = base + nbytes
        return base

    def alloc_array(self, values: np.ndarray, align: int = 128) -> int:
        """Allocate and initialise from a 1-D numpy array (one word each)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        base = self.alloc(len(values) * WORD_BYTES, align)
        self.write_array(base, values)
        return base

    def write_array(self, addr: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        start = self._word_index(addr)
        self.words[start : start + len(values)] = values

    def read_array(self, addr: int, count: int) -> np.ndarray:
        start = self._word_index(addr)
        return self.words[start : start + count].copy()

    # ------------------------------------------------------------------
    # Device-side vector access
    # ------------------------------------------------------------------

    def _word_index(self, addr: int) -> int:
        if addr % WORD_BYTES:
            raise MemoryAccessError("misaligned address %d" % addr)
        if not 0 <= addr < self.size_bytes:
            raise MemoryAccessError("address %d out of range" % addr)
        return addr // WORD_BYTES

    def _word_indices(self, addrs: np.ndarray) -> np.ndarray:
        if addrs.size == 0:
            return addrs.astype(np.int64)
        if (addrs & (WORD_BYTES - 1)).any():
            raise MemoryAccessError("misaligned vector access")
        lo = int(addrs.min())
        hi = int(addrs.max())
        if lo < 0 or hi >= self.size_bytes:
            raise MemoryAccessError(
                "vector access out of range (min=%d max=%d size=%d)"
                % (lo, hi, self.size_bytes)
            )
        return (addrs // WORD_BYTES).astype(np.int64)

    def load(self, addrs: np.ndarray) -> np.ndarray:
        """Gather one word per byte address."""
        return self.words[self._word_indices(addrs)]

    def store(self, addrs: np.ndarray, values: np.ndarray) -> None:
        """Scatter one word per byte address (last writer wins on
        duplicate addresses, like hardware with an undefined order)."""
        self.words[self._word_indices(addrs)] = values

    def atomic(self, addrs: np.ndarray, values: np.ndarray, op: str) -> np.ndarray:
        """Serialised read-modify-write; returns the old values.

        Duplicate addresses are applied in thread order, which is a
        legal serialisation of the atomic semantics.
        """
        idx = self._word_indices(addrs)
        old = np.empty(len(idx), dtype=np.float64)
        words = self.words
        for k, i in enumerate(idx):
            old[k] = words[i]
            if op == "add":
                words[i] += values[k]
            elif op == "min":
                words[i] = min(words[i], values[k])
            elif op == "max":
                words[i] = max(words[i], values[k])
            else:
                raise ValueError("unknown atomic op %r" % op)
        return old


class SharedMemory(MemoryImage):
    """Per-CTA scratchpad; same interface, separate address space.

    Shared addresses start at 0 (no reserved page — kernels index it
    directly from 0 as CUDA shared memory does).
    """

    def __init__(self, size_bytes: int) -> None:
        size_bytes = max(WORD_BYTES, (size_bytes + WORD_BYTES - 1) // WORD_BYTES * WORD_BYTES)
        super().__init__(size_bytes)
        self._next_free = 0
