"""Engine speed measurement (``repro bench``).

Times raw simulation speed — no result cache, workload construction
excluded — over the paper's figure-7 matrix (21 workloads x 5 modes)
and reports two throughput numbers:

* **cells/sec** — simulated (workload, mode) cells per wall second,
  the number CI regresses against;
* **cycles/sec** — simulated SM cycles per wall second, which tracks
  engine efficiency independently of how long each workload runs.

The JSON artifact (``BENCH_speed.json``, schema below) is committed at
the repo root as the perf baseline; the CI perf-smoke job re-measures
and fails when cells/sec drops more than 30% below it::

    {
      "schema": 1,
      "matrix": "figure7",
      "size": "smoke",
      "repeat": 3,                 # best-of-N timing
      "compiled": true,            # executor path measured
      "cells": 105,
      "sim_cycles": 193682,        # total simulated cycles
      "wall_seconds": 1.93,        # simulate() time only, best repeat
      "cells_per_sec": 54.3,
      "cycles_per_sec": 100301.4,
      "per_mode": {"baseline": {"cells": 21, "sim_cycles": ...,
                                "wall_seconds": ..., "cells_per_sec": ...,
                                "cycles_per_sec": ...}, ...}
    }
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence

SCHEMA_VERSION = 1

#: cells/sec may drop this much vs the committed baseline before the
#: perf-smoke CI job fails (absorbs runner-to-runner jitter).
REGRESSION_TOLERANCE = 0.30


def run_bench(
    size: str = "smoke",
    repeat: int = 1,
    modes: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    compiled: bool = True,
) -> Dict:
    """Measure simulation throughput; returns the artifact dict.

    Workload instances are rebuilt for every repeat (a simulation
    mutates its memory image) but construction time never counts;
    ``repeat`` takes the best total per mode, squeezing out scheduler
    noise on loaded machines.
    """
    from repro.core import presets
    from repro.core.simulator import simulate
    from repro.workloads import ALL_WORKLOADS, get_workload, normalize_size

    if repeat < 1:
        raise ValueError("repeat must be >= 1, got %d" % repeat)
    size = normalize_size(size)
    mode_names = list(modes) if modes else list(presets.FIGURE7_CONFIGS)
    names = list(workloads) if workloads else list(ALL_WORKLOADS)
    configs = {m: presets.by_name(m) for m in mode_names}

    per_mode: Dict[str, Dict] = {}
    for mode, config in configs.items():
        best_wall = None
        cycles = 0
        for _ in range(repeat):
            instances = [(get_workload(w, size), w) for w in names]
            wall = 0.0
            cycles = 0
            for inst, wname in instances:
                t0 = time.perf_counter()
                stats = simulate(inst.kernel, inst.memory, config, compiled=compiled)
                wall += time.perf_counter() - t0
                cycles += stats.cycles
            if best_wall is None or wall < best_wall:
                best_wall = wall
        per_mode[mode] = {
            "cells": len(names),
            "sim_cycles": cycles,
            "wall_seconds": best_wall,
            "cells_per_sec": len(names) / best_wall if best_wall else 0.0,
            "cycles_per_sec": cycles / best_wall if best_wall else 0.0,
        }

    cells = sum(m["cells"] for m in per_mode.values())
    wall = sum(m["wall_seconds"] for m in per_mode.values())
    sim_cycles = sum(m["sim_cycles"] for m in per_mode.values())
    return {
        "schema": SCHEMA_VERSION,
        "matrix": "figure7" if not workloads else "custom",
        "size": size,
        "repeat": repeat,
        "compiled": compiled,
        "cells": cells,
        "sim_cycles": sim_cycles,
        "wall_seconds": wall,
        "cells_per_sec": cells / wall if wall else 0.0,
        "cycles_per_sec": sim_cycles / wall if wall else 0.0,
        "per_mode": per_mode,
        "host": host_metadata(),
    }


def host_metadata() -> Dict:
    """Where the measurement ran — throughput numbers are only
    comparable within one host, so the artifact carries enough to
    tell two machines (or Python builds) apart."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def annotate_speedup(result: Dict) -> None:
    """Fill ``speedup_vs_reference`` from the ``pre_pr_reference`` block.

    The committed baseline keeps a ``pre_pr_reference`` block — the
    same matrix timed on the pre-PR engine on the same machine.  When
    present (e.g. merged from the previous artifact on a ``--json``
    refresh), the measured speedup is recorded right next to it; when
    absent the field is omitted rather than invented.
    """
    ref = result.get("pre_pr_reference")
    if not isinstance(ref, dict):
        return
    ref_cps = ref.get("cells_per_sec")
    if isinstance(ref_cps, (int, float)) and ref_cps > 0:
        result["speedup_vs_reference"] = result["cells_per_sec"] / ref_cps


def format_report(result: Dict) -> str:
    """Human-readable table of one artifact."""
    lines = [
        "matrix=%s size=%s repeat=%d compiled=%s"
        % (result["matrix"], result["size"], result["repeat"], result["compiled"]),
        "%-10s %6s %12s %10s %12s %14s"
        % ("mode", "cells", "sim cycles", "wall (s)", "cells/sec", "cycles/sec"),
    ]
    rows = list(result["per_mode"].items()) + [("TOTAL", result)]
    for name, m in rows:
        lines.append(
            "%-10s %6d %12d %10.3f %12.1f %14.1f"
            % (
                name,
                m["cells"],
                m["sim_cycles"],
                m["wall_seconds"],
                m["cells_per_sec"],
                m["cycles_per_sec"],
            )
        )
    return "\n".join(lines)


def check_regression(
    result: Dict, baseline: Dict, tolerance: float = REGRESSION_TOLERANCE
) -> List[str]:
    """Compare a fresh measurement against a committed baseline.

    Returns a list of failure messages (empty = pass).  Only overall
    cells/sec gates; per-mode numbers are informational.  Mismatched
    matrices/sizes are a configuration error, not a perf regression.
    """
    problems = []
    if baseline.get("schema") != SCHEMA_VERSION or not isinstance(
        baseline.get("cells_per_sec"), (int, float)
    ):
        return [
            "baseline artifact is not a schema-%d bench result "
            "(schema=%r) — regenerate it with `repro bench --json`"
            % (SCHEMA_VERSION, baseline.get("schema"))
        ]
    for field in ("matrix", "size", "compiled"):
        if result.get(field) != baseline.get(field):
            problems.append(
                "baseline %s=%r but measured %s=%r — not comparable"
                % (field, baseline.get(field), field, result.get(field))
            )
    if problems:
        return problems
    floor = baseline["cells_per_sec"] * (1.0 - tolerance)
    if result["cells_per_sec"] < floor:
        problems.append(
            "cells/sec regressed: measured %.1f < %.1f "
            "(baseline %.1f - %d%% tolerance)"
            % (
                result["cells_per_sec"],
                floor,
                baseline["cells_per_sec"],
                round(tolerance * 100),
            )
        )
    return problems


def write_artifact(result: Dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(result, f, indent=1, sort_keys=True)
        f.write("\n")


def load_artifact(path: str) -> Dict:
    with open(path) as f:
        return json.load(f)
