"""The ``repro`` command line — a veneer over :mod:`repro.api`.

Subcommands::

    repro workloads [--category regular|irregular] [--json]
    repro policies  [NAME] [--json]
    repro figure7   [--size bench] [--jobs N] [--format markdown|json|table]
    repro sweep     --workloads bfs,matrixmul --configs baseline,sbi_swi
                    [--policy swi_greedy,dwr] [--axis sm_count=1,2,4,8] ...
                    [--size tiny] [--jobs N]
    repro analyze   --workload bfs --config sbi_swi [--sm-count 4]
                    [--observers timeline,heatmap,origins] [--json OUT.json]
    repro merge     A.json B.json ... [--save OUT.json] [--on-conflict keep]
    repro bench     [--size smoke] [--repeat 3] [--json PATH] [--check BASE.json]
                    [--profile [N]] [--profile-out PROF.pstats]
    repro cache     info|clear [--dir DIR]
    repro store     info|gc|verify [--dir DIR] [--max-age S]
                    [--max-entries N] [--max-bytes N] [--dry-run]
    repro serve     [--host H] [--port P] [--store DIR] [--workers N]
                    [--queue-limit N] [--journal PATH] [--resume]
                    [--fault-plan SPEC | --fault-seed N]

Tables go to stdout; a one-line cell accounting (``# N cells: M
simulated, K cached``) goes to stderr so scripted runs can assert a
warm cache performed no simulation.  ``--cache-dir`` (or the
``REPRO_CACHE_DIR`` environment variable) enables the on-disk result
cache shared with the Python API.  ``--plugin MOD`` imports a module
first, so third-party policies registered at import time are available
to ``policies``, ``--configs`` and ``--policy``.

``repro serve`` starts the sweep daemon (:mod:`repro.service`); sweep
commands run against it with ``--server URL``, which switches the
engine to the remote backend.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
from typing import List, Optional

from repro.api import Engine, ResultSet, SweepSpec
from repro.api import cache as result_cache
from repro.workloads import SIZE_ALIASES, SIZES, list_workloads

FORMATS = ("table", "markdown", "json", "csv")


def _load_plugins(args) -> None:
    """Import ``--plugin`` modules (they register policies on import)."""
    for name in getattr(args, "plugin", None) or ():
        importlib.import_module(name)


def _parse_axis_value(token: str):
    lowered = token.lower()
    if lowered == "none":
        return None
    if lowered in ("true", "false"):
        return lowered == "true"
    for parse in (int, float):
        try:
            return parse(token)
        except ValueError:
            continue
    return token


def _parse_axes(tokens: Optional[List[str]]) -> dict:
    axes = {}
    for token in tokens or ():
        field, eq, values = token.partition("=")
        if not eq or not values:
            raise SystemExit(
                "error: --axis wants FIELD=V1,V2,..., got %r" % token
            )
        axes[field] = [_parse_axis_value(v) for v in values.split(",")]
    return axes


def _render(rs, fmt: str, metric: str) -> str:
    if fmt == "csv":
        extra = () if metric == "ipc" else (metric,)
        return rs.to_csv(extra_metrics=extra)
    sizes = rs.sizes
    if fmt == "json":
        if len(sizes) > 1:
            payload = {
                size: rs.filter(size=size).pivot("workload", "config", metric)
                for size in sizes
            }
        else:
            payload = rs.pivot("workload", "config", metric)
        return json.dumps(payload, indent=1, sort_keys=True)

    def one(sub):
        if fmt == "markdown":
            return sub.to_markdown(metric=metric)
        return sub.to_text(metric=metric)

    if len(sizes) <= 1:
        return one(rs)
    # Multi-size sweeps render one table per size.
    parts = []
    for size in sizes:
        header = "### size=%s" % size if fmt == "markdown" else "== size=%s ==" % size
        parts.append(header + "\n" + one(rs.filter(size=size)))
    return "\n\n".join(parts)


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w") as f:
            f.write(text + "\n")
        print("wrote %s" % output, file=sys.stderr)
    else:
        print(text)


def _validate_metric(spec: SweepSpec, metric: str) -> None:
    """Reject a bad --metric before any simulation runs."""
    import dataclasses

    from repro.timing.config import GPUConfig
    from repro.timing.stats import DeviceStats, Stats

    kinds = {
        DeviceStats if isinstance(cfg, GPUConfig) else Stats
        for cfg in spec.configs.values()
    }
    # Sorted so a metric bad for both kinds always reports the same
    # one first (set order varies per process).
    for kind in sorted(kinds, key=lambda k: k.__name__):
        names = {f.name for f in dataclasses.fields(kind)} | {
            name
            for name, value in vars(kind).items()
            if isinstance(value, property)
        }
        if metric not in names:
            raise ValueError(
                "unknown metric %r for %s runs: choose from %s"
                % (metric, kind.__name__, ", ".join(sorted(names)))
            )


def _run_spec(spec: SweepSpec, args) -> int:
    _validate_metric(spec, args.metric)
    counts = {"simulated": 0, "cached": 0, "failed": 0}
    # Remote-cell provenance: "store" hits and "coalesced" rides are
    # cached, "fallback" cells were simulated inline by a degraded
    # client; local cache hits carry no source.
    sources: dict = {}

    def progress(event):
        if event.error is not None:
            counts["failed"] += 1
        else:
            counts["cached" if event.cached else "simulated"] += 1
            if event.source:
                sources[event.source] = sources.get(event.source, 0) + 1
        if args.progress:
            state = "cached" if event.cached else "sim"
            if event.source:
                state = event.source
            if event.error is not None:
                state = "FAILED: %s" % event.error
            print(
                "[%d/%d] %s/%s @%s (%s)"
                % (
                    event.done,
                    event.total,
                    event.workload,
                    event.config_name,
                    event.size,
                    state,
                ),
                file=sys.stderr,
            )

    engine = Engine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        progress=progress,
        errors="collect" if getattr(args, "keep_going", False) else "raise",
        plugins=getattr(args, "plugin", None),
        observers=getattr(args, "observer", None),
        server=getattr(args, "server", None),
        timeout=getattr(args, "timeout", 30.0),
        retries=getattr(args, "retries", 3),
        fallback=getattr(args, "fallback", None),
    )
    rs = engine.run(spec, verify=getattr(args, "verify", False))
    if args.save:
        rs.to_json(args.save)
        print("saved ResultSet to %s" % args.save, file=sys.stderr)
    # Provenance detail appends after the stable prefix, so scripted
    # greps of the historical line keep matching.
    detail = ""
    if sources:
        detail = " (%s)" % ", ".join(
            "%d %s" % (sources[name], name) for name in sorted(sources)
        )
    print(
        "# %d cells: %d simulated, %d cached%s%s"
        % (
            counts["simulated"] + counts["cached"] + counts["failed"],
            counts["simulated"],
            counts["cached"],
            ", %d FAILED" % counts["failed"] if counts["failed"] else "",
            detail,
        ),
        file=sys.stderr,
    )
    try:
        text = _render(rs, args.format, args.metric)
    except AttributeError as exc:
        # A metric that passed _validate_metric for one stats kind can
        # still miss on the other in mixed sweeps; keep it a usage
        # error rather than a traceback.
        raise ValueError("metric %r: %s" % (args.metric, exc)) from exc
    _emit(text, args.output)
    if getattr(args, "observer", None):
        for (workload, size, config_name), obs in sorted(engine.observations.items()):
            for name, ob in obs.items():
                render = getattr(ob, "render", None)
                body = render() if callable(render) else repr(ob)
                print(
                    "\n== %s/%s @%s : %s ==\n%s"
                    % (workload, config_name, size, name, body)
                )
    for err in rs.errors:
        print(
            "failed: %s/%s @%s: %s" % (err.workload, err.config, err.size, err.error),
            file=sys.stderr,
        )
    return 1 if rs.errors else 0


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _cmd_workloads(args) -> int:
    infos = list_workloads(category=args.category)
    if args.json:
        import dataclasses

        print(json.dumps([dataclasses.asdict(i) for i in infos], indent=1))
        return 0
    for info in infos:
        flags = " (excluded from suite means)" if info.mean_excluded else ""
        print("%-22s %-10s%s" % (info.name, info.category, flags))
    print(
        "\nsizes: %s (aliases: %s)"
        % (
            ", ".join(SIZES),
            ", ".join("%s=%s" % kv for kv in sorted(SIZE_ALIASES.items())),
        ),
        file=sys.stderr,
    )
    return 0


def _cmd_policies(args) -> int:
    # Populate the scheduler registry so specs can be cross-checked.
    import repro.core.schedulers  # noqa: F401
    from repro.core import presets
    from repro.core.policy import DIVERGENCE, OBSERVERS, POLICIES, SCHEDULERS

    _load_plugins(args)
    if args.name:
        spec = POLICIES.get(args.name)
        if args.json:
            import dataclasses

            print(json.dumps(dataclasses.asdict(spec), indent=1, sort_keys=True))
            return 0
        print(spec.describe())
        for kind, name, registry in (
            ("scheduler", spec.scheduler, SCHEDULERS),
            ("divergence model", spec.divergence, DIVERGENCE),
        ):
            if name not in registry:
                print(
                    "warning: %s %r is not registered (import its module "
                    "with --plugin)" % (kind, name),
                    file=sys.stderr,
                )
        print("preset    : %s" % presets.by_name(args.name).describe())
        return 0
    if args.json:
        import dataclasses

        print(
            json.dumps(
                [dataclasses.asdict(spec) for _, spec in POLICIES.items()],
                indent=1,
                sort_keys=True,
            )
        )
        return 0
    for name, spec in POLICIES.items():
        print(
            "%-12s sched=%-16s div=%-9s issue=%d  %s"
            % (name, spec.scheduler, spec.divergence, spec.issue_width,
               spec.description)
        )
    print(
        "\nschedulers: %s\ndivergence: %s\nobservers : %s"
        % (
            ", ".join(SCHEDULERS.names()),
            ", ".join(DIVERGENCE.names()),
            ", ".join(OBSERVERS.names()),
        ),
        file=sys.stderr,
    )
    return 0


def _cmd_figure7(args) -> int:
    _load_plugins(args)
    spec = SweepSpec.figure7(size=args.size)
    if args.workloads:
        spec = spec.with_workloads(args.workloads.split(","))
    return _run_spec(spec, args)


def _cmd_sweep(args) -> int:
    _load_plugins(args)
    spec = SweepSpec(
        workloads=args.workloads.split(","),
        configs=args.configs.split(","),
        sizes=args.size.split(","),
    )
    # The policy axis swaps the whole SM preset, so it expands first;
    # --axis field overrides then compose on top of each policy.
    axes = {"policy": args.policy.split(",")} if args.policy else {}
    axes.update(_parse_axes(args.axis))
    if axes:
        spec = spec.with_axes(**axes)
    print("sweep: %s" % spec.describe(), file=sys.stderr)
    return _run_spec(spec, args)


def _cmd_analyze(args) -> int:
    from repro.analytics import make_aggregators
    from repro.core import presets
    from repro.core.gpu import simulate_device
    from repro.core.simulator import simulate as simulate_sm
    from repro.workloads import get_workload, normalize_size

    _load_plugins(args)
    names = [n.strip() for n in args.observers.split(",") if n.strip()]
    if not names:
        raise ValueError("--observers needs at least one observer name")
    aggregators = make_aggregators(names, bins=args.bins)
    size = normalize_size(args.size)
    inst = get_workload(args.workload, size)
    observers = list(aggregators.values())
    if args.sm_count > 1:
        config = presets.device(args.config, sm_count=args.sm_count)
        stats = simulate_device(inst.kernel, inst.memory, config, observers=observers)
    else:
        config = presets.by_name(args.config)
        stats = simulate_sm(inst.kernel, inst.memory, config, observers=observers)
    for aggregator in observers:
        aggregator.finalize(stats)

    print(
        "analyze: %s/%s @%s — %d cycles, %.2f ipc"
        % (args.workload, args.config, size, stats.cycles, stats.ipc),
        file=sys.stderr,
    )
    for name in names:
        aggregator = aggregators[name]
        render = getattr(aggregator, "render", None)
        body = render() if callable(render) else repr(aggregator)
        print("\n== %s ==\n%s" % (name, body))

    if args.json:
        artifact = {
            "version": 1,
            "workload": args.workload,
            "size": size,
            "config": args.config,
            "sm_count": args.sm_count,
            "cycles": stats.cycles,
            "ipc": stats.ipc,
            "observers": {
                name: aggregators[name].snapshot()
                for name in names
                if hasattr(aggregators[name], "snapshot")
            },
        }
        with open(args.json, "w") as f:
            json.dump(artifact, f, indent=1, sort_keys=True)
            f.write("\n")
        print("wrote %s" % args.json, file=sys.stderr)

    # Observed peak issue rate must stay within the policy's modeled
    # front-end width (repro.hwcost.validate) — fail loudly otherwise.
    origins = next(
        (a for a in observers if hasattr(a, "peak_per_cycle")), None
    )
    if origins is not None:
        from repro.hwcost import front_end_width, validate_peak_issue

        validate_peak_issue(config, origins.snapshot())
        print(
            "peak-issue check: ok (observed <= modeled width %d)"
            % front_end_width(config),
            file=sys.stderr,
        )
    return 0


def _cmd_merge(args) -> int:
    merged = ResultSet()
    for path in args.inputs:
        rs = ResultSet.from_json(path)
        merged = merged.merge(rs, on_conflict=args.on_conflict)
    print(
        "# merged %d files -> %d cells%s"
        % (
            len(args.inputs),
            len(merged),
            ", %d errors" % len(merged.errors) if merged.errors else "",
        ),
        file=sys.stderr,
    )
    if args.save:
        merged.to_json(args.save)
        print("saved ResultSet to %s" % args.save, file=sys.stderr)
    # Render when asked for explicitly, or when there is no --save (a
    # bare merge should show *something*); `merge --save out.json`
    # alone stays quiet on stdout for scripted pipelines.
    fmt = args.format if args.format is not None else (None if args.save else "table")
    if fmt is not None:
        _emit(_render(merged, fmt, args.metric), args.output)
    return 0


def _cmd_bench(args) -> int:
    from repro import bench

    profiler = None
    if args.profile is not None or args.profile_out:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    result = bench.run_bench(
        size=args.size,
        repeat=args.repeat,
        modes=args.modes.split(",") if args.modes else None,
        workloads=args.workloads.split(",") if args.workloads else None,
        compiled=not args.reference,
    )
    if profiler is not None:
        profiler.disable()
        import pstats

        if args.profile_out:
            profiler.dump_stats(args.profile_out)
            print("wrote profile to %s" % args.profile_out, file=sys.stderr)
        top = args.profile if args.profile is not None else 0
        if top:
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(top)
    print(bench.format_report(result), file=sys.stderr)
    if args.json:
        # Refreshing a committed baseline must not drop its historical
        # reference block (README's speedup table points at it).
        try:
            previous = bench.load_artifact(args.json)
        except (OSError, ValueError):
            previous = None
        if isinstance(previous, dict) and "pre_pr_reference" in previous:
            result = dict(result, pre_pr_reference=previous["pre_pr_reference"])
        bench.annotate_speedup(result)
        bench.write_artifact(result, args.json)
        print("wrote %s" % args.json, file=sys.stderr)
    else:
        bench.annotate_speedup(result)
        print(json.dumps(result, indent=1, sort_keys=True))
    if args.check:
        baseline = bench.load_artifact(args.check)
        problems = bench.check_regression(result, baseline)
        for problem in problems:
            print("FAIL: %s" % problem, file=sys.stderr)
        if problems:
            return 1
        print(
            "perf check passed vs %s (%.1f cells/sec >= %.1f - %d%%)"
            % (
                args.check,
                result["cells_per_sec"],
                baseline["cells_per_sec"],
                round(bench.REGRESSION_TOLERANCE * 100),
            ),
            file=sys.stderr,
        )
    return 0


def _cmd_cache(args) -> int:
    if args.action == "info":
        print(result_cache.info(disk_dir=args.dir).describe())
        return 0
    # Unlike the Python API (where disk purge never defaults from the
    # environment), the CLI's explicit `clear` acts on the configured
    # cache: --dir if given, else $REPRO_CACHE_DIR.
    disk_dir = result_cache.resolve_dir(args.dir)
    removed = result_cache.clear(disk_dir=disk_dir)
    if disk_dir is None:
        print("cleared in-process cache (no disk cache configured)")
    else:
        print("cleared in-process cache and %d entries under %s" % (removed, disk_dir))
    return 0


def _cmd_store(args) -> int:
    import time

    from repro.service.store import ResultStore, resolve_store_dir

    store = ResultStore(resolve_store_dir(args.dir))
    if args.action == "info":
        info = store.info()
        print(
            "store %s: %d entries, %d bytes"
            % (info.root, info.entries, info.total_bytes)
        )
        return 0
    if args.action == "verify":
        outcome = store.verify()
        for problem in outcome.problems:
            print(
                "bad entry %s: %s" % (problem.digest[:16], problem.reason),
                file=sys.stderr,
            )
        print(
            "verified %d entries: %d bad" % (outcome.examined, len(outcome.problems))
        )
        return 0 if outcome.ok else 1
    result = store.gc(
        max_age=args.max_age,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        now=time.time(),
        dry_run=args.dry_run,
    )
    print(
        "%s %d of %d entries (%d bytes), kept %d, swept %d tombstone(s)"
        % (
            "would evict" if result.dry_run else "evicted",
            result.evicted,
            result.examined,
            result.evicted_bytes,
            result.kept,
            result.tombstones_swept,
        )
    )
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.service.daemon import make_server
    from repro.service.faults import FaultPlan
    from repro.service.store import resolve_store_dir

    _load_plugins(args)
    if args.fault_plan and args.fault_seed is not None:
        raise ValueError("--fault-plan and --fault-seed are mutually exclusive")

    def _injected_crash(kind: str) -> None:
        # A crash-* fault means the daemon process dies right here, the
        # way a real kill -9 would: no journal close, no atexit, no
        # graceful anything.  Exit code 70 (EX_SOFTWARE) marks it as
        # deliberate for the chaos harness.
        print("repro serve: injected crash (%s)" % kind, file=sys.stderr)
        sys.stderr.flush()
        os._exit(70)

    fault_plan = None
    if args.fault_plan:
        fault_plan = FaultPlan.parse(args.fault_plan, on_crash=_injected_crash)
    elif args.fault_seed is not None:
        fault_plan = FaultPlan.from_seed(args.fault_seed, on_crash=_injected_crash)
    server = make_server(
        host=args.host,
        port=args.port,
        store_dir=args.store,
        workers=args.workers,
        queue_limit=args.queue_limit,
        retry_after=args.retry_after,
        heartbeat=args.heartbeat,
        journal_path=args.journal,
        resume=args.resume,
        fault_plan=fault_plan,
    )
    host, port = server.server_address[:2]
    print(
        "repro serve: listening on http://%s:%d (store %s, %d workers)"
        % (host, port, resolve_store_dir(args.store), args.workers),
        file=sys.stderr,
    )
    if fault_plan is not None:
        print("repro serve: fault plan %s" % fault_plan.describe(), file=sys.stderr)

    def _graceful(signum, frame) -> None:
        # serve_forever() must be unwound from another thread: shutdown()
        # blocks until the serve loop exits, and a signal handler runs
        # *on* the main thread that is sitting in that loop.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        print("repro serve: draining workers and flushing journal", file=sys.stderr)
        server.shutdown()
        server.service.shutdown_gracefully()
        server.server_close()
    print("repro serve: stopped", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import LintError
    from repro.lint.runner import run_from_args

    try:
        return run_from_args(args)
    except LintError as exc:
        print("lint error: %s" % exc, file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def _add_plugin_option(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--plugin",
        action="append",
        metavar="MODULE",
        help="import MODULE first (repeatable) — third-party policies "
        "register themselves at import time",
    )


def _add_run_options(p: argparse.ArgumentParser) -> None:
    _add_plugin_option(p)
    p.add_argument("--jobs", type=int, default=None, help="parallel worker processes")
    p.add_argument(
        "--cache-dir", default=None, help="on-disk result cache (or $REPRO_CACHE_DIR)"
    )
    p.add_argument("--format", choices=FORMATS, default="table")
    p.add_argument("--metric", default="ipc", help="stats attribute to tabulate")
    p.add_argument("--output", default=None, help="write the table to a file")
    p.add_argument(
        "--save",
        default=None,
        metavar="PATH",
        help="also write the full ResultSet as JSON "
        "(reload with repro.api.ResultSet.from_json, merge across runs)",
    )
    p.add_argument(
        "--progress", action="store_true", help="report each cell on stderr"
    )
    p.add_argument(
        "--keep-going",
        action="store_true",
        help="collect per-cell failures instead of aborting the sweep",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="always simulate and check outputs against the numpy references",
    )
    p.add_argument(
        "--observer",
        action="append",
        metavar="NAME",
        help="attach a registered observer to every cell (repeatable; "
        "forces the inline backend and bypasses the result cache — "
        "see repro policies for names, e.g. timeline, heatmap, origins)",
    )
    p.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="run cells on a repro serve daemon (remote backend), "
        "e.g. http://127.0.0.1:8421",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request timeout in seconds for --server (default 30)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=3,
        help="retry attempts for --server requests (default 3)",
    )
    p.add_argument(
        "--fallback",
        choices=("inline",),
        default=None,
        help="with --server: degrade to inline simulation when the "
        "daemon is unreachable or shutting down (results are "
        "published back once the daemon recovers)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SBI/SWI (ISCA 2012) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="list the registered workloads")
    p.add_argument("--category", choices=("regular", "irregular"), default=None)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_workloads)

    p = sub.add_parser("policies", help="list or describe registered policies")
    p.add_argument("name", nargs="?", default=None, help="describe one policy")
    p.add_argument("--json", action="store_true")
    _add_plugin_option(p)
    p.set_defaults(fn=_cmd_policies)

    p = sub.add_parser("figure7", help="the paper's headline IPC grid")
    p.add_argument("--size", default="bench", help="workload size (e.g. smoke, bench)")
    p.add_argument(
        "--workloads", default=None, help="comma list restricting the grid (default all)"
    )
    _add_run_options(p)
    p.set_defaults(fn=_cmd_figure7)

    p = sub.add_parser("sweep", help="run an arbitrary workloads x configs grid")
    p.add_argument(
        "--workloads",
        default="all",
        help="comma list of names or groups (all, regular, irregular)",
    )
    p.add_argument(
        "--configs",
        default="baseline,sbi,swi,sbi_swi,warp64",
        help="comma list of preset names",
    )
    p.add_argument("--size", default="bench", help="comma list of sizes")
    p.add_argument(
        "--axis",
        action="append",
        metavar="FIELD=V1,V2,...",
        help="expand every config along a field (repeatable), "
        "e.g. --axis sm_count=1,2,4,8",
    )
    p.add_argument(
        "--policy",
        default=None,
        metavar="P1,P2,...",
        help="expand every config along registered policy presets "
        "(the 'policy' axis; see repro policies)",
    )
    _add_run_options(p)
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "analyze",
        help="stream one cell through the analytics aggregators "
        "(timeline, heatmap, origins)",
    )
    p.add_argument("--workload", required=True, help="workload name")
    p.add_argument("--config", default="sbi_swi", help="policy preset name")
    p.add_argument("--size", default="tiny", help="workload size")
    p.add_argument(
        "--sm-count",
        type=int,
        default=1,
        help="simulate a device with N SMs (default 1: single-SM run)",
    )
    p.add_argument(
        "--observers",
        default="timeline,heatmap,origins",
        metavar="N1,N2,...",
        help="comma list of registered observers to attach",
    )
    p.add_argument(
        "--bins",
        type=int,
        default=None,
        help="bin capacity for the binned aggregators (default 64)",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write every aggregator snapshot as one JSON artifact",
    )
    _add_plugin_option(p)
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser(
        "merge", help="combine ResultSet JSON artifacts (repro sweep --save)"
    )
    p.add_argument("inputs", nargs="+", metavar="RESULTS.json")
    p.add_argument(
        "--on-conflict",
        choices=("error", "keep", "replace"),
        default="error",
        help="what to do when two files disagree on one cell",
    )
    p.add_argument("--save", default=None, metavar="PATH", help="write merged JSON")
    p.add_argument(
        "--format",
        choices=FORMATS,
        default=None,
        help="render the merged set (default: table, unless --save is given)",
    )
    p.add_argument("--metric", default="ipc", help="stats attribute to tabulate")
    p.add_argument("--output", default=None, help="write the table to a file")
    p.set_defaults(fn=_cmd_merge)

    p = sub.add_parser(
        "bench", help="measure raw simulation speed (cells/sec, cycles/sec)"
    )
    p.add_argument("--size", default="smoke", help="workload size (default smoke)")
    p.add_argument(
        "--repeat", type=int, default=1, help="best-of-N timing repeats"
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the artifact to PATH (e.g. BENCH_speed.json) "
        "instead of stdout",
    )
    p.add_argument(
        "--check",
        default=None,
        metavar="BASELINE.json",
        help="exit 1 if cells/sec drops >30%% below this baseline artifact",
    )
    p.add_argument(
        "--workloads", default=None, help="comma list restricting the matrix"
    )
    p.add_argument(
        "--modes", default=None, help="comma list of modes (default figure-7 five)"
    )
    p.add_argument(
        "--reference",
        action="store_true",
        help="time the reference interpreter instead of compiled plans",
    )
    p.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=25,
        default=None,
        metavar="N",
        help="profile the run with cProfile and print the top N "
        "functions by cumulative time (default 25)",
    )
    p.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="dump the raw pstats profile to PATH (implies profiling; "
        "inspect with `python -m pstats PATH`)",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("cache", help="inspect or purge the result caches")
    p.add_argument("action", choices=("info", "clear"))
    p.add_argument(
        "--dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "store",
        help="inspect, verify, or garbage-collect the shared result store",
    )
    p.add_argument("action", choices=("info", "gc", "verify"))
    p.add_argument(
        "--dir",
        default=None,
        help="store root (default: $REPRO_STORE_DIR or .repro_store)",
    )
    p.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="gc: evict entries older than this",
    )
    p.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="gc: keep at most N newest entries",
    )
    p.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="gc: keep the newest entries totalling at most N bytes",
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="gc: report what would be evicted without deleting",
    )
    p.set_defaults(fn=_cmd_store)

    p = sub.add_parser(
        "serve",
        help="run the sweep daemon (remote backend + shared result store)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8421, help="bind port (0 picks a free one)"
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="content-addressed result store root "
        "(default: $REPRO_STORE_DIR or .repro_store)",
    )
    p.add_argument(
        "--workers", type=int, default=2, help="simulation worker threads"
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="max queued simulations before 429 back-pressure",
    )
    p.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        help="Retry-After seconds sent with 429 responses",
    )
    p.add_argument(
        "--heartbeat",
        type=float,
        default=5.0,
        help="progress-stream heartbeat interval in seconds",
    )
    p.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write-ahead job journal (default: <store>/journal.ndjson)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay the journal on startup and requeue unfinished jobs",
    )
    p.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="inject faults: comma-separated KIND[@OP][:NTH][xCOUNT] "
        "specs (e.g. 'drop-connection@jobs:2,crash-after-publish:3')",
    )
    p.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="N",
        help="inject a deterministic seed-derived fault plan",
    )
    _add_plugin_option(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "lint",
        help="determinism & invariant static analysis over the source tree",
    )
    from repro.lint.runner import add_arguments as _add_lint_arguments

    _add_lint_arguments(p)
    p.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.service.remote import RemoteError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (ValueError, KeyError, RemoteError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (`repro ... | head`); not an error, but
        # Python prints a traceback at shutdown unless the fd is
        # parked on devnull first.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
