"""Two-level result cache shared by every execution backend.

A *cell* is one (workload, size, config) simulation.  Results are
memoised

* in process (``MEMO``), so a pytest/benchmark session reuses
  simulations across fixtures, and
* optionally on disk as one JSON file per cell (``disk_dir`` argument
  or the ``REPRO_CACHE_DIR`` environment variable), so re-running a
  sweep with a warm cache performs no simulation at all.

Both levels key on *every* field of the configuration dataclass
(nested :class:`~repro.timing.config.SMConfig` included), so sweeps
over scoreboard kind, CCT capacity, L1 geometry or DRAM parameters
never collide.  Disk entries are written strictly — a stats field that
json cannot encode raises :class:`CacheSerializationError` at store
time instead of being stringified and corrupting a later reload.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import tempfile
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.timing.config import GPUConfig, SMConfig
from repro.timing.stats import DeviceStats, Stats

AnyConfig = Union[SMConfig, GPUConfig]
AnyStats = Union[Stats, DeviceStats]

#: Environment variable naming the persistent on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump when the result schema or simulator semantics change; stale
#: disk entries are ignored rather than mis-loaded.
CACHE_VERSION = 1

#: Default in-process memo: (workload, size, config_key) -> stats.
MEMO: Dict[Tuple, AnyStats] = {}

#: Disk entries are named <workload>-<size>-<20 hex digest chars>.json;
#: cache maintenance only ever touches files matching this shape.
_ENTRY_RE = re.compile(r"^.+-[0-9a-f]{20}\.json$")


class CacheSerializationError(ValueError):
    """A stats object produced a field json cannot encode strictly."""


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------


def _freeze(value: object) -> object:
    if isinstance(value, dict):
        return tuple((k, _freeze(v)) for k, v in sorted(value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def config_key(config: AnyConfig) -> Tuple:
    """Hashable key covering every field of ``config``.

    Derived from ``dataclasses.asdict``, so new fields are picked up
    automatically and nested configs (``GPUConfig.sm``) are included.
    """
    return (type(config).__name__,) + _freeze(dataclasses.asdict(config))


def config_to_payload(config: AnyConfig) -> Dict:
    """The canonical JSON shape of a configuration.

    This is the wire/disk form shared by the hash derivation, disk
    cache entries, the shared result store and the service protocol —
    one shape, so a config always round-trips to the same content
    address no matter which layer serialized it.
    """
    return {
        "type": type(config).__name__,
        "fields": dataclasses.asdict(config),
    }


def config_from_payload(payload: Dict) -> AnyConfig:
    """Rebuild a config from :func:`config_to_payload` output.

    Raises ``ValueError`` on unknown types or field sets (e.g. a
    payload produced by a newer schema), and lets the config's own
    ``validate`` reject bad values — including unregistered policy
    names, which a service host fixes by importing the plugin module.
    """
    kind = payload.get("type")
    fields = payload.get("fields")
    if not isinstance(fields, dict):
        raise ValueError("config payload has no 'fields' mapping")
    try:
        if kind == "SMConfig":
            return SMConfig(**fields)
        if kind == "GPUConfig":
            sm_fields = fields.get("sm")
            if not isinstance(sm_fields, dict):
                raise ValueError("GPUConfig payload has no nested 'sm' fields")
            rest = {k: v for k, v in fields.items() if k != "sm"}
            return GPUConfig(sm=SMConfig(**sm_fields), **rest)
    except TypeError as exc:  # unknown/missing dataclass fields
        raise ValueError("bad %s payload: %s" % (kind, exc)) from exc
    raise ValueError(
        "unknown config payload type %r (expected SMConfig or GPUConfig)"
        % (kind,)
    )


def config_hash(config: AnyConfig) -> str:
    """Stable hex digest of the complete configuration."""
    # No default= fallback: a non-JSON-native field must fail loudly
    # here rather than be repr'd (repr can embed object addresses,
    # which would derive a different key on every run).
    blob = json.dumps(config_to_payload(config), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def cell_key(workload: str, size: str, config: AnyConfig) -> Tuple:
    """In-process memo key for one cell."""
    return (workload, size, config_key(config))


def cell_hash(workload: str, size: str, config: AnyConfig) -> str:
    payload = {
        "version": CACHE_VERSION,
        "workload": workload,
        "size": size,
        "config": config_hash(config),
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Stats payloads (shared with ResultSet serialization)
# ----------------------------------------------------------------------


def stats_to_payload(stats: AnyStats) -> Dict:
    kind = "device" if isinstance(stats, DeviceStats) else "sm"
    return {"kind": kind, "data": stats.to_dict()}


def stats_from_payload(payload: Dict) -> AnyStats:
    if payload["kind"] == "device":
        return DeviceStats.from_dict(payload["data"])
    return Stats.from_dict(payload["data"])


# ----------------------------------------------------------------------
# Disk level
# ----------------------------------------------------------------------


def atomic_write_text(path: str, text: str) -> None:
    """Write ``path`` so readers never observe a torn file.

    The text lands in a ``mkstemp`` sibling first and is moved into
    place with ``os.replace``, so a reader sees either the old entry or
    the complete new one.  ``mkstemp`` (unlike a fixed ``.tmp`` name,
    even a pid-suffixed one) keeps *threads* of one process — the serve
    daemon's worker pool — from interleaving writes into the same
    temporary file.  A crash mid-write leaves only a ``*.tmp`` orphan
    that no loader ever matches.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)  # atomic under concurrent writers
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def resolve_dir(disk_dir: Optional[str]) -> Optional[str]:
    """Explicit directory, else ``$REPRO_CACHE_DIR``, else None."""
    if disk_dir is None:
        disk_dir = os.environ.get(CACHE_DIR_ENV) or None
    return disk_dir


def entry_path(disk_dir: str, workload: str, size: str, config: AnyConfig) -> str:
    name = "%s-%s-%s.json" % (workload, size, cell_hash(workload, size, config)[:20])
    return os.path.join(disk_dir, name)


def disk_load(
    disk_dir: str, workload: str, size: str, config: AnyConfig
) -> Optional[AnyStats]:
    path = entry_path(disk_dir, workload, size, config)
    try:
        with open(path) as f:
            entry = json.load(f)
    except (OSError, ValueError):
        return None
    if entry.get("version") != CACHE_VERSION:
        return None
    try:
        return stats_from_payload(entry["stats"])
    except (KeyError, TypeError):
        return None


def disk_store(
    disk_dir: str, workload: str, size: str, config: AnyConfig, stats: AnyStats
) -> None:
    entry = {
        "version": CACHE_VERSION,
        "workload": workload,
        "size": size,
        "config": config_to_payload(config),
        "stats": stats_to_payload(stats),
    }
    # Serialize strictly *before* touching the filesystem: a default=
    # fallback would stringify unknown field types, which either fails
    # or silently corrupts the entry on a later from_dict reload.
    try:
        blob = json.dumps(entry, indent=1, sort_keys=True, allow_nan=True)
    except (TypeError, ValueError) as exc:
        raise CacheSerializationError(
            "cannot cache %s result for %s/%s: %s — every Stats field must "
            "be JSON-serializable (add an explicit encoding to "
            "to_dict/from_dict rather than relying on repr)"
            % (type(stats).__name__, workload, size, exc)
        ) from exc
    os.makedirs(disk_dir, exist_ok=True)
    atomic_write_text(entry_path(disk_dir, workload, size, config), blob)


# ----------------------------------------------------------------------
# Maintenance
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CacheInfo:
    """One snapshot of both cache levels (``repro cache info``)."""

    memo_entries: int
    disk_dir: Optional[str]
    disk_entries: int
    disk_bytes: int

    def describe(self) -> str:
        lines = ["in-process : %d entries" % self.memo_entries]
        if self.disk_dir is None:
            lines.append("on-disk    : disabled (set %s or pass --dir)" % CACHE_DIR_ENV)
        else:
            lines.append(
                "on-disk    : %s — %d entries, %.1f KiB"
                % (self.disk_dir, self.disk_entries, self.disk_bytes / 1024.0)
            )
        return "\n".join(lines)


def _disk_entries(disk_dir: str) -> Iterator[str]:
    try:
        names = sorted(os.listdir(disk_dir))
    except OSError:
        return
    for name in names:
        if _ENTRY_RE.match(name):
            yield os.path.join(disk_dir, name)


def info(disk_dir: Optional[str] = None, memo: Optional[Dict] = None) -> CacheInfo:
    """Entry counts and on-disk footprint of both cache levels."""
    memo = MEMO if memo is None else memo
    disk_dir = resolve_dir(disk_dir)
    entries = 0
    total = 0
    if disk_dir is not None:
        for path in _disk_entries(disk_dir):
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
            entries += 1
    return CacheInfo(len(memo), disk_dir, entries, total)


def clear(disk_dir: Optional[str] = None, memo: Optional[Dict] = None) -> int:
    """Drop the in-process memo; with ``disk_dir``, purge disk entries too.

    Unlike lookups, ``disk_dir`` is *not* defaulted from
    ``$REPRO_CACHE_DIR`` — deleting files stays opt-in and explicit.
    Only files matching the cache naming scheme are removed (the
    directory itself, and anything else in it, is left alone).
    Returns the number of disk entries removed.
    """
    memo = MEMO if memo is None else memo
    memo.clear()
    removed = 0
    if disk_dir is not None:
        for path in _disk_entries(disk_dir):
            try:
                os.remove(path)
            except OSError:
                continue
            removed += 1
    return removed
