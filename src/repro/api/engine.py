"""The experiment engine: runs a :class:`SweepSpec` through a backend.

The :class:`Engine` owns the two-level result cache
(:mod:`repro.api.cache`) and delegates uncached cells to a pluggable
execution backend:

``inline``
    simulate in this process, one cell at a time;
``process``
    fan uncached cells out over a ``ProcessPoolExecutor`` (simulations
    are single-threaded and independent, so grids parallelise
    embarrassingly; every worker honours the same disk cache);
``remote``
    submit uncached cells to a ``repro serve`` daemon
    (:mod:`repro.service`) and fold its results into the local caches
    — identical in-flight cells coalesce to one simulation on the
    daemon, and results land in its content-addressed shared store.

Progress callbacks see every cell as it resolves (with a ``cached``
flag), and the error policy picks fail-fast (``errors="raise"``) or
collect-and-continue (``errors="collect"``, failed cells end up in
``ResultSet.errors``)::

    engine = Engine(jobs=4, cache_dir=".repro_cache")
    rs = engine.run(SweepSpec.figure7(size="smoke"))
    print(rs.to_markdown())
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.api import cache as result_cache
from repro.api.cache import AnyConfig, AnyStats
from repro.api.results import CellError, Result, ResultSet
from repro.api.spec import Cell, SweepSpec
from repro.core.gpu import simulate_device
from repro.core.policy.observers import Observer
from repro.core.simulator import simulate
from repro.timing.config import GPUConfig
from repro.workloads import get_workload, normalize_size

#: Error policies of :meth:`Engine.run`.
ERROR_POLICIES = ("raise", "collect")

#: Execution backends, in dispatch order.  Each name ``x`` pairs with
#: an ``Engine._run_x`` runner; validation and the backend error
#: message derive from this tuple, so adding a backend is one entry
#: plus one method.
BACKENDS = ("inline", "process", "remote")


@dataclass(frozen=True)
class Progress:
    """One progress event: the ``done``-th of ``total`` unique cells.

    ``done`` counts monotonically from 1 to ``total`` over the whole
    run — including fully-cached runs, where every event carries
    ``cached=True``.  ``source`` records provenance for remote cells
    (``"simulated"``, ``"store"`` or ``"coalesced"`` from the daemon,
    ``"fallback"`` for cells a degraded client simulated inline);
    local backends leave it ``None``.
    """

    done: int
    total: int
    workload: str
    size: str
    config_name: str
    cached: bool
    error: Optional[str] = None
    source: Optional[str] = None


ProgressFn = Callable[[Progress], None]


def _simulate_instance(inst, config: AnyConfig) -> AnyStats:
    if isinstance(config, GPUConfig):
        return simulate_device(inst.kernel, inst.memory, config)
    return simulate(inst.kernel, inst.memory, config)


def _worker_init(plugins: Tuple[str, ...]) -> None:
    """Pool initializer: import plugin modules so policies they
    register exist in the worker even under spawn/forkserver start
    methods (under fork the parent's registry is inherited anyway)."""
    import importlib

    for name in plugins:
        importlib.import_module(name)


def _worker_cell(
    workload: str,
    size: str,
    config: AnyConfig,
    disk_dir: Optional[str],
    verify: bool = False,
) -> AnyStats:
    """Process-pool entry point: one disk-cache-aware cell.

    Module-level so it pickles; workers re-check the disk cache (a
    sibling may have stored the cell meanwhile) and store their own
    results, exactly like the in-process path.  ``verify`` bypasses
    the cache read and checks the outputs against the numpy
    reference, as in :meth:`Engine.run_cell`.
    """
    if disk_dir and not verify:
        stats = result_cache.disk_load(disk_dir, workload, size, config)
        if stats is not None:
            return stats
    inst = get_workload(workload, size)
    stats = _simulate_instance(inst, config)
    if verify and inst.numpy_check is not None:
        inst.numpy_check(inst.memory)
    if disk_dir:
        result_cache.disk_store(disk_dir, workload, size, config, stats)
    return stats


class Engine:
    """Executes sweeps through the two-level cache and a backend.

    ``workload_factory`` / ``simulate_fn`` / ``simulate_device_fn``
    override how *inline* cells are built and simulated (tests use
    this to stay monkeypatch-compatible); the ``process`` backend
    always runs the real functions in its workers.
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        memo: Optional[Dict] = None,
        progress: Optional[ProgressFn] = None,
        errors: str = "raise",
        plugins: Optional[List[str]] = None,
        observers: Optional[List[str]] = None,
        server: Optional[str] = None,
        timeout: float = 30.0,
        retries: int = 3,
        fallback: Optional[str] = None,
        workload_factory=None,
        simulate_fn=None,
        simulate_device_fn=None,
    ):
        if backend is None:
            if server is not None:
                backend = "remote"
            elif observers:
                backend = "inline"
            else:
                backend = "process" if jobs is not None and jobs > 1 else "inline"
        if backend not in BACKENDS:
            raise ValueError(
                "backend must be one of %s, got %r"
                % (", ".join(repr(b) for b in BACKENDS), backend)
            )
        if backend == "remote" and server is None:
            raise ValueError("backend 'remote' requires server=<daemon URL>")
        if server is not None and not server.startswith(("http://", "https://")):
            raise ValueError("server must be an http(s) URL, got %r" % (server,))
        if errors not in ERROR_POLICIES:
            raise ValueError("errors must be one of %s" % (ERROR_POLICIES,))
        if fallback not in (None, "inline"):
            raise ValueError(
                "fallback must be None or 'inline', got %r" % (fallback,)
            )
        if fallback is not None and backend != "remote":
            raise ValueError(
                "fallback requires the remote backend (it is the remote "
                "path's degraded mode), got backend=%r" % backend
            )
        if observers:
            if backend != "inline":
                raise ValueError(
                    "observers require the inline backend (observed cells "
                    "must simulate in this process), got backend=%r" % backend
                )
            import repro.analytics  # noqa: F401  (registers built-in aggregators)
            from repro.core.policy import OBSERVERS

            for name in observers:
                OBSERVERS.get(name)  # unknown names fail with the known list
        self.backend = backend
        self.jobs = jobs
        self.server = server
        self.timeout = timeout
        self.retries = retries
        #: ``"inline"`` lets the remote backend degrade to local
        #: simulation once the daemon is unreachable (circuit breaker
        #: open / retries exhausted); None (default) fails loudly.
        self.fallback = fallback
        self._remote_client = None
        #: Module names imported in every process-pool worker (policy
        #: plugins must be registered there too, not just here).
        self.plugins = tuple(plugins or ())
        self.cache_dir = cache_dir
        self.memo = result_cache.MEMO if memo is None else memo
        self.progress = progress
        self.errors = errors
        self._get_workload = workload_factory or get_workload
        self._simulate = simulate_fn or simulate
        self._simulate_device = simulate_device_fn or simulate_device
        self.observer_names: Tuple[str, ...] = tuple(observers or ())
        #: ``(workload, size, config_name) -> {observer name: instance}``
        #: for every cell the last sweep simulated with observers
        #: attached.  Observed cells always simulate (cache reads are
        #: bypassed), so each entry saw the complete event stream.
        self.observations: Dict[Tuple[str, str, str], Dict[str, Observer]] = {}

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _disk_dir(self, cache: bool) -> Optional[str]:
        return result_cache.resolve_dir(self.cache_dir) if cache else None

    def _lookup(self, workload, size, config, disk_dir) -> Optional[AnyStats]:
        key = result_cache.cell_key(workload, size, config)
        if key in self.memo:
            return self.memo[key]
        if disk_dir:
            stats = result_cache.disk_load(disk_dir, workload, size, config)
            if stats is not None:
                self.memo[key] = stats
                return stats
        return None

    def _store(self, workload, size, config, stats, cache, disk_dir) -> None:
        if not cache:
            return
        self.memo[result_cache.cell_key(workload, size, config)] = stats
        if disk_dir:
            result_cache.disk_store(disk_dir, workload, size, config, stats)

    # ------------------------------------------------------------------
    # Single cells
    # ------------------------------------------------------------------

    def _compute_inline(self, workload, size, config, verify, observers=None) -> AnyStats:
        inst = self._get_workload(workload, size)
        # Only pass the keyword when observers are attached so injected
        # simulate_fn doubles that ignore it keep working unchanged.
        kwargs = {} if not observers else {"observers": observers}
        if isinstance(config, GPUConfig):
            stats = self._simulate_device(inst.kernel, inst.memory, config, **kwargs)
        else:
            stats = self._simulate(inst.kernel, inst.memory, config, **kwargs)
        if verify and inst.numpy_check is not None:
            inst.numpy_check(inst.memory)
        return stats

    def _make_observers(self) -> Dict[str, Observer]:
        from repro.core.policy import OBSERVERS

        return {name: OBSERVERS.get(name)() for name in self.observer_names}

    def run_cell(
        self,
        workload: str,
        size: str,
        config: AnyConfig,
        verify: bool = False,
        cache: bool = True,
    ) -> AnyStats:
        """One (workload, size, config) cell through the caches.

        ``verify=True`` always simulates (the functional outputs must
        exist to be checked against the numpy reference) but still
        stores the result when ``cache`` is on.
        """
        size = normalize_size(size)
        disk_dir = self._disk_dir(cache)
        if cache and not verify:
            stats = self._lookup(workload, size, config, disk_dir)
            if stats is not None:
                return stats
        stats = self._compute_inline(workload, size, config, verify)
        self._store(workload, size, config, stats, cache, disk_dir)
        return stats

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------

    def run(
        self,
        spec: SweepSpec,
        verify: bool = False,
        progress: Optional[ProgressFn] = None,
        errors: Optional[str] = None,
    ) -> ResultSet:
        """Execute every cell of ``spec`` and return a ResultSet.

        Cells whose configs alias (identical key under different
        names) simulate once.  Progress fires once per *unique* cell;
        under ``errors="collect"`` failed cells are reported in
        ``ResultSet.errors`` instead of aborting the sweep.
        """
        progress = progress if progress is not None else self.progress
        errors = self.errors if errors is None else errors
        if errors not in ERROR_POLICIES:
            raise ValueError("errors must be one of %s" % (ERROR_POLICIES,))

        cells = spec.cells()
        # Unique work items: aliased configs share one simulation.
        unique: Dict[Tuple, Cell] = {}
        for cell in cells:
            key = result_cache.cell_key(cell.workload, cell.size, cell.config)
            unique.setdefault(key, cell)

        outcome: Dict[Tuple, object] = {}  # key -> AnyStats | CellError
        total = len(unique)
        done = 0

        def emit(
            cell: Cell,
            cached: bool,
            error: Optional[str] = None,
            source: Optional[str] = None,
        ) -> None:
            nonlocal done
            done += 1
            if progress is not None:
                progress(
                    Progress(
                        done, total, cell.workload, cell.size, cell.config_name,
                        cached, error, source,
                    )
                )

        disk_dir = self._disk_dir(cache=True)
        pending: List[Tuple[Tuple, Cell]] = []
        for key, cell in unique.items():
            stats = (
                None
                # Observed cells must simulate: a cached Stats object
                # carries no event stream for the aggregators to see.
                if verify or self.observer_names
                else self._lookup(cell.workload, cell.size, cell.config, disk_dir)
            )
            if stats is not None:
                outcome[key] = stats
                emit(cell, cached=True)
            else:
                pending.append((key, cell))

        if pending:
            runner = getattr(self, "_run_%s" % self.backend)
            runner(pending, disk_dir, verify, errors, outcome, emit)

        results: List[Result] = []
        cell_errors: List[CellError] = []
        for cell in cells:
            key = result_cache.cell_key(cell.workload, cell.size, cell.config)
            got = outcome.get(key)
            if got is None:
                continue  # unresolved under fail-fast abort
            if isinstance(got, CellError):
                cell_errors.append(
                    CellError(cell.workload, cell.size, cell.config_name, got.error)
                )
            else:
                results.append(Result(cell.workload, cell.size, cell.config_name, got))
        return ResultSet(results, errors=cell_errors)

    # -- backends ------------------------------------------------------

    def _run_inline(self, pending, disk_dir, verify, errors, outcome, emit) -> None:
        for key, cell in pending:
            observers = self._make_observers()
            try:
                stats = self._compute_inline(
                    cell.workload, cell.size, cell.config, verify,
                    observers=list(observers.values()),
                )
            except Exception as exc:
                if errors == "raise":
                    raise
                outcome[key] = CellError(
                    cell.workload, cell.size, cell.config_name, str(exc)
                )
                emit(cell, cached=False, error=str(exc))
                continue
            if observers:
                for obs in observers.values():
                    obs.finalize(stats)
                self.observations[
                    (cell.workload, cell.size, cell.config_name)
                ] = observers
            self._store(cell.workload, cell.size, cell.config, stats, True, disk_dir)
            outcome[key] = stats
            emit(cell, cached=False)

    def _run_process(self, pending, disk_dir, verify, errors, outcome, emit) -> None:
        jobs = self.jobs if self.jobs is not None and self.jobs > 1 else None
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=_worker_init, initargs=(self.plugins,)
        ) as pool:
            futures = {
                pool.submit(
                    _worker_cell,
                    cell.workload,
                    cell.size,
                    cell.config,
                    disk_dir,
                    verify,
                ): (key, cell)
                for key, cell in pending
            }
            # Consume in completion order so progress never stalls
            # behind a slow early cell.
            try:
                for future in as_completed(futures):
                    key, cell = futures[future]
                    try:
                        stats = future.result()
                    except Exception as exc:
                        if errors == "raise":
                            raise
                        outcome[key] = CellError(
                            cell.workload, cell.size, cell.config_name, str(exc)
                        )
                        emit(cell, cached=False, error=str(exc))
                        continue
                    # Workers wrote the disk level themselves; fold into
                    # this process's memo so later lookups are free.
                    self.memo[key] = stats
                    outcome[key] = stats
                    emit(cell, cached=False)
            except BaseException:
                # Fail fast: drop every queued cell; only cells already
                # running finish (and still land in the disk cache).
                pool.shutdown(wait=True, cancel_futures=True)
                raise

    @property
    def remote_client(self):
        """The lazily-built client for ``backend="remote"``.

        Lazy so constructing an inline/process Engine never imports the
        service package, and shared across runs so concurrent sweeps on
        one Engine coalesce client-side.
        """
        if self._remote_client is None:
            from repro.service.remote import RemoteClient

            if self.server is None:
                raise ValueError("no server configured for remote backend")
            self._remote_client = RemoteClient(
                self.server, timeout=self.timeout, retries=self.retries
            )
        return self._remote_client

    def _run_remote(self, pending, disk_dir, verify, errors, outcome, emit) -> None:
        from repro.service.remote import run_remote

        run_remote(self, pending, disk_dir, verify, errors, outcome, emit)


def run(spec: SweepSpec, **engine_kwargs) -> ResultSet:
    """One-shot convenience: ``Engine(**engine_kwargs).run(spec)``."""
    return Engine(**engine_kwargs).run(spec)
