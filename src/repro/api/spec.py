"""Declarative sweep specifications.

A :class:`SweepSpec` names the cartesian product the paper's
evaluation is made of — workloads x sizes x named configurations —
without running anything.  Configurations are real
:class:`~repro.timing.config.SMConfig` / ``GPUConfig`` objects (or
preset names, resolved eagerly), and *axis overrides* expand the grid
along any config field::

    spec = SweepSpec.from_presets(["baseline", "sbi_swi"],
                                  workloads=["bfs", "matrixmul"],
                                  size="bench")
    spec = spec.with_axes(sm_count=[1, 2, 4, 8])   # 2x2x4 = 16 cells

``sm_count`` is a device-level field: applying it to an ``SMConfig``
wraps the SM in a :class:`~repro.timing.config.GPUConfig`; SM-level
fields applied to a ``GPUConfig`` are forwarded to its ``sm``.  The
spec validates workload names, sizes and axis fields eagerly, so a
typo fails before the first simulation rather than mid-sweep.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.cache import AnyConfig
from repro.core import presets
from repro.timing.config import GPUConfig, SMConfig
from repro.workloads import ALL_WORKLOADS, IRREGULAR, REGULAR, normalize_size

_SM_FIELDS = {f.name for f in dataclasses.fields(SMConfig)}
_GPU_FIELDS = {f.name for f in dataclasses.fields(GPUConfig)} - {"sm"}


@dataclass(frozen=True)
class Cell:
    """One point of a sweep: a workload at a size under a named config."""

    workload: str
    size: str
    config_name: str
    config: AnyConfig


def apply_override(config: AnyConfig, field: str, value) -> AnyConfig:
    """``config`` with one field overridden, promoting across levels.

    Fields of the config's own level win — crucial for names that
    exist at both levels (``dram_bandwidth``, ``dram_latency``), where
    the device copy overrides the SM copy whenever set.  Otherwise SM
    fields on a ``GPUConfig`` reach through to ``config.sm``, and
    device fields (``sm_count``, ``l2_size``, ...) on an ``SMConfig``
    promote it to a single-SM ``GPUConfig`` first.

    The virtual ``policy`` axis swaps the whole *SM microarchitecture*:
    the value names a registered policy whose preset replaces the SM
    config (device-level fields are kept).  This differs from the
    ``mode`` field axis, which changes only the mode string and keeps
    every other SM knob — sweeping ``policy`` compares machines on
    their own terms (each policy's warp geometry, latencies and
    scoreboard), which is what ``repro sweep --policy`` exposes.
    """
    if field == "policy":
        from repro.core import presets

        sm = presets.by_name(value) if isinstance(value, str) else value
        if not isinstance(sm, SMConfig):
            raise ValueError(
                "policy axis values must be registered policy names or "
                "SMConfig objects, got %r" % (value,)
            )
        if isinstance(config, GPUConfig):
            return config.replace(sm=sm)
        return sm
    if isinstance(config, GPUConfig):
        if field in _GPU_FIELDS:
            return config.replace(**{field: value})
        if field in _SM_FIELDS:
            return config.replace(sm=config.sm.replace(**{field: value}))
    else:
        if field in _SM_FIELDS:
            return config.replace(**{field: value})
        if field in _GPU_FIELDS:
            return GPUConfig(sm=config, **{field: value})
    raise ValueError(
        "unknown config field %r: SM fields are %s; device fields are %s "
        "(or the virtual axis 'policy', naming registered policies)"
        % (field, ", ".join(sorted(_SM_FIELDS)), ", ".join(sorted(_GPU_FIELDS)))
    )


def _resolve_workloads(workloads) -> Tuple[str, ...]:
    """Workload names, with ``all``/``regular``/``irregular`` groups."""
    if workloads is None:
        return tuple(ALL_WORKLOADS)
    if isinstance(workloads, str):
        workloads = [workloads]
    names: List[str] = []
    for token in workloads:
        group = {"all": ALL_WORKLOADS, "regular": REGULAR, "irregular": IRREGULAR}.get(
            token
        )
        if group is not None:
            names.extend(group)
        else:
            if token not in ALL_WORKLOADS:
                raise ValueError(
                    "unknown workload %r: choose from %s (or the groups "
                    "all, regular, irregular)" % (token, ", ".join(ALL_WORKLOADS))
                )
            names.append(token)
    # Preserve order, drop duplicates.
    return tuple(dict.fromkeys(names))


def _resolve_configs(configs) -> Dict[str, AnyConfig]:
    if isinstance(configs, str):
        configs = [configs]
    if not isinstance(configs, Mapping):
        items = list(configs)
        if any(not isinstance(item, str) for item in items):
            raise ValueError(
                "configs given as a sequence must be preset names; pass "
                "explicit SMConfig/GPUConfig objects as a {name: config} "
                "mapping instead"
            )
        configs = {name: name for name in items}
    resolved: Dict[str, AnyConfig] = {}
    for name, config in configs.items():
        if isinstance(config, str):
            config = presets.by_name(config)
        if not isinstance(config, (SMConfig, GPUConfig)):
            raise ValueError(
                "config %r must be an SMConfig, a GPUConfig or a preset "
                "name, got %r" % (name, config)
            )
        resolved[name] = config
    if not resolved:
        raise ValueError("a SweepSpec needs at least one configuration")
    return resolved


@dataclass(frozen=True)
class SweepSpec:
    """workloads x sizes x named configs, expanded by :meth:`cells`."""

    workloads: Tuple[str, ...]
    configs: Mapping[str, AnyConfig]
    sizes: Tuple[str, ...] = ("bench",)

    def __init__(
        self,
        workloads=None,
        configs=("baseline",),
        sizes: Union[str, Sequence[str]] = ("bench",),
        size: Optional[str] = None,
    ):
        if size is not None:
            sizes = size
        if isinstance(sizes, str):
            sizes = (sizes,)
        sizes = tuple(dict.fromkeys(normalize_size(s) for s in sizes))
        if not sizes:
            raise ValueError("a SweepSpec needs at least one size")
        object.__setattr__(self, "workloads", _resolve_workloads(workloads))
        object.__setattr__(self, "configs", dict(_resolve_configs(configs)))
        object.__setattr__(self, "sizes", sizes)
        if not self.workloads:
            raise ValueError("a SweepSpec needs at least one workload")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_presets(
        cls,
        names: Sequence[str],
        workloads=None,
        size: Union[str, Sequence[str]] = "bench",
        sm_overrides: Optional[dict] = None,
    ) -> "SweepSpec":
        """A spec over named presets (``baseline``, ``sbi``, ...)."""
        configs = {
            name: presets.by_name(name, **(sm_overrides or {})) for name in names
        }
        return cls(workloads=workloads, configs=configs, sizes=size)

    @classmethod
    def figure7(cls, size: Union[str, Sequence[str]] = "bench") -> "SweepSpec":
        """The paper's headline grid: 5 configs x 21 workloads."""
        return cls.from_presets(presets.FIGURE7_CONFIGS, workloads="all", size=size)

    # ------------------------------------------------------------------
    # Derived grids
    # ------------------------------------------------------------------

    def with_configs(self, configs) -> "SweepSpec":
        return SweepSpec(workloads=self.workloads, configs=configs, sizes=self.sizes)

    def with_workloads(self, workloads) -> "SweepSpec":
        return SweepSpec(workloads=workloads, configs=self.configs, sizes=self.sizes)

    def with_policies(self, names: Sequence[str]) -> "SweepSpec":
        """Expand every config along registered policy presets
        (sugar for ``with_axes(policy=names)``)."""
        return self.with_axes(policy=list(names))

    def with_axes(self, **axes: Sequence) -> "SweepSpec":
        """Expand every config along the given field axes.

        ``spec.with_axes(sm_count=[1, 2, 4])`` turns each named config
        into one variant per value, named ``<base>/sm_count=<v>``.
        Several axes expand as a cartesian product, applied in keyword
        order.  The virtual ``policy`` axis swaps in a whole registered
        policy preset (see :func:`apply_override`) — list it *first* so
        field axes compose on top of each policy rather than being
        overwritten by the preset swap.
        """
        configs: Dict[str, AnyConfig] = dict(self.configs)
        for field, values in axes.items():
            values = list(values)
            if not values:
                raise ValueError("axis %r has no values" % field)
            expanded: Dict[str, AnyConfig] = {}
            for name, config in configs.items():
                for value in values:
                    label = "%s/%s=%s" % (name, field, value)
                    expanded[label] = apply_override(config, field, value)
            configs = expanded
        return self.with_configs(configs)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    @property
    def total_cells(self) -> int:
        return len(self.workloads) * len(self.sizes) * len(self.configs)

    def cells(self) -> List[Cell]:
        """The full grid, workload-major (as the legacy suite ran it)."""
        return [
            Cell(workload, size, name, config)
            for size in self.sizes
            for workload in self.workloads
            for name, config in self.configs.items()
        ]

    def describe(self) -> str:
        return "%d workloads x %d sizes x %d configs = %d cells" % (
            len(self.workloads),
            len(self.sizes),
            len(self.configs),
            self.total_cells,
        )
