"""repro.api — the first-class experiment surface.

Three value types cover the whole lifecycle of a paper-style study:

* :class:`SweepSpec` declares the grid (workloads x sizes x named
  configs, with axis overrides like ``sm_count=[1, 2, 4, 8]``);
* :class:`Engine` executes it through the two-level result cache and
  a pluggable backend (``inline`` or ``process``);
* :class:`ResultSet` holds the outcome — queryable, serializable and
  mergeable across runs.

Quick start::

    from repro.api import Engine, SweepSpec

    spec = SweepSpec.from_presets(
        ["baseline", "sbi_swi"], workloads=["bfs", "matrixmul"], size="bench"
    ).with_axes(sm_count=[1, 2, 4])
    rs = Engine(jobs=4).run(spec)
    print(rs.to_markdown())
    rs.to_json("scaling.json")

The command line (``python -m repro`` / the ``repro`` console script)
is a thin veneer over these same objects.
"""

from repro.api.cache import (
    CACHE_DIR_ENV,
    CACHE_VERSION,
    CacheInfo,
    CacheSerializationError,
    config_hash,
    config_key,
)
from repro.api.engine import Engine, Progress, run
from repro.api.results import CellError, Result, ResultSet
from repro.api.spec import Cell, SweepSpec, apply_override
from repro.api import cache

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_VERSION",
    "Cell",
    "CellError",
    "CacheInfo",
    "CacheSerializationError",
    "Engine",
    "Progress",
    "Result",
    "ResultSet",
    "SweepSpec",
    "apply_override",
    "cache",
    "config_hash",
    "config_key",
    "run",
]
