"""Typed, queryable sweep results.

A :class:`ResultSet` replaces the legacy ``{workload: {config:
Stats}}`` nesting with a flat collection of :class:`Result` records
(workload, size, config name, stats) that can be filtered, pivoted
into tables, aggregated with the paper's suite statistics, serialized
(JSON / CSV / markdown) and merged across runs — the JSON form is what
``repro sweep --save`` writes and ``ResultSet.from_json`` reloads
(``--output`` writes the *rendered* table instead).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.api.cache import AnyStats, stats_from_payload, stats_to_payload
from repro.analysis.report import format_table, gmean, hmean
from repro.workloads import MEAN_EXCLUDED

#: Schema version of the JSON serialization.
RESULTSET_VERSION = 1

Metric = Union[str, Callable[[AnyStats], float]]


@dataclass(frozen=True)
class Result:
    """One completed cell."""

    workload: str
    size: str
    config: str
    stats: AnyStats

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.workload, self.size, self.config)


@dataclass(frozen=True)
class CellError:
    """One failed cell (collected under ``errors='collect'``)."""

    workload: str
    size: str
    config: str
    error: str


def _matplotlib():
    """``matplotlib.pyplot``, or a clean error telling the caller what
    to do instead — the package deliberately has no hard plotting
    dependency (text renderers and JSON artifacts cover headless use)."""
    import importlib

    try:
        return importlib.import_module("matplotlib.pyplot")
    except ImportError as exc:
        raise RuntimeError(
            "ResultSet.plot() needs matplotlib, which is not installed "
            "in this environment; install it (pip install matplotlib) or "
            "use to_markdown()/to_csv()/`repro analyze --json` for "
            "text and JSON artifacts instead"
        ) from exc


def _metric_fn(metric: Metric) -> Callable[[AnyStats], float]:
    if callable(metric):
        return metric
    return lambda stats: getattr(stats, metric)


class ResultSet:
    """An ordered collection of :class:`Result` cells."""

    def __init__(
        self,
        results: Iterable[Result] = (),
        errors: Iterable[CellError] = (),
    ):
        self._results: List[Result] = []
        self._by_key: Dict[tuple, Result] = {}
        self.errors: List[CellError] = list(errors)
        for result in results:
            self.add(result)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, result: Result) -> None:
        """Append one cell; re-adding a key requires identical stats."""
        existing = self._by_key.get(result.key)
        if existing is not None:
            if existing.stats.to_dict() != result.stats.to_dict():
                raise ValueError(
                    "conflicting results for %s/%s/%s"
                    % (result.workload, result.size, result.config)
                )
            return
        self._by_key[result.key] = result
        self._results.append(result)

    def merge(self, other: "ResultSet", on_conflict: str = "error") -> "ResultSet":
        """A new ResultSet with the union of both runs' cells.

        Identical duplicates dedupe silently.  Cells present in both
        with *different* stats follow ``on_conflict``: ``"error"``
        raises, ``"keep"`` keeps this set's value, ``"replace"`` takes
        ``other``'s.  Errors lists concatenate.
        """
        if on_conflict not in ("error", "keep", "replace"):
            raise ValueError("on_conflict must be 'error', 'keep' or 'replace'")
        merged = ResultSet(self._results, errors=self.errors)
        for result in other:
            existing = merged._by_key.get(result.key)
            if (
                existing is not None
                and existing.stats.to_dict() != result.stats.to_dict()
            ):
                if on_conflict == "error":
                    raise ValueError(
                        "conflicting results for %s/%s/%s (pass on_conflict="
                        "'keep' or 'replace')" % result.key
                    )
                if on_conflict == "keep":
                    continue
                merged._by_key[result.key] = result
                merged._results[merged._results.index(existing)] = result
                continue
            merged.add(result)
        merged.errors.extend(other.errors)
        return merged

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[Result]:
        return iter(self._results)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return [
            (r.key, r.stats.to_dict()) for r in self._results
        ] == [(r.key, r.stats.to_dict()) for r in other._results]

    @property
    def workloads(self) -> List[str]:
        return list(dict.fromkeys(r.workload for r in self._results))

    @property
    def configs(self) -> List[str]:
        return list(dict.fromkeys(r.config for r in self._results))

    @property
    def sizes(self) -> List[str]:
        return list(dict.fromkeys(r.size for r in self._results))

    def get(
        self, workload: str, config: str, size: Optional[str] = None
    ) -> AnyStats:
        """The stats of one cell (``size`` optional when unambiguous)."""
        if size is not None:
            result = self._by_key.get((workload, size, config))
            if result is None:
                raise KeyError((workload, size, config))
            return result.stats
        matches = [
            r for r in self._results if r.workload == workload and r.config == config
        ]
        if not matches:
            raise KeyError((workload, config))
        if len(matches) > 1:
            raise KeyError(
                "cell %s/%s exists at sizes %s: pass size="
                % (workload, config, [r.size for r in matches])
            )
        return matches[0].stats

    def filter(
        self,
        workload=None,
        config=None,
        size=None,
        predicate: Optional[Callable[[Result], bool]] = None,
    ) -> "ResultSet":
        """Cells matching every given criterion (str or collection).

        Collected errors matching the same axis criteria travel with
        the filtered view (``predicate`` applies to results only).
        """

        def wanted(value: str, criterion: object) -> bool:
            if criterion is None:
                return True
            if isinstance(criterion, str):
                return value == criterion
            return value in criterion

        def axis_match(item) -> bool:
            return (
                wanted(item.workload, workload)
                and wanted(item.config, config)
                and wanted(item.size, size)
            )

        return ResultSet(
            (
                r
                for r in self._results
                if axis_match(r) and (predicate is None or predicate(r))
            ),
            errors=(e for e in self.errors if axis_match(e)),
        )

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def pivot(
        self,
        rows: str = "workload",
        cols: str = "config",
        metric: Metric = "ipc",
    ) -> Dict[str, Dict[str, float]]:
        """Nested ``{row: {col: value}}`` over two of the three axes.

        ``rows``/``cols`` each name one of ``workload``, ``config``,
        ``size``; the remaining axis must be single-valued (filter
        first otherwise).  ``metric`` is a stats attribute name or a
        callable.
        """
        for axis in (rows, cols):
            if axis not in ("workload", "config", "size"):
                raise ValueError("axis must be workload, config or size")
        if rows == cols:
            raise ValueError("rows and cols must differ")
        (collapsed,) = {"workload", "config", "size"} - {rows, cols}
        collapsed_values = {getattr(r, collapsed) for r in self._results}
        if len(collapsed_values) > 1:
            raise ValueError(
                "%s axis has several values %s: filter(%s=...) first"
                % (collapsed, sorted(collapsed_values), collapsed)
            )
        fn = _metric_fn(metric)
        table: Dict[str, Dict[str, float]] = {}
        for r in self._results:
            table.setdefault(getattr(r, rows), {})[getattr(r, cols)] = fn(r.stats)
        return table

    def ipc_table(self) -> Dict[str, Dict[str, float]]:
        """``{workload: {config: ipc}}`` — the legacy suite table."""
        return self.pivot("workload", "config", "ipc")

    def speedup_over(
        self, base: str, metric: Metric = "ipc"
    ) -> Dict[str, Dict[str, float]]:
        """Per-workload ratios vs the ``base`` config (base column = 1)."""
        table = self.pivot("workload", "config", metric)
        out: Dict[str, Dict[str, float]] = {}
        for workload, row in table.items():
            if base not in row:
                raise KeyError(
                    "workload %r has no %r cell to normalise by" % (workload, base)
                )
            out[workload] = {c: v / row[base] for c, v in row.items()}
        return out

    # ------------------------------------------------------------------
    # Suite statistics
    # ------------------------------------------------------------------

    def _mean(self, fn, metric, exclude, base) -> Dict[str, float]:
        table = (
            self.speedup_over(base, metric)
            if base is not None
            else self.pivot("workload", "config", metric)
        )
        per_config: Dict[str, List[float]] = {}
        for workload, row in table.items():
            if workload in exclude:
                continue
            for config, value in row.items():
                per_config.setdefault(config, []).append(value)
        if table and not per_config:
            # Every workload present fell to ``exclude``; a silent {}
            # here reads downstream like "no configs", so fail loudly
            # (gmean/hmean likewise raise on empty input).
            raise ValueError(
                "no workloads left to aggregate: all of %s are excluded"
                % sorted(table)
            )
        return {c: fn(vals) for c, vals in per_config.items()}

    def geo_mean(
        self,
        metric: Metric = "ipc",
        exclude: Iterable[str] = MEAN_EXCLUDED,
        base: Optional[str] = None,
    ) -> Dict[str, float]:
        """Per-config geometric mean over workloads (the paper's suite
        statistic); ``base`` switches from raw values to speedups.
        ``exclude`` defaults to the paper's TMD exclusion."""
        return self._mean(gmean, metric, tuple(exclude), base)

    def harmonic_mean(
        self,
        metric: Metric = "ipc",
        exclude: Iterable[str] = MEAN_EXCLUDED,
        base: Optional[str] = None,
    ) -> Dict[str, float]:
        """Per-config harmonic mean over workloads (rate-style metrics)."""
        return self._mean(hmean, metric, tuple(exclude), base)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "version": RESULTSET_VERSION,
            "results": [
                {
                    "workload": r.workload,
                    "size": r.size,
                    "config": r.config,
                    "stats": stats_to_payload(r.stats),
                }
                for r in self._results
            ],
            "errors": [
                {
                    "workload": e.workload,
                    "size": e.size,
                    "config": e.config,
                    "error": e.error,
                }
                for e in self.errors
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ResultSet":
        if data.get("version") != RESULTSET_VERSION:
            raise ValueError(
                "unsupported ResultSet payload version %r" % (data.get("version"),)
            )
        return cls(
            results=(
                Result(
                    workload=r["workload"],
                    size=r["size"],
                    config=r["config"],
                    stats=stats_from_payload(r["stats"]),
                )
                for r in data.get("results", ())
            ),
            errors=(CellError(**e) for e in data.get("errors", ())),
        )

    def to_json(self, path: Optional[str] = None, indent: int = 1) -> str:
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w") as f:
                f.write(text + "\n")
        return text

    @classmethod
    def from_json(cls, source: str) -> "ResultSet":
        """Load from a JSON string or a path to a JSON file."""
        if source.lstrip().startswith("{"):
            return cls.from_dict(json.loads(source))
        with open(source) as f:
            return cls.from_dict(json.load(f))

    def to_csv(
        self,
        path: Optional[str] = None,
        extra_metrics: Iterable[str] = (),
    ) -> str:
        """Long-format CSV: one row per cell with headline counters.

        ``extra_metrics`` appends further stats-attribute columns
        (e.g. ``["l1_hit_rate"]``) after the standard ones.
        """
        headline = ["cycles", "instructions_issued", "thread_instructions", "ipc"]
        extras = [m for m in extra_metrics if m not in headline]
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(["workload", "size", "config"] + headline + extras)
        for r in self._results:
            writer.writerow(
                [
                    r.workload,
                    r.size,
                    r.config,
                    r.stats.cycles,
                    r.stats.instructions_issued,
                    r.stats.thread_instructions,
                    "%r" % r.stats.ipc,
                ]
                + ["%r" % getattr(r.stats, m) for m in extras]
            )
        text = buf.getvalue()
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text

    def _table_rows(
        self, metric: Metric, mean: Optional[str]
    ) -> Tuple[List[str], List[List[object]]]:
        table = self.pivot("workload", "config", metric)
        configs = self.configs
        rows = [
            [w] + [table[w].get(c) for c in configs] for w in self.workloads
        ]
        if mean is not None:
            fn = {"geo": self.geo_mean, "harmonic": self.harmonic_mean}[mean]
            try:
                means = fn(metric)
            except ValueError:
                # A view holding only MEAN_EXCLUDED workloads still
                # renders; its mean row shows "-" for every config.
                means = {}
            rows.append(["%s_mean" % mean] + [means.get(c) for c in configs])
        return ["workload"] + configs, rows

    def to_markdown(self, metric: Metric = "ipc", mean: Optional[str] = "geo") -> str:
        """A GitHub-flavoured markdown pivot table with a mean row."""
        headers, rows = self._table_rows(metric, mean)
        out = ["| " + " | ".join(headers) + " |"]
        out.append("|" + "|".join(" --- " for _ in headers) + "|")
        for row in rows:
            cells = [row[0]] + [
                "-" if v is None else "%.2f" % v for v in row[1:]
            ]
            out.append("| " + " | ".join(str(c) for c in cells) + " |")
        return "\n".join(out)

    def to_text(self, metric: Metric = "ipc", mean: Optional[str] = "geo") -> str:
        """Fixed-width table via :func:`repro.analysis.report.format_table`."""
        headers, rows = self._table_rows(metric, mean)
        return format_table(headers, rows)

    # ------------------------------------------------------------------
    # Plotting (optional matplotlib)
    # ------------------------------------------------------------------

    def plot(
        self,
        metric: Metric = "ipc",
        kind: str = "bars",
        base: Optional[str] = None,
        save: Optional[str] = None,
        ax: Optional[object] = None,
    ) -> object:
        """Render the set with matplotlib (an *optional* dependency).

        ``kind="bars"`` draws grouped per-workload bars of ``metric``
        for every config — the paper's figure-7 shape — plotting
        speedups over ``base`` instead when ``base`` is given.
        ``kind="scaling"`` draws one line per workload across the
        config axis, which reads as a scaling curve when the configs
        form an ordered sweep (e.g. ``--axis sm_count=1,2,4,8``).

        Returns the matplotlib ``Axes`` (created unless ``ax`` is
        passed); ``save`` additionally writes the figure to a file.
        Raises :class:`RuntimeError` with a pointer to the text
        renderers when matplotlib is not installed.
        """
        plt = _matplotlib()
        if kind not in ("bars", "scaling"):
            raise ValueError("kind must be 'bars' or 'scaling', got %r" % (kind,))
        if base is not None:
            table = self.speedup_over(base)
            label = "speedup vs %s" % base
        else:
            table = self.pivot("workload", "config", metric)
            label = metric if isinstance(metric, str) else "metric"
        workloads, configs = self.workloads, self.configs
        if ax is None:
            _, ax = plt.subplots(
                figsize=(max(6.0, 1.2 * len(workloads)), 4.0)
            )
        if kind == "bars":
            width = 0.8 / max(1, len(configs))
            for j, config in enumerate(configs):
                offsets = [
                    i + (j - (len(configs) - 1) / 2.0) * width
                    for i in range(len(workloads))
                ]
                heights = [table[w].get(config, 0.0) for w in workloads]
                ax.bar(offsets, heights, width=width, label=config)
            ax.set_xticks(range(len(workloads)))
            ax.set_xticklabels(workloads, rotation=45, ha="right")
        else:
            for workload in workloads:
                ax.plot(
                    range(len(configs)),
                    [table[workload].get(c) for c in configs],
                    marker="o",
                    label=workload,
                )
            ax.set_xticks(range(len(configs)))
            ax.set_xticklabels(configs, rotation=45, ha="right")
        ax.set_ylabel(label)
        ax.legend(fontsize=8)
        if save is not None:
            ax.figure.savefig(save, bbox_inches="tight")
        return ax

    # ------------------------------------------------------------------
    # Legacy bridge
    # ------------------------------------------------------------------

    def nested(self) -> Dict[str, Dict[str, AnyStats]]:
        """The legacy ``{workload: {config: stats}}`` shape (one size)."""
        if len(self.sizes) > 1:
            raise ValueError(
                "results span sizes %s: filter(size=...) first" % (self.sizes,)
            )
        out: Dict[str, Dict[str, AnyStats]] = {}
        for r in self._results:
            out.setdefault(r.workload, {})[r.config] = r.stats
        return out

    def __repr__(self) -> str:
        return "ResultSet(%d cells: %d workloads x %d configs%s)" % (
            len(self),
            len(self.workloads),
            len(self.configs),
            ", %d errors" % len(self.errors) if self.errors else "",
        )
