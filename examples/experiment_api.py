"""Tour of the experiment API: SweepSpec -> Engine -> ResultSet.

Declares a small grid over two workloads and three paper configs,
expands a device axis, runs it (twice — the second pass is pure cache
hits), then slices the ResultSet a few ways and round-trips it
through JSON, the exact artifact `repro sweep --save` writes.

Run:  PYTHONPATH=src python examples/experiment_api.py
"""

from __future__ import annotations

import os
import tempfile

from repro.api import Engine, ResultSet, SweepSpec


def main() -> None:
    spec = SweepSpec.from_presets(
        ["baseline", "sbi", "sbi_swi"],
        workloads=["bfs", "sortingnetworks"],
        size="tiny",
    )
    print("spec:", spec.describe())

    events = {"sim": 0, "cached": 0}

    def progress(event):
        events["cached" if event.cached else "sim"] += 1

    engine = Engine(progress=progress)
    results = engine.run(spec)
    print("first pass :", events)

    events.update(sim=0, cached=0)
    engine.run(spec)
    print("second pass:", events, "(warm in-process cache)")

    print("\nIPC (markdown):")
    print(results.to_markdown())
    print("\nspeedup of sbi_swi over baseline per workload:")
    for workload, row in results.speedup_over("baseline").items():
        print("  %-16s %.2fx" % (workload, row["sbi_swi"]))
    print("suite gmean speedups:", {
        name: round(value, 3)
        for name, value in results.geo_mean(base="baseline").items()
    })

    # Axis expansion: the same workloads on 1/2/4-SM devices.
    devices = spec.with_configs({"sbi_swi": spec.configs["sbi_swi"]}).with_axes(
        sm_count=[1, 2, 4]
    )
    scaling = engine.run(devices)
    print("\ndevice scaling (IPC):")
    print(scaling.to_text(mean=None))

    # Serialize, reload, merge — grids from different sessions compose.
    path = os.path.join(tempfile.mkdtemp(prefix="repro-api-"), "results.json")
    results.to_json(path)
    merged = ResultSet.from_json(path).merge(scaling)
    print("\nreloaded %s and merged: %r" % (path, merged))


if __name__ == "__main__":
    main()
