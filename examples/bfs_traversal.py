#!/usr/bin/env python
"""BFS on a skewed random graph — an end-to-end workload walkthrough.

Builds the paper's BFS workload (CSR subgraph per CTA, level loop with
barriers, data-dependent neighbour loops), runs it under every
configuration, verifies the distances against a host-side BFS, and
prints the memory-system picture that explains why BFS is bound by the
single LSU port rather than by issue slots.

Run:  python examples/bfs_traversal.py
"""

import numpy as np

from repro import presets, simulate
from repro.workloads import get_workload


def main():
    print("BFS (Rodinia) on the cycle-level SM\n")
    for name in ("baseline", "warp64", "sbi", "swi", "sbi_swi"):
        inst = get_workload("bfs", "tiny")
        stats = simulate(inst.kernel, inst.memory, presets.by_name(name))
        inst.numpy_check(inst.memory)  # distances match host BFS
        print(
            "%-9s cycles=%6d IPC=%5.2f  L1 hit=%4.1f%%  replays=%5d  "
            "divergent branches=%d"
            % (
                name,
                stats.cycles,
                stats.ipc,
                100 * stats.l1_hit_rate,
                stats.memory_replays,
                stats.divergent_branches,
            )
        )
    inst = get_workload("bfs", "tiny")
    dist = inst.reference_outputs()["dist"]
    reached = int((dist >= 0).sum())
    print("\ngraph: %d nodes, %d reached within the level budget" % (len(dist), reached))
    hist = {}
    for d in dist[dist >= 0].astype(int):
        hist[d] = hist.get(d, 0) + 1
    print("frontier sizes per level:", dict(sorted(hist.items())))
    print(
        "\nnote: scattered neighbour loads serialise on the single "
        "128-byte LSU port,\nso all five front-ends converge to the "
        "same IPC — the paper recovers BFS\nthrough memory-divergence "
        "warp splitting, a mechanism this reproduction\nmodels only "
        "for branches (see DESIGN.md, deliberate simplifications)."
    )


if __name__ == "__main__":
    main()
