#!/usr/bin/env python
"""Lane shuffling (paper Table 1 / Figure 8b) on a correlated workload.

Needleman-Wunsch's wavefront assigns work to the *same* low thread
indices of every warp, so with the identity mapping the active threads
of different warps fight for the same physical lanes and SWI cannot
interleave them.  The static shuffles decorrelate the masks at zero
hardware cost.  This example prints the Table 1 diagrams and measures
every policy on the wavefront kernel.

Run:  python examples/lane_shuffle_study.py
"""

from repro import presets, simulate
from repro.timing import lanes
from repro.workloads import get_workload


def main():
    print("Table 1 lane-shuffle policies (4 warps x 4 threads):\n")
    for policy in lanes.POLICIES:
        print("%s:" % policy)
        print(lanes.diagram(policy, 4, 4))
        print()

    # The bench size runs 8 CTAs; with a single resident warp (tiny)
    # SWI has no other warp to interleave and every policy ties.
    print("SWI on needleman_wunsch (bench) per policy:")
    base_ipc = None
    for policy in lanes.POLICIES:
        inst = get_workload("needleman_wunsch", "bench")
        stats = simulate(
            inst.kernel, inst.memory, presets.swi(lane_shuffle=policy)
        )
        inst.numpy_check(inst.memory)
        if base_ipc is None:
            base_ipc = stats.ipc
        print(
            "  %-12s IPC=%6.2f  (%+5.1f%% vs identity)  swi fills=%d"
            % (
                policy,
                stats.ipc,
                100 * (stats.ipc / base_ipc - 1),
                stats.issued_swi_secondary,
            )
        )


if __name__ == "__main__":
    main()
