#!/usr/bin/env python
"""Reproduce the paper's Figure 2 as ASCII pipeline diagrams.

Runs the 6-instruction if-then-else example on 2 warps of 4 threads
under classic SIMT, SBI without and with reconvergence constraints,
SWI, and SBI+SWI, and renders what issues on each cycle.  Masks are
shown thread-0-leftmost; ``b`` marks an SBI secondary issue, ``w`` a
SWI secondary issue.

Run:  python examples/figure2_pipeline.py
"""

from repro.analysis.pipeline_trace import figure2_example

TITLES = {
    "baseline": "(a) classic SIMT (reconvergence stack)",
    "sbi_nc": "(b) SBI, unconstrained (secondary may run ahead)",
    "sbi": "(c) SBI with reconvergence constraints",
    "swi": "(d) SWI (cascaded scheduler fills from the other warp)",
    "sbi_swi": "(e) SBI+SWI combined",
}


def main():
    for mode in ("baseline", "sbi_nc", "sbi", "swi", "sbi_swi"):
        stats, art = figure2_example(mode)
        print(TITLES[mode])
        print(art)
        print(
            "cycles=%d  thread-instructions=%d  secondary issues: sbi=%d swi=%d\n"
            % (
                stats.cycles,
                stats.thread_instructions,
                stats.issued_sbi_secondary,
                stats.issued_swi_secondary,
            )
        )


if __name__ == "__main__":
    main()
