#!/usr/bin/env python
"""Registering a custom microarchitecture through the policy API.

The presets reproduce the paper's Table 2 machines, but the simulator
is pluggable: scheduler policies, divergence models and whole
"machines" (:class:`~repro.core.policy.PolicySpec`) are registry
entries, so a new design is *registered*, not patched in.  This
example builds one from scratch:

* a custom secondary arbiter for the cascaded (SWI) scheduler that
  prefers the *freshest* fetched instruction — a deliberately
  contrarian policy to measure against the paper's best-fit arbiter;
* a ``PolicySpec`` tying it to frontier reconvergence with the SWI
  preset geometry, registered as mode ``swi_fresh``.

Once registered, the new mode is a first-class citizen: it sweeps
next to the built-ins through :class:`repro.api.SweepSpec`, appears in
``repro policies``, and is selectable as ``repro sweep --policy
swi_fresh`` (via ``--plugin`` naming this module).

Run:  python examples/custom_microarchitecture.py
"""

from repro.api import Engine, SweepSpec
from repro.core import policy
from repro.core.schedulers import CascadedScheduler
from repro.timing.masks import popcount


@policy.SCHEDULERS.register("cascaded_freshest")
class FreshestFirstScheduler(CascadedScheduler):
    """Secondary arbiter preferring the most recently fetched ready
    instruction (still best-fit on lane count first)."""

    def _secondary_key(self, warp, split, entry):
        return (popcount(split.mask), entry.fetch_cycle, warp.wid)


policy.register_policy(
    policy.PolicySpec(
        name="swi_fresh",
        scheduler="cascaded_freshest",
        divergence="frontier",
        uses_swi=True,
        unit_bound_peak=True,
        description="SWI variant: freshest-first secondary arbiter",
        preset=dict(
            warp_count=16,
            warp_width=64,
            scheduler_latency=2,
            delivery_latency=1,
            scoreboard_kind="warp",
            lane_shuffle="xor_rev",
        ),
    )
)

#: The comparison set: paper machines + registry exploration policies
#: + the one registered above.
POLICIES = ("sbi_swi", "swi", "swi_greedy", "swi_rr", "dwr", "swi_fresh")


def main():
    print("custom policy study on mandelbrot + eigenvalues (tiny)\n")
    spec = SweepSpec(
        workloads=["mandelbrot", "eigenvalues"],
        configs=["baseline"],
        sizes="tiny",
    ).with_policies(POLICIES)
    rs = Engine(errors="collect").run(spec, verify=True)
    print(rs.to_text())
    print(
        "\nevery policy produced the verified result — registered"
        "\nmicroarchitectures change timing, never semantics."
        "\n(list them all: repro policies; sweep this one from the CLI:"
        "\n repro sweep --plugin examples.custom_microarchitecture"
        " --policy swi_fresh --workloads mandelbrot --size tiny)"
    )


if __name__ == "__main__":
    main()
