#!/usr/bin/env python
"""Design-space exploration with custom SM configurations.

The presets reproduce the paper's Table 2 machines, but every knob is
open.  This example asks three of the paper's "what if" questions on
the Mandelbrot workload:

* how much of SBI+SWI survives a *direct-mapped* SWI lookup (Figure 9's
  punchline: most of it)?
* what does the CCT sideband sorter's speed cost (section 3.4 argues:
  almost nothing, the heap is small)?
* what if the secondary scheduler's extra pipeline stage could be
  avoided (scheduler latency 2 -> 1)?

Run:  python examples/custom_microarchitecture.py
"""

from repro import presets, simulate
from repro.workloads import get_workload

VARIANTS = [
    ("paper SBI+SWI", presets.sbi_swi()),
    ("direct-mapped SWI", presets.sbi_swi(ways=1)),
    ("slow CCT sorter (32c)", presets.sbi_swi(cct_insert_delay=32)),
    ("1-cycle scheduler", presets.sbi_swi(scheduler_latency=1)),
    ("no constraints", presets.sbi_swi(constraints=False)),
    ("exact-mask scoreboard", presets.sbi_swi(scoreboard_kind="mask")),
]


def main():
    print("design-space exploration on mandelbrot (tiny)\n")
    base = None
    for label, config in VARIANTS:
        inst = get_workload("mandelbrot", "tiny")
        stats = simulate(inst.kernel, inst.memory, config)
        inst.numpy_check(inst.memory)
        if base is None:
            base = stats.ipc
        print(
            "%-24s IPC=%6.2f (%+5.1f%%)  issues p/b/w=%d/%d/%d conflicts=%d"
            % (
                label,
                stats.ipc,
                100 * (stats.ipc / base - 1),
                stats.issued_primary,
                stats.issued_sbi_secondary,
                stats.issued_swi_secondary,
                stats.scheduler_conflicts,
            )
        )
    print(
        "\nevery variant produced the verified result — configuration"
        "\nchanges timing, never semantics."
    )


if __name__ == "__main__":
    main()
