#!/usr/bin/env python
"""Divergence study: how each technique reacts to branch shapes.

Sweeps three canonical control-flow patterns —

* **balanced if/else** (both paths do equal work): SBI's target; the
  two warp-splits co-issue on disjoint lanes;
* **if-without-else** (one path empty): SBI has nothing to pair; SWI
  fills the idle lanes from other warps;
* **escape-time loop** (per-thread trip counts): both techniques work
  through run-ahead and cross-warp filling —

across the paper's five configurations, and prints the IPC matrix plus
SIMD-efficiency (average active threads per issue).

Run:  python examples/divergence_study.py
"""

import numpy as np

from repro import presets, simulate
from repro.functional import MemoryImage
from repro.isa import CmpOp, KernelBuilder

N = 1024
CONFIGS = ("baseline", "warp64", "sbi", "swi", "sbi_swi")


def balanced(work=8):
    kb = KernelBuilder("balanced")
    t, p, v, a = kb.regs("t", "p", "v", "a")
    kb.mov(t, kb.tid)
    kb.mad(t, kb.ctaid, kb.ntid, t)
    kb.mov(v, 1.0)
    kb.and_(p, t, 1)
    kb.bra("odd", cond=p)
    for _ in range(work):
        kb.mad(v, v, 3, 1)
    kb.bra("join")
    kb.label("odd")
    for _ in range(work):
        kb.mad(v, v, 5, 2)
    kb.label("join")
    kb.mul(a, t, 4)
    kb.st(kb.param(0), v, index=a)
    kb.exit_()
    return kb


def one_sided(work=8):
    kb = KernelBuilder("one_sided")
    t, p, v, a = kb.regs("t", "p", "v", "a")
    kb.mov(t, kb.tid)
    kb.mad(t, kb.ctaid, kb.ntid, t)
    kb.mov(v, 1.0)
    kb.and_(p, t, 1)
    kb.bra("skip", cond=p)
    for _ in range(work):
        kb.mad(v, v, 3, 1)
    kb.label("skip")
    kb.mul(a, t, 4)
    kb.st(kb.param(0), v, index=a)
    kb.exit_()
    return kb


def escape_loop(max_trips=16):
    kb = KernelBuilder("escape")
    t, p, v, c, a = kb.regs("t", "p", "v", "c", "a")
    kb.mov(t, kb.tid)
    kb.mad(t, kb.ctaid, kb.ntid, t)
    kb.and_(c, t, max_trips - 1)
    kb.mov(v, 0.0)
    kb.label("loop")
    kb.mad(v, v, 3, 1)
    kb.sub(c, c, 1)
    kb.setp(p, CmpOp.GE, c, 0)
    kb.bra("loop", cond=p)
    kb.mul(a, t, 4)
    kb.st(kb.param(0), v, index=a)
    kb.exit_()
    return kb


def run(kb_factory):
    row = {}
    for name in CONFIGS:
        memory = MemoryImage()
        out = memory.alloc(N * 4)
        kernel = kb_factory().build(cta_size=256, grid_size=N // 256, params=(out,))
        stats = simulate(kernel, memory, presets.by_name(name))
        row[name] = stats
    return row


def main():
    shapes = (
        ("balanced if/else", balanced),
        ("if without else", one_sided),
        ("escape-time loop", escape_loop),
    )
    header = "%-18s" % "shape" + "".join("%12s" % c for c in CONFIGS)
    print(header)
    print("-" * len(header))
    for label, factory in shapes:
        row = run(factory)
        print(
            "%-18s" % label
            + "".join("%12.2f" % row[c].ipc for c in CONFIGS)
        )
        print(
            "%-18s" % "  (threads/issue)"
            + "".join("%12.1f" % row[c].avg_active_threads for c in CONFIGS)
        )
    print(
        "\nreading: SBI pays off on the balanced branch, SWI on the"
        "\none-sided and loop shapes; SBI+SWI keeps both gains."
    )


if __name__ == "__main__":
    main()
