"""Multi-SM scaling study: device IPC as the SM count grows.

Runs ``baseline`` and ``sbi_swi`` devices on bfs and matrixmul at
sm_count in {1, 2, 4, 8}, all sharing a 2 MB sectored L2 over four
DRAM partitions (device bandwidth scales with the SM count, keeping
the paper's 10 B/cycle per-SM share).  Prints device IPC and the
speedup over the 1-SM device.

Written against the experiment API: a :class:`repro.api.SweepSpec`
declares the grid, :class:`repro.api.Engine` runs it (optionally over
worker processes and the on-disk cache), and the
:class:`repro.api.ResultSet` answers the questions.

    PYTHONPATH=src python examples/multi_sm_scaling.py
    PYTHONPATH=src python examples/multi_sm_scaling.py --size bench --jobs 4
"""

from __future__ import annotations

import argparse

from repro.analysis.report import format_table
from repro.api import Engine, SweepSpec
from repro.core import presets


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--size", default="tiny", choices=("tiny", "bench", "full"))
    p.add_argument("--workloads", default="bfs,matrixmul")
    p.add_argument("--modes", default="baseline,sbi_swi")
    p.add_argument("--sm-counts", default="1,2,4,8")
    p.add_argument("--jobs", type=int, default=None, help="parallel workers")
    p.add_argument("--cache-dir", default=None, help="on-disk result cache")
    p.add_argument("--save", default=None, help="write the ResultSet as JSON")
    return p.parse_args()


def main() -> None:
    args = parse_args()
    modes = args.modes.split(",")
    sm_counts = [int(n) for n in args.sm_counts.split(",")]

    spec = SweepSpec(
        workloads=args.workloads.split(","),
        configs={mode: presets.device(mode, sm_count=1) for mode in modes},
        sizes=args.size,
    ).with_axes(sm_count=sm_counts)
    results = Engine(jobs=args.jobs, cache_dir=args.cache_dir).run(spec)
    if args.save:
        results.to_json(args.save)

    ipc = results.ipc_table()
    headers = (
        ["workload", "mode"]
        + ["x%d" % n for n in sm_counts]
        + ["speedup x%d" % sm_counts[-1]]
    )
    rows = []
    for workload in spec.workloads:
        for mode in modes:
            ipcs = [ipc[workload]["%s/sm_count=%d" % (mode, n)] for n in sm_counts]
            rows.append([workload, mode] + ipcs + [ipcs[-1] / ipcs[0]])
    print(
        format_table(headers, rows, title="Device IPC vs SM count (size=%s)" % args.size)
    )


if __name__ == "__main__":
    main()
