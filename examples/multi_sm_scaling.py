"""Multi-SM scaling study: device IPC as the SM count grows.

Runs ``baseline`` and ``sbi_swi`` devices on bfs and matrixmul at
sm_count in {1, 2, 4, 8}, all sharing a 2 MB sectored L2 over four
DRAM partitions (device bandwidth scales with the SM count, keeping
the paper's 10 B/cycle per-SM share).  Prints device IPC and the
speedup over the 1-SM device.

    PYTHONPATH=src python examples/multi_sm_scaling.py
    PYTHONPATH=src python examples/multi_sm_scaling.py --size bench --jobs 4
"""

from __future__ import annotations

import argparse

from repro.analysis import experiments
from repro.analysis.report import format_table
from repro.core import presets


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--size", default="tiny", choices=("tiny", "bench", "full"))
    p.add_argument("--workloads", default="bfs,matrixmul")
    p.add_argument("--modes", default="baseline,sbi_swi")
    p.add_argument("--sm-counts", default="1,2,4,8")
    p.add_argument("--jobs", type=int, default=None, help="parallel workers")
    p.add_argument("--cache-dir", default=None, help="on-disk result cache")
    return p.parse_args()


def main() -> None:
    args = parse_args()
    workloads = args.workloads.split(",")
    modes = args.modes.split(",")
    sm_counts = [int(n) for n in args.sm_counts.split(",")]

    configs = {
        "%s/x%d" % (mode, n): presets.device(mode, sm_count=n)
        for mode in modes
        for n in sm_counts
    }
    results = experiments.run_suite(
        configs, workloads, args.size, jobs=args.jobs, cache_dir=args.cache_dir
    )

    headers = ["workload", "mode"] + ["x%d" % n for n in sm_counts] + ["speedup x%d" % sm_counts[-1]]
    rows = []
    for workload in workloads:
        for mode in modes:
            ipcs = [results[workload]["%s/x%d" % (mode, n)].ipc for n in sm_counts]
            rows.append([workload, mode] + ipcs + [ipcs[-1] / ipcs[0]])
    print(format_table(headers, rows, title="Device IPC vs SM count (size=%s)" % args.size))


if __name__ == "__main__":
    main()
