#!/usr/bin/env python
"""Quickstart: write a kernel, run it on every SM configuration.

Builds a small divergent kernel with the :class:`KernelBuilder` DSL,
checks its result against plain numpy, and compares the five
micro-architectures of the paper (baseline SIMT stack, thread-frontier
Warp64, SBI, SWI, SBI+SWI).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import presets, simulate
from repro.functional import MemoryImage
from repro.isa import CmpOp, KernelBuilder

N = 1024


def build_kernel(out_addr):
    """Per-thread work that diverges on the thread index.

    Even threads run a short multiply chain, odd threads a longer one —
    the balanced if/else shape Simultaneous Branch Interweaving
    co-issues (paper Figure 2).
    """
    kb = KernelBuilder("quickstart")
    t, p, v, addr = kb.regs("t", "p", "v", "addr")
    kb.mov(t, kb.tid)
    kb.mad(t, kb.ctaid, kb.ntid, t)  # global thread id
    kb.mov(v, 1.0)
    kb.and_(p, t, 1)
    kb.bra("odd", cond=p)
    for _ in range(8):
        kb.mad(v, v, 3, 1)  # even path
    kb.bra("join")
    kb.label("odd")
    for _ in range(8):
        kb.mad(v, v, 5, 2)  # odd path
    kb.label("join")
    kb.mul(addr, t, 4)
    kb.st(kb.param(0), v, index=addr)
    kb.exit_()
    return kb.build(cta_size=256, grid_size=N // 256, params=(out_addr,))


def expected():
    v = np.ones(N)
    for _ in range(8):
        even = v * 3 + 1
        odd = v * 5 + 2
        v = np.where(np.arange(N) % 2 == 0, even, odd)
    return v


def main():
    print("Simultaneous Branch and Warp Interweaving - quickstart")
    print("kernel: balanced if/else over %d threads\n" % N)
    baseline_ipc = None
    for name in ("baseline", "warp64", "sbi", "swi", "sbi_swi"):
        memory = MemoryImage()
        out = memory.alloc(N * 4)
        kernel = build_kernel(out)
        stats = simulate(kernel, memory, presets.by_name(name))
        assert np.array_equal(memory.read_array(out, N), expected()), name
        if baseline_ipc is None:
            baseline_ipc = stats.ipc
        print(
            "%-9s cycles=%6d  IPC=%6.2f  (%.2fx)  issue slots: "
            "primary=%d sbi=%d swi=%d"
            % (
                name,
                stats.cycles,
                stats.ipc,
                stats.ipc / baseline_ipc,
                stats.issued_primary,
                stats.issued_sbi_secondary,
                stats.issued_swi_secondary,
            )
        )
    print("\nall configurations produced identical results (verified)")


if __name__ == "__main__":
    main()
