"""Sweep service walkthrough: daemon, remote backend, shared store.

Starts a ``repro serve`` daemon on a loopback port (in-process, the
same :func:`repro.service.daemon.make_server` the CLI uses), then
demonstrates the full client flow against it:

1. a cold sweep through ``Engine(server=...)`` — every cell simulates
   on the daemon and lands in its content-addressed store;
2. the same sweep from a *second* client — zero simulations, all
   cells served from the store (the daemon's accounting counters
   prove it);
3. a direct cached-cell lookup by content address
   (``GET /v1/cells/<hash>``);
4. the store layout on disk, and why two stores merge by file copy
   while ``repro merge`` must compare stats.

Against a real deployment you would skip step 0 and point
``--server`` / ``Engine(server=...)`` at the shared daemon::

    PYTHONPATH=src python examples/remote_sweep.py
    PYTHONPATH=src python examples/remote_sweep.py --size smoke
"""

from __future__ import annotations

import argparse
import os
import tempfile
import threading

from repro.api import Engine, SweepSpec
from repro.api.cache import cell_hash
from repro.service.daemon import make_server
from repro.service.remote import RemoteClient


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--size", default="tiny", choices=("tiny", "smoke", "bench"))
    p.add_argument("--workloads", default="bfs,matrixmul")
    p.add_argument("--modes", default="baseline,sbi_swi")
    p.add_argument("--workers", type=int, default=2)
    return p.parse_args()


def main() -> None:
    args = parse_args()
    spec = SweepSpec.from_presets(
        args.modes.split(","),
        workloads=args.workloads.split(","),
        size=args.size,
    )

    # 0. A daemon on a loopback port, store in a scratch directory.
    store_dir = os.path.join(tempfile.mkdtemp(prefix="repro-store-"), "store")
    server = make_server(port=0, store_dir=store_dir, workers=args.workers)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    url = "http://%s:%d" % (host, port)
    print("daemon   : %s (store %s)" % (url, store_dir))

    def counters() -> dict:
        return dict(server.service.counters)

    # 1. Cold sweep: every unique cell simulates once, on the daemon.
    rs = Engine(server=url, cache_dir=None, memo={}).run(spec)
    after_cold = counters()
    print(
        "cold run : %d cells -> %d simulated, %d from store"
        % (len(rs), after_cold["cells_simulated"], after_cold["cells_store"])
    )

    # 2. A second client (fresh caches): the store serves everything.
    rs2 = Engine(server=url, cache_dir=None, memo={}).run(spec)
    after_warm = counters()
    print(
        "warm run : %d cells -> %d new simulations, %d from store"
        % (
            len(rs2),
            after_warm["cells_simulated"] - after_cold["cells_simulated"],
            after_warm["cells_store"] - after_cold["cells_store"],
        )
    )
    assert rs2.to_json() == rs.to_json(), "remote reruns must be identical"

    # 3. Cached-cell lookup by content address, no sweep required.
    workload, size = args.workloads.split(",")[0], args.size
    config = spec.configs[args.modes.split(",")[0]]
    digest = cell_hash(workload, size, config)
    cell = RemoteClient(url).cell(digest)
    print(
        "lookup   : /v1/cells/%s... -> %s/%s ipc-ready stats (%s)"
        % (digest[:12], cell["workload"], cell["size"], cell["stats"]["kind"])
    )

    # 4. The store on disk: <root>/<hh>/<hash>.json, one entry per
    #    simulated cell, same schema as the flat --cache-dir entries.
    #    Identical hash == identical content, so merging two stores is
    #    `cp -rn` / rsync; `repro merge` is for ResultSet artifacts,
    #    which carry per-cell stats that must be compared.
    #    The root also holds the daemon's write-ahead journal
    #    (journal.ndjson) — only the two-hex-digit directories are
    #    shards.
    shards = sorted(
        name
        for name in os.listdir(store_dir)
        if os.path.isdir(os.path.join(store_dir, name))
    )
    entries = sum(len(os.listdir(os.path.join(store_dir, s))) for s in shards)
    print("store    : %d entries across %d shards" % (entries, len(shards)))
    print(rs.to_text())

    server.shutdown()
    server.service.stop()
    server.server_close()


if __name__ == "__main__":
    main()
