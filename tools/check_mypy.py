#!/usr/bin/env python3
"""Baseline-gated mypy runner for the typed core.

Usage::

    python tools/check_mypy.py            # compare against the baseline
    python tools/check_mypy.py --update   # rewrite the baseline

Runs ``mypy`` with the repository ``mypy.ini`` and diffs the normalised
error lines against ``tools/mypy_baseline.txt``:

* errors **not** in the baseline fail the run (exit 1) — new typing
  regressions are build-breaking;
* baseline entries that no longer fire are listed as fixable — shrink
  the baseline in the same change that fixed them.

When mypy is not installed (the development container does not bake it
in) the check exits 0 with a notice: the CI static-analysis job
installs mypy and is the enforcing environment.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from typing import List, Set

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(ROOT, "tools", "mypy_baseline.txt")

#: Keep ``path:line`` but drop column numbers so small edits above an
#: unrelated known error do not churn the baseline... columns only;
#: line numbers do move, which is intentional: a moved error must be
#: re-baselined consciously.
_ERROR_RE = re.compile(r"^(?P<loc>[^:]+:\d+)(?::\d+)?: (?P<rest>(error|note): .*)$")


def _have_mypy() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy() -> List[str]:
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", os.path.join(ROOT, "mypy.ini")],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    lines = []
    for raw in proc.stdout.splitlines():
        m = _ERROR_RE.match(raw.strip())
        if m and m.group("rest").startswith("error"):
            loc = m.group("loc").replace("\\", "/")
            lines.append("%s: %s" % (loc, m.group("rest")))
    return sorted(set(lines))


def read_baseline() -> Set[str]:
    try:
        with open(BASELINE) as f:
            return {
                line.rstrip("\n")
                for line in f
                if line.strip() and not line.startswith("#")
            }
    except OSError:
        return set()


def write_baseline(errors: List[str]) -> None:
    with open(BASELINE, "w") as f:
        f.write(
            "# mypy --strict baseline for the typed core "
            "(repro.core/timing/api/isa).\n"
            "# Regenerate with: python tools/check_mypy.py --update\n"
            "# Entries here are known debt; new errors fail the build.\n"
        )
        for line in errors:
            f.write(line + "\n")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline from this run"
    )
    args = parser.parse_args(argv)

    if not _have_mypy():
        print(
            "mypy is not installed in this environment; skipping the "
            "typing gate (CI installs and enforces it)."
        )
        return 0

    errors = run_mypy()
    if args.update:
        write_baseline(errors)
        print("baseline updated: %d entries" % len(errors))
        return 0

    baseline = read_baseline()
    new = [e for e in errors if e not in baseline]
    fixed = sorted(baseline - set(errors))
    if fixed:
        print("fixed relative to baseline (%d) — shrink the baseline:" % len(fixed))
        for line in fixed:
            print("  " + line)
    if new:
        print("NEW typing errors (%d):" % len(new))
        for line in new:
            print("  " + line)
        return 1
    print(
        "typing gate clean: %d error(s), all baselined (%d fixable)"
        % (len(errors), len(fixed))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
