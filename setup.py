"""Setup shim — enables `python setup.py develop` on environments
without the `wheel` package (pip editable installs need bdist_wheel)."""
from setuptools import setup

setup()
