"""Packaging for the SBI/SWI reproduction.

Installs the ``repro`` package from ``src/`` and the ``repro`` console
script (the same entry point as ``python -m repro``).  Kept as a plain
``setup.py`` so `python setup.py develop` still works on environments
without the ``wheel`` package (pip editable installs need
bdist_wheel).
"""

from setuptools import find_packages, setup

setup(
    name="repro-sbi-swi",
    version="1.6.0",
    description=(
        "Cycle-level reproduction of 'Simultaneous Branch and Warp "
        "Interweaving for Sustained GPU Performance' (ISCA 2012)"
    ),
    packages=find_packages("src"),
    package_dir={"": "src"},
    package_data={
        # PEP 561: the package ships inline type annotations.
        "repro": ["py.typed"],
        # Committed config-schema fingerprint read by `repro lint`.
        "repro.lint": ["data/*.json"],
    },
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
