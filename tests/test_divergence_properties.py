"""Property tests: divergence models under random operation storms.

Whatever sequence of branches, advances, exits, parks and releases a
scheduler throws at a divergence model, two invariants must hold at
every step (paper-critical — SBI's co-issue legality depends on them):

* live splits are pairwise disjoint;
* the union of live masks equals launch minus exited threads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing.frontier import FrontierModel
from repro.timing.hct import SBIModel
from repro.timing.stack import StackModel

W = 16
FULL = (1 << W) - 1
PERM = tuple(range(W))
MAX_PC = 30


def _models():
    return {
        "stack": lambda: StackModel(FULL, PERM),
        "frontier": lambda: FrontierModel(FULL, PERM),
        "sbi": lambda: SBIModel(FULL, PERM, insert_delay=1),
        "sbi_slow_sideband": lambda: SBIModel(FULL, PERM, insert_delay=7),
    }


@st.composite
def op_sequences(draw):
    ops = []
    for _ in range(draw(st.integers(5, 40))):
        kind = draw(
            st.sampled_from(["branch", "advance", "exit", "park_cycle"])
        )
        ops.append(
            (
                kind,
                draw(st.integers(0, FULL)),  # mask material
                draw(st.integers(0, MAX_PC)),  # target material
                draw(st.booleans()),  # pick primary or secondary hot
            )
        )
    return ops


class TestInvariantStorm:
    @pytest.mark.parametrize("name", sorted(_models()))
    @given(ops=op_sequences())
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold(self, name, ops):
        model = _models()[name]()
        now = 0
        for kind, mask_bits, target, pick_second in ops:
            now += 1
            hot = model.hot_splits(now)
            if not hot:
                model.unpark_all(now)
                hot = model.hot_splits(now)
                if not hot:
                    break
            split = hot[1] if (pick_second and len(hot) > 1) else hot[0]
            if kind == "branch":
                taken = split.mask & mask_bits
                # The stack model needs a reconvergence pc above the
                # branch; use the maximum pc as a conservative join.
                model.branch(split, taken, target, reconv_pc=MAX_PC + 1, now=now)
            elif kind == "advance":
                model.advance(split, now)
            elif kind == "exit":
                exit_mask = split.mask & mask_bits
                if exit_mask:
                    model.exit_threads(split, exit_mask, now)
            else:  # park everything runnable, then release
                model.park(split, now)
                model.unpark_all(now)
            model.check_invariants()
        model.check_invariants()

    @pytest.mark.parametrize("name", sorted(_models()))
    @given(ops=op_sequences())
    @settings(max_examples=30, deadline=None)
    def test_hot_splits_always_live_and_sorted(self, name, ops):
        model = _models()[name]()
        now = 0
        for kind, mask_bits, target, pick_second in ops:
            now += 1
            hot = model.hot_splits(now)
            if not hot:
                break
            pcs = [s.pc for s in hot]
            assert pcs == sorted(pcs), "hot contexts must be PC-ordered"
            assert all(s.mask for s in hot), "hot contexts must be live"
            split = hot[1] if (pick_second and len(hot) > 1) else hot[0]
            if kind == "branch":
                model.branch(
                    split, split.mask & mask_bits, target, reconv_pc=MAX_PC + 1, now=now
                )
            elif kind == "advance":
                model.advance(split, now)
            elif kind == "exit" and (split.mask & mask_bits):
                model.exit_threads(split, split.mask & mask_bits, now)

    @given(ops=op_sequences())
    @settings(max_examples=30, deadline=None)
    def test_sbi_hot_capacity_bound(self, ops):
        model = SBIModel(FULL, PERM, insert_delay=2)
        now = 0
        for kind, mask_bits, target, pick_second in ops:
            now += 1
            hot = model.hot_splits(now)
            assert len(hot) <= 2, "HCT exposes at most two contexts"
            if not hot:
                break
            split = hot[1] if (pick_second and len(hot) > 1) else hot[0]
            if kind == "branch":
                model.branch(
                    split, split.mask & mask_bits, target, reconv_pc=None, now=now
                )
            elif kind == "advance":
                model.advance(split, now)
            elif kind == "exit" and (split.mask & mask_bits):
                model.exit_threads(split, split.mask & mask_bits, now)

    @given(ops=op_sequences())
    @settings(max_examples=30, deadline=None)
    def test_merges_never_lose_threads(self, ops):
        model = FrontierModel(FULL, PERM)
        now = 0
        for kind, mask_bits, target, _ in ops:
            now += 1
            hot = model.hot_splits(now)
            if not hot:
                break
            split = hot[0]
            before = model.live_mask() | model.exited_mask
            if kind == "branch":
                model.branch(
                    split, split.mask & mask_bits, target, reconv_pc=None, now=now
                )
            elif kind == "advance":
                model.advance(split, now)
            elif kind == "exit" and (split.mask & mask_bits):
                model.exit_threads(split, split.mask & mask_bits, now)
            after = model.live_mask() | model.exited_mask
            assert after == before == FULL
