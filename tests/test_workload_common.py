"""Workload plumbing: deterministic RNG, LCG twins, size presets."""

import numpy as np
import pytest

from repro.functional import MemoryImage, run_kernel
from repro.isa import KernelBuilder
from repro.workloads import common


class TestRng:
    def test_deterministic_per_name_and_size(self):
        a = common.rng("x", "tiny").integers(0, 100, 8)
        b = common.rng("x", "tiny").integers(0, 100, 8)
        np.testing.assert_array_equal(a, b)

    def test_distinct_across_names(self):
        a = common.rng("x", "tiny").integers(0, 1 << 30, 8)
        b = common.rng("y", "tiny").integers(0, 1 << 30, 8)
        assert not np.array_equal(a, b)

    def test_distinct_across_sizes(self):
        a = common.rng("x", "tiny").integers(0, 1 << 30, 8)
        b = common.rng("x", "bench").integers(0, 1 << 30, 8)
        assert not np.array_equal(a, b)

    def test_size_validation(self):
        common.check_size("tiny")
        with pytest.raises(ValueError):
            common.check_size("huge")


class TestLcgTwins:
    def test_kernel_lcg_matches_numpy(self):
        """The in-kernel LCG and its numpy twin must agree bit-for-bit
        (workload reference checks depend on it)."""
        kb = KernelBuilder("lcg")
        s, a = kb.regs("s", "a")
        kb.mov(s, kb.tid)
        for _ in range(5):
            common.emit_lcg(kb, s)
        kb.mul(a, kb.tid, 4)
        kb.st(kb.param(0), s, index=a)
        kb.exit_()
        mem = MemoryImage()
        out = mem.alloc(64 * 4)
        kernel = kb.build(cta_size=64, grid_size=1, params=(out,))
        run_kernel(kernel, mem)
        state = np.arange(64, dtype=np.int64)
        for _ in range(5):
            state = common.lcg_next(state)
        np.testing.assert_array_equal(mem.read_array(out, 64), state)

    def test_lcg_stays_exact_in_float64(self):
        # max(state) * A + C must stay below 2**53.
        assert common.LCG_MASK * common.LCG_A + common.LCG_C < 2**53

    def test_lcg_period_reasonable(self):
        seen = set()
        s = np.int64(1)
        for _ in range(2000):
            s = common.lcg_next(np.array([s]))[0]
            seen.add(int(s))
        assert len(seen) > 1000  # no tiny cycle


class TestEmitHelpers:
    def test_global_tid(self):
        kb = KernelBuilder("gtid")
        t, a = kb.regs("t", "a")
        common.emit_global_tid(kb, t)
        common.emit_byte_index(kb, a, t)
        kb.st(kb.param(0), t, index=a)
        kb.exit_()
        mem = MemoryImage()
        out = mem.alloc(128 * 4)
        kernel = kb.build(cta_size=32, grid_size=4, params=(out,))
        run_kernel(kernel, mem)
        np.testing.assert_array_equal(mem.read_array(out, 128), np.arange(128))


class TestSizePresets:
    @pytest.mark.parametrize(
        "name",
        ["blackscholes", "histogram", "mandelbrot", "sortingnetworks"],
    )
    def test_bench_is_larger_than_tiny(self, name):
        from repro.functional.interp import run_kernel as interp
        from repro.workloads import get_workload

        tiny = get_workload(name, "tiny")
        bench = get_workload(name, "bench")
        r_tiny = interp(tiny.kernel, tiny.memory)
        r_bench = interp(bench.kernel, bench.memory)
        assert r_bench.thread_instructions > r_tiny.thread_instructions
