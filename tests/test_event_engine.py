"""Event-heap engine core: heap-vs-scan equivalence and stale entries.

The event engine (the default ``engine="event"``) feeds idle-span
jumps from a lazy-deletion wake heap; the reference engine
(``engine="reference"``) re-derives every jump by scanning all event
sources.  Three families of checks pin the contract:

* **differential** — both engines produce byte-identical stats for
  single-SM and whole-device runs;
* **heap-vs-scan** — at every jump the heap's answer equals the
  scan's (the property "every jump target makes progress" is *not*
  true — writeback and group-free events routinely land on cycles
  where nothing can issue or fetch — so equality of the two jump
  oracles plus the stats differential is the enforceable invariant);
* **lazy deletion** — superseded, time-passed and retired heap
  entries are dropped or advanced, including the in-flight case where
  a model mutation (version bump via the ``on_change`` hook)
  invalidates a warp's cached wake list while its old entry is still
  queued.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest

from repro.core import presets
from repro.core.simulator import simulate, simulate_device
from repro.core.sm import StreamingMultiprocessor
from repro.timing.config import GPUConfig
from repro.workloads import get_workload

DIFF_CELLS = [
    ("matrixmul", "baseline"),
    ("bfs", "sbi"),
    ("mandelbrot", "sbi_swi"),
    ("srad", "swi"),
    ("bfs", "warp64"),
]


def _fresh(workload: str):
    return get_workload(workload, "tiny")


class TestEngineDifferential:
    @pytest.mark.parametrize("workload,mode", DIFF_CELLS)
    def test_single_sm_stats_identical(self, workload, mode):
        config = presets.by_name(mode)
        inst = _fresh(workload)
        event = simulate(inst.kernel, inst.memory, config, engine="event")
        inst = _fresh(workload)
        reference = simulate(inst.kernel, inst.memory, config, engine="reference")
        assert asdict(event) == asdict(reference)

    @pytest.mark.parametrize("sm_count", [1, 4])
    def test_device_stats_identical(self, sm_count):
        inst = _fresh("bfs")
        config = GPUConfig(sm=presets.by_name("sbi_swi"), sm_count=sm_count)
        event = simulate_device(inst.kernel, inst.memory, config, engine="event")
        inst = _fresh("bfs")
        config = GPUConfig(sm=presets.by_name("sbi_swi"), sm_count=sm_count)
        reference = simulate_device(
            inst.kernel, inst.memory, config, engine="reference"
        )
        assert asdict(event) == asdict(reference)

    def test_unknown_engine_rejected(self):
        inst = _fresh("matrixmul")
        with pytest.raises(ValueError, match="unknown engine"):
            simulate(inst.kernel, inst.memory, presets.by_name("baseline"),
                     engine="cycles")
        inst = _fresh("matrixmul")
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_device(inst.kernel, inst.memory, engine="cycles")


class TestHeapMatchesScanAtEveryJump:
    @pytest.mark.parametrize("workload,mode", [
        ("matrixmul", "baseline"),
        ("mandelbrot", "sbi_swi"),
        ("bfs", "warp64"),
    ])
    def test_jump_oracles_agree(self, workload, mode):
        """Drive the run loop by hand; on every idle cycle the heap
        and the full scan must name the same next event."""
        config = presets.by_name(mode)
        inst = _fresh(workload)
        sm = StreamingMultiprocessor(inst.kernel, inst.memory, config)
        sm._initial_launch()
        now = 0
        jumps = 0
        with np.errstate(all="ignore"):
            while now < config.max_cycles:
                progressed = sm.step(now)
                if sm.finished:
                    break
                if progressed:
                    now += 1
                    continue
                heap_next = sm._heap_next_event(now)
                scan_next = sm.next_event_cycle(now)
                assert heap_next == scan_next, (
                    "at cycle %d: heap says %r, scan says %r"
                    % (now, heap_next, scan_next)
                )
                assert heap_next is not None
                assert heap_next > now
                now = heap_next
                jumps += 1
        assert sm.finished, "run did not complete within max_cycles"
        assert jumps > 0, "workload never went idle; jump oracle untested"


def _one_warp_sm():
    inst = _fresh("matrixmul")
    sm = StreamingMultiprocessor(
        inst.kernel, inst.memory, presets.by_name("sbi_swi")
    )
    sm._initial_launch()
    return sm, sm.live_warps()[0]


class TestLazyDeletion:
    def test_valid_entry_is_served(self):
        sm, warp = _one_warp_sm()
        sm._wake_heap.clear()
        warp.heap_wake = 5
        sm._wake_heap.append((5, 0, warp))
        assert sm._heap_wake_peek(0) == 5

    def test_superseded_entry_is_dropped(self):
        sm, warp = _one_warp_sm()
        sm._wake_heap.clear()
        # An old entry at 5 is still queued, but the warp's current
        # heap registration moved to 9 (a flush superseded it).
        warp.heap_wake = 9
        sm._wake_heap[:] = [(5, 0, warp), (9, 1, warp)]
        assert sm._heap_wake_peek(0) == 9
        assert (5, 0, warp) not in sm._wake_heap

    def test_time_passed_entry_advances(self):
        sm, warp = _one_warp_sm()
        sm._wake_heap.clear()
        warp.heap_wake = 5
        sm._wake_heap.append((5, 0, warp))
        # The warp's real next wake is a redirect gate at 9.
        next(iter(warp.model.all_splits())).redirect_ready_at = 9
        # Cycle 6 was reached some other way: the 5-entry is in the
        # past, so the warp re-queues at its next future wake.
        assert sm._heap_wake_peek(6) == 9
        assert warp.heap_wake == 9

    def test_retired_warp_entry_is_dropped(self):
        sm, warp = _one_warp_sm()
        sm._wake_heap.clear()
        warp.heap_wake = 5
        sm._wake_heap.append((5, 0, warp))
        warp.done = True
        assert sm._heap_wake_peek(0) is None
        assert not sm._wake_heap

    def test_mutation_invalidates_in_flight_entry(self):
        """A model mutation while an old entry is queued: the hook
        queues the warp dirty, the flush recomputes its wake (the
        mutation moved it), and the stale heap entry no longer
        matches the warp's registration."""
        sm, warp = _one_warp_sm()
        sm._wake_heap.clear()
        sm._wake_dirty.clear()
        warp.wake_dirty = False
        warp.heap_wake = 5
        sm._wake_heap.append((5, 0, warp))
        # Mutation: fires the on_change hook bound at launch.
        warp.model._touch()
        assert warp.wake_dirty
        assert warp in sm._wake_dirty
        sm._flush_wake_dirty(0)
        # A fresh warp has no future split wakes: the warp
        # deregisters and the old entry goes stale.
        assert warp.heap_wake == -1
        assert sm._heap_wake_peek(0) is None
        assert not sm._wake_heap

    def test_snapshot_lists_only_valid_entries(self):
        sm, warp = _one_warp_sm()
        sm._wake_heap.clear()
        sm._wake_dirty.clear()
        warp.wake_dirty = False
        warp.heap_wake = 9
        sm._wake_heap[:] = [(5, 0, warp), (9, 1, warp)]
        assert sm.event_heap_snapshot() == [(9, warp.wid)]
