"""Differential pin of the compiled executor against the interpreter.

The compiled instruction plans (:mod:`repro.functional.compiled`) must
be architecturally invisible: every workload, every mode, byte-identical
:class:`~repro.timing.stats.Stats` and identical memory images between
``compiled=True`` (the default) and the reference interpreter
(``compiled=False``).

``tests/data/golden_smoke.json`` pins the *compiled* path (it is the
default everywhere, including ``test_policy_registry``'s golden run),
so checking the reference path against the same golden SHAs proves
both directions at half the simulation cost.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.core import presets
from repro.core.simulator import simulate
from repro.workloads import ALL_WORKLOADS, get_workload

GOLDEN = os.path.join(os.path.dirname(__file__), "data", "golden_smoke.json")


def _sha(stats) -> str:
    return hashlib.sha256(
        json.dumps(stats.to_dict(), sort_keys=True).encode()
    ).hexdigest()


class TestReferencePathMatchesGolden:
    """The interpreter reproduces the compiled path's pinned stats over
    all 21 workloads x 5 modes at smoke size."""

    @pytest.mark.parametrize("mode", presets.FIGURE7_CONFIGS)
    def test_mode_matches_golden(self, mode):
        with open(GOLDEN) as f:
            golden = json.load(f)["cells"]
        config = presets.by_name(mode)
        for workload in ALL_WORKLOADS:
            expected = golden["%s/%s" % (workload, mode)]
            inst = get_workload(workload, "smoke")
            stats = simulate(inst.kernel, inst.memory, config, compiled=False)
            assert _sha(stats) == expected["stats_sha"], workload


class TestDirectDifferential:
    """Head-to-head on one irregular workload: identical stats *and*
    identical architectural memory, for every mode."""

    @pytest.mark.parametrize("mode", presets.FIGURE7_CONFIGS)
    def test_stats_and_memory_identical(self, mode):
        config = presets.by_name(mode)
        fast = get_workload("bfs", "smoke")
        fast_stats = simulate(fast.kernel, fast.memory, config, compiled=True)
        ref = get_workload("bfs", "smoke")
        ref_stats = simulate(ref.kernel, ref.memory, config, compiled=False)
        assert fast_stats.to_dict() == ref_stats.to_dict()
        assert np.array_equal(fast.memory.words, ref.memory.words)


class TestExecutorUnitDifferential:
    """Both paths agree instruction-by-instruction under partial and
    predicated masks (the cases the full-warp fast path must not
    mishandle)."""

    def _run(self, compiled):
        from repro.functional.executor import Executor, FunctionalWarp
        from repro.functional.memory import MemoryImage, SharedMemory
        from repro.isa.builder import KernelBuilder
        from repro.isa.instructions import CmpOp
        from repro.timing.masks import full_mask, mask_to_bools

        kb = KernelBuilder("diff")
        v, p, a = kb.regs("v", "p", "a")
        kb.add(v, kb.tid, 7)
        kb.setp(p, CmpOp.LT, kb.tid, 9)
        kb.mul(v, v, 3, pred=p)
        kb.mad(a, kb.tid, 4, kb.param(0))
        kb.st(a, v)
        kb.ld(v, a)
        kb.exit_()
        mem = MemoryImage()
        out = mem.alloc(4096)
        kernel = kb.build(cta_size=32, grid_size=1, params=(out,))
        ex = Executor(kernel, mem, compiled=compiled)
        warp = FunctionalWarp(
            warp_id=0,
            width=32,
            nregs=kernel.nregs,
            tids_in_cta=np.arange(32),
            cta_index=0,
            shared=SharedMemory(64),
        )
        masks = [full_mask(32), 0x0F0F0F0F, 0x1]
        for instr in kernel.program.instructions:
            for mask in masks:
                out_ = ex.execute(instr, warp, mask_to_bools(mask, 32))
                assert out_.active is not None
        return warp.regs.copy(), mem.words.copy()

    def test_masked_execution_identical(self):
        regs_fast, mem_fast = self._run(True)
        regs_ref, mem_ref = self._run(False)
        assert np.array_equal(regs_fast, regs_ref)
        assert np.array_equal(mem_fast, mem_ref)
