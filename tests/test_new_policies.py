"""The exploration policies shipped with the registry: swi_greedy,
swi_rr (cascaded warp-arbiter variants) and dwr (dynamic warp
resizing), plus the DWR divergence model itself."""

import pytest

from repro.api import Engine, SweepSpec
from repro.core import presets
from repro.core.simulator import simulate
from repro.timing.dwr import DWRModel
from repro.timing.frontier import FrontierModel
from repro.workloads import get_workload

NEW_POLICIES = ("swi_greedy", "swi_rr", "dwr")

#: Pinned IPC on one divergent workload (mandelbrot @ tiny).  The
#: simulator is deterministic: any drift is a behaviour change and
#: must be reviewed, not re-pinned casually.
PINNED_IPC = {
    "swi": 13.9199,
    "swi_greedy": 13.7788,
    "swi_rr": 13.9850,
    "dwr": 9.4680,
}


class TestPinnedBehaviour:
    @pytest.mark.parametrize("mode", sorted(PINNED_IPC))
    def test_ipc_pinned_on_divergent_workload(self, mode):
        inst = get_workload("mandelbrot", "tiny")
        stats = simulate(inst.kernel, inst.memory, presets.by_name(mode))
        inst.numpy_check(inst.memory)
        assert round(stats.ipc, 4) == PINNED_IPC[mode]

    @pytest.mark.parametrize("mode", NEW_POLICIES)
    def test_functional_equivalence(self, mode):
        """New scheduling policies change timing, never results."""
        ref = get_workload("bfs", "tiny")
        simulate(ref.kernel, ref.memory, presets.baseline())
        new = get_workload("bfs", "tiny")
        simulate(new.kernel, new.memory, presets.by_name(mode))
        new.numpy_check(new.memory)

    def test_greedy_is_deterministic_sans_rand(self):
        """The greedy-then-oldest arbiter has no pseudo-random state, so
        two runs with different seeds are identical (the paper's SWI
        tie-break is seed-sensitive by design)."""
        runs = []
        for seed in (1, 99):
            inst = get_workload("mandelbrot", "tiny")
            stats = simulate(
                inst.kernel, inst.memory, presets.by_name("swi_greedy", seed=seed)
            )
            runs.append((stats.cycles, stats.instructions_issued))
        assert runs[0] == runs[1]


class TestSweepIntegration:
    def test_selectable_from_sweepspec(self):
        spec = SweepSpec(
            workloads=["histogram"], configs=["baseline"], sizes="tiny"
        ).with_policies(NEW_POLICIES)
        assert spec.total_cells == len(NEW_POLICIES)
        rs = Engine().run(spec)
        table = rs.ipc_table()["histogram"]
        assert all(v > 0 for v in table.values())

    def test_selectable_as_plain_configs(self):
        spec = SweepSpec(workloads=["histogram"], configs=NEW_POLICIES, sizes="tiny")
        rs = Engine().run(spec)
        assert set(rs.configs) == set(NEW_POLICIES)


class TestDWRModel:
    WIDTH = 64
    FULL = (1 << 64) - 1

    def _model(self):
        return DWRModel(self.FULL, list(range(self.WIDTH)), subwarp_width=32)

    def test_subdivides_on_divergence(self):
        model = self._model()
        split = model.hot_splits(0)[0]
        # Even threads take the branch: both outcomes span both halves.
        taken = int("55" * 16, 16) & self.FULL
        assert model.branch(split, taken, target_pc=10, reconv_pc=None, now=0)
        model.check_invariants()
        assert model.resize_downs == 2  # both outcome splits were sliced
        for s in model.all_splits():
            assert model._window(s.mask) is not None  # each fits one window
        assert len(list(model.all_splits())) == 4

    def test_no_subdivision_without_divergence(self):
        model = self._model()
        split = model.hot_splits(0)[0]
        assert not model.branch(split, self.FULL, 10, None, 0)
        assert model.resize_downs == 0
        assert len(list(model.all_splits())) == 1

    def test_regroups_at_reconvergence(self):
        model = self._model()
        split = model.hot_splits(0)[0]
        taken = int("55" * 16, 16) & self.FULL
        model.branch(split, taken, target_pc=2, reconv_pc=None, now=0)
        # The fall-through sub-warps sit at PC 1; frontier order runs
        # them first.  Advancing everything to a common PC must fold
        # the four sub-warp splits back into one full-width split.
        for _ in range(16):
            if len(list(model.all_splits())) == 1:
                break
            hot = model.hot_splits(0)[0]
            model.advance(hot, 0)
            model.check_invariants()
        assert len(list(model.all_splits())) == 1
        assert model.hot_splits(0)[0].mask == self.FULL
        assert model.resize_ups > 0  # a cross-window regroup happened

    def test_more_concurrent_splits_than_swi(self):
        inst = get_workload("mandelbrot", "tiny")
        stats = simulate(inst.kernel, inst.memory, presets.by_name("dwr"))
        dwr_splits = stats.max_live_splits
        inst = get_workload("mandelbrot", "tiny")
        stats = simulate(inst.kernel, inst.memory, presets.by_name("swi"))
        # Sub-warp slicing creates strictly more concurrent splits.
        assert dwr_splits >= stats.max_live_splits
