"""Hardware cost models vs the paper's Tables 3 and 4."""

import pytest

from repro.hwcost.area import (
    AREA_PAPER,
    OVERHEAD_PAPER,
    SM_AREA_UM2,
    area_table,
    overhead_percent,
)
from repro.hwcost.storage import (
    CONFIGS,
    STORAGE_PAPER,
    ComponentStorage,
    components,
    storage_table,
)


class TestStorageGeometry:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_every_component_present(self, config):
        names = {c.component for c in components(config)}
        assert names == {"Scoreboard", "Warp pool/HCT", "Stack/CCT", "Insn. buffer"}

    @pytest.mark.parametrize("component", sorted(STORAGE_PAPER))
    @pytest.mark.parametrize("config", CONFIGS)
    def test_matches_paper_table3(self, component, config):
        table = storage_table()
        derived = table[component][config].geometry().split(",")[0].replace(" ", "")
        paper = STORAGE_PAPER[component][config].split(",")[0].replace(" ", "")
        assert derived == paper

    def test_geometry_string(self):
        c = ComponentStorage("X", 2, 24, 48)
        assert c.geometry() == "2x 24x 48-bit"
        assert c.total_bits == 2 * 24 * 48

    def test_sbi_scoreboard_tracks_divergence_state(self):
        table = storage_table()
        assert (
            table["Scoreboard"]["sbi"].total_bits
            > table["Scoreboard"]["baseline"].total_bits // 2 * 1
        )

    def test_cct_replaces_larger_stack(self):
        table = storage_table()
        stack_bits = table["Stack/CCT"]["baseline"].total_bits
        cct_bits = table["Stack/CCT"]["sbi"].total_bits
        assert cct_bits < stack_bits  # the heap is cheaper than the stacks

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            components("bogus")


class TestAreaModel:
    def test_components_close_to_paper(self):
        table = area_table()
        for component, row in AREA_PAPER.items():
            for config, paper in row.items():
                model = table[component][config]
                if paper is None:
                    assert model is None
                else:
                    assert model == pytest.approx(paper, rel=0.05), (component, config)

    def test_overheads_match_paper(self):
        for config, paper in OVERHEAD_PAPER.items():
            assert overhead_percent(config) == pytest.approx(paper, abs=0.25)

    def test_baseline_has_no_overhead(self):
        assert overhead_percent("baseline") == 0.0
        assert area_table()["Overhead"]["baseline"] is None

    def test_totals_are_sums(self):
        table = area_table()
        for config in CONFIGS:
            total = sum(
                v
                for name, row in table.items()
                if name not in ("Total", "Overhead")
                and (v := row.get(config)) is not None
            )
            assert table["Total"][config] == pytest.approx(total)

    def test_overhead_under_four_percent(self):
        # The paper's headline: all variants cost under 4% of SM area.
        for config in ("sbi", "swi", "sbi_swi"):
            assert overhead_percent(config) < 4.0

    def test_sm_area_reference(self):
        assert SM_AREA_UM2 == pytest.approx(15.6e6)
