"""Hardware cost models vs the paper's Tables 3 and 4."""

import pytest

from repro.hwcost.area import (
    AREA_PAPER,
    OVERHEAD_PAPER,
    SM_AREA_UM2,
    area_table,
    overhead_percent,
)
from repro.hwcost.storage import (
    CONFIGS,
    STORAGE_PAPER,
    ComponentStorage,
    components,
    storage_table,
)


class TestStorageGeometry:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_every_component_present(self, config):
        names = {c.component for c in components(config)}
        assert names == {"Scoreboard", "Warp pool/HCT", "Stack/CCT", "Insn. buffer"}

    @pytest.mark.parametrize("component", sorted(STORAGE_PAPER))
    @pytest.mark.parametrize("config", CONFIGS)
    def test_matches_paper_table3(self, component, config):
        table = storage_table()
        derived = table[component][config].geometry().split(",")[0].replace(" ", "")
        paper = STORAGE_PAPER[component][config].split(",")[0].replace(" ", "")
        assert derived == paper

    def test_geometry_string(self):
        c = ComponentStorage("X", 2, 24, 48)
        assert c.geometry() == "2x 24x 48-bit"
        assert c.total_bits == 2 * 24 * 48

    def test_sbi_scoreboard_tracks_divergence_state(self):
        table = storage_table()
        assert (
            table["Scoreboard"]["sbi"].total_bits
            > table["Scoreboard"]["baseline"].total_bits // 2 * 1
        )

    def test_cct_replaces_larger_stack(self):
        table = storage_table()
        stack_bits = table["Stack/CCT"]["baseline"].total_bits
        cct_bits = table["Stack/CCT"]["sbi"].total_bits
        assert cct_bits < stack_bits  # the heap is cheaper than the stacks

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            components("bogus")


class TestAreaModel:
    def test_components_close_to_paper(self):
        table = area_table()
        for component, row in AREA_PAPER.items():
            for config, paper in row.items():
                model = table[component][config]
                if paper is None:
                    assert model is None
                else:
                    assert model == pytest.approx(paper, rel=0.05), (component, config)

    def test_overheads_match_paper(self):
        for config, paper in OVERHEAD_PAPER.items():
            assert overhead_percent(config) == pytest.approx(paper, abs=0.25)

    def test_baseline_has_no_overhead(self):
        assert overhead_percent("baseline") == 0.0
        assert area_table()["Overhead"]["baseline"] is None

    def test_totals_are_sums(self):
        table = area_table()
        for config in CONFIGS:
            total = sum(
                v
                for name, row in table.items()
                if name not in ("Total", "Overhead")
                and (v := row.get(config)) is not None
            )
            assert table["Total"][config] == pytest.approx(total)

    def test_overhead_under_four_percent(self):
        # The paper's headline: all variants cost under 4% of SM area.
        for config in ("sbi", "swi", "sbi_swi"):
            assert overhead_percent(config) < 4.0

    def test_sm_area_reference(self):
        assert SM_AREA_UM2 == pytest.approx(15.6e6)


class TestPeakIssueValidation:
    """Observed peak issue rate vs the modeled front-end width."""

    def _snapshot(self, peaks):
        return {"kind": "origins", "peak_issues_per_cycle": peaks}

    def test_within_width_passes(self):
        from repro.core import presets
        from repro.hwcost import validate_peak_issue

        config = presets.by_name("sbi_swi")  # dual-issue front end
        peaks = validate_peak_issue(config, self._snapshot({"0": 2, "1": 1}))
        assert peaks == {"0": 2, "1": 1}

    def test_seeded_over_issue_fails_loudly(self):
        from repro.core import presets
        from repro.hwcost import PeakIssueViolation, validate_peak_issue

        config = presets.by_name("warp64")  # single-issue front end
        with pytest.raises(PeakIssueViolation, match="front-end width of 1"):
            validate_peak_issue(config, self._snapshot({"0": 1, "1": 2}))

    def test_device_config_checks_its_sm_policy(self):
        from repro.core import presets
        from repro.hwcost import PeakIssueViolation, front_end_width, validate_peak_issue

        device = presets.device("warp64", sm_count=2)
        assert front_end_width(device) == 1
        with pytest.raises(PeakIssueViolation):
            validate_peak_issue(device, self._snapshot({"1": 3}))

    def test_real_run_is_clean(self):
        from repro.analytics import OriginAggregator
        from repro.core import presets
        from repro.core.simulator import simulate
        from repro.hwcost import validate_peak_issue
        from repro.workloads import get_workload

        agg = OriginAggregator()
        inst = get_workload("bfs", "tiny")
        config = presets.by_name("sbi_swi")
        stats = simulate(inst.kernel, inst.memory, config, observers=[agg])
        agg.finalize(stats)
        assert validate_peak_issue(config, agg.snapshot())

    def test_malformed_snapshot_rejected(self):
        from repro.core import presets
        from repro.hwcost import validate_peak_issue

        with pytest.raises(ValueError, match="peak_issues_per_cycle"):
            validate_peak_issue(presets.baseline(), {"kind": "origins"})
