"""Presets (Table 2), Stats accounting, and the analysis helpers."""

import pytest

from repro.analysis import report as rpt
from repro.analysis.pipeline_trace import figure2_example, render_trace
from repro.core import presets
from repro.timing.config import SMConfig
from repro.timing.stats import Stats


class TestPresets:
    def test_table2_baseline(self):
        c = presets.baseline()
        assert (c.warp_count, c.warp_width) == (32, 32)
        assert c.scheduler_latency == 1 and c.delivery_latency == 0
        assert c.scoreboard_kind == "warp"
        assert c.peak_ipc == 64.0

    def test_table2_sbi(self):
        c = presets.sbi()
        assert (c.warp_count, c.warp_width) == (16, 64)
        assert c.scheduler_latency == 1 and c.delivery_latency == 1
        assert c.scoreboard_kind == "matrix"
        assert c.peak_ipc == 104.0

    def test_table2_swi(self):
        c = presets.swi()
        assert c.scheduler_latency == 2
        assert c.lane_shuffle == "xor_rev"
        assert c.swi_ways is None

    def test_sbi_swi_combination(self):
        c = presets.sbi_swi()
        assert c.uses_sbi and c.uses_swi
        assert c.mad_group_count == 1

    def test_baseline_two_mad_groups(self):
        assert presets.baseline().mad_group_count == 2

    def test_shared_memory_parameters(self):
        c = presets.baseline()
        assert c.l1_size == 48 * 1024 and c.l1_ways == 6 and c.l1_block == 128
        assert c.dram_bandwidth == 10.0 and c.dram_latency == 330

    def test_by_name_and_overrides(self):
        c = presets.by_name("swi", ways=3)
        assert c.swi_ways == 3
        with pytest.raises(ValueError):
            presets.by_name("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            SMConfig(mode="bogus")
        with pytest.raises(ValueError):
            SMConfig(warp_width=48)
        with pytest.raises(ValueError):
            SMConfig(lane_shuffle="bogus")
        with pytest.raises(ValueError):
            SMConfig(swi_ways=0)

    def test_replace_revalidates(self):
        c = presets.baseline()
        with pytest.raises(ValueError):
            c.replace(warp_width=13)

    def test_describe(self):
        assert "baseline" in presets.baseline().describe()


class TestStats:
    def test_ipc(self):
        s = Stats()
        s.cycles = 10
        s.thread_instructions = 320
        assert s.ipc == 32.0

    def test_zero_cycles(self):
        assert Stats().ipc == 0.0
        assert Stats().l1_hit_rate == 0.0
        assert Stats().avg_active_threads == 0.0

    def test_record_issue_origins(self):
        s = Stats()
        s.record_issue("mad", 32, "primary")
        s.record_issue("lsu", 16, "sbi")
        s.record_issue("sfu", 8, "swi")
        assert s.instructions_issued == 3
        assert s.thread_instructions == 56
        assert (s.issued_primary, s.issued_sbi_secondary, s.issued_swi_secondary) == (1, 1, 1)
        assert s.per_op_class == {"mad": 32, "lsu": 16, "sfu": 8}

    def test_bad_origin(self):
        with pytest.raises(ValueError):
            Stats().record_issue("mad", 1, "bogus")

    def test_summary_renders(self):
        s = Stats()
        s.cycles = 100
        s.record_issue("mad", 32, "primary")
        text = s.summary()
        assert "IPC" in text and "cycles" in text


class TestReportHelpers:
    def test_gmean(self):
        assert rpt.gmean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            rpt.gmean([1.0, -1.0])

    def test_hmean(self):
        assert rpt.hmean([2.0, 6.0]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            rpt.hmean([1.0, -1.0])

    def test_empty_means_raise(self):
        # A workload set filtered to nothing must not come back as a
        # silent 0.0 that poisons speedup tables.
        with pytest.raises(ValueError, match="empty"):
            rpt.gmean([])
        with pytest.raises(ValueError, match="empty"):
            rpt.hmean([])
        with pytest.raises(ValueError, match="empty"):
            rpt.gmean(iter(()))

    def test_format_table(self):
        text = rpt.format_table(["a", "b"], [[1, 2.5], ["x", None]], title="T")
        assert "T" in text and "2.50" in text and "-" in text

    def test_speedup_table_excludes(self):
        ipc = {
            "w1": {"base": 10.0, "new": 20.0},
            "tmdx": {"base": 10.0, "new": 40.0},
        }
        text = rpt.speedup_table(
            ipc, "base", ["new"], ["w1", "tmdx"], excluded=("tmdx",)
        )
        assert "2.00" in text  # w1 speedup
        assert "gmean" in text
        lines = [l for l in text.splitlines() if l.startswith("gmean")]
        assert "2.00" in lines[0]  # tmdx's 4x not in the mean


class TestPipelineTrace:
    def test_render_empty(self):
        assert render_trace([], 4) == "(no issues)"

    @pytest.mark.parametrize("mode", ["baseline", "sbi", "swi", "sbi_swi", "sbi_nc"])
    def test_figure2_modes_run(self, mode):
        stats, art = figure2_example(mode)
        assert stats.thread_instructions > 0
        assert "cycle" in art

    def test_figure2_sbi_co_issues(self):
        stats, _ = figure2_example("sbi")
        assert stats.issued_sbi_secondary > 0

    def test_figure2_results_equal_across_modes(self):
        counts = set()
        for mode in ("baseline", "sbi", "swi", "sbi_swi"):
            stats, _ = figure2_example(mode)
            counts.add(stats.thread_instructions)
        assert len(counts) == 1
