"""Thread-frontier layout passes and sync-marker insertion."""

import pytest

from repro.isa import layout
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, Op
from repro.isa.program import Program


def _assemble(kb):
    return Program(list(kb._instrs), dict(kb._labels))


def _if_else(kb_name="k"):
    kb = KernelBuilder(kb_name)
    p, v = kb.regs("p", "v")
    kb.and_(p, kb.tid, 1)
    kb.bra("e", cond=p)
    kb.mov(v, 1)
    kb.bra("j")
    kb.label("e")
    kb.mov(v, 2)
    kb.label("j")
    kb.mov(v, 3)
    kb.exit_()
    return kb


class TestAnnotation:
    def test_reconv_pc_set_on_conditional_branches(self):
        prog = _assemble(_if_else())
        layout.annotate_reconvergence(prog)
        branches = [i for i in prog if i.op is Op.BRA and i.is_conditional]
        assert branches and all(b.reconv_pc is not None for b in branches)

    def test_sync_marker_at_join(self):
        prog = _assemble(_if_else())
        count = layout.insert_sync_markers(prog)
        assert count == 1
        join = [i for i in prog if i.sync_pcdiv is not None]
        assert len(join) == 1
        assert join[0].sync_pcdiv == 1  # the divergent branch's pc

    def test_marker_below_divergence_point(self):
        prog = _assemble(_if_else())
        layout.insert_sync_markers(prog)
        for instr in prog:
            if instr.sync_pcdiv is not None:
                assert instr.sync_pcdiv < instr.pc


class TestValidation:
    def test_structured_code_is_frontier_valid(self):
        prog = _assemble(_if_else())
        assert layout.validate_frontier_layout(prog) == []

    def test_loops_are_frontier_valid(self):
        kb = KernelBuilder("loop")
        c, p = kb.regs("c", "p")
        kb.mov(c, 3)
        kb.label("head")
        kb.sub(c, c, 1)
        kb.setp(p, CmpOp.GT, c, 0)
        kb.bra("head", cond=p)
        kb.exit_()
        assert layout.validate_frontier_layout(_assemble(kb)) == []

    def test_bad_layout_detected(self):
        prog = _assemble(_if_else())
        # Put the join block before the else block: the else path must
        # then branch backward into a non-dominating block.
        permuted = layout.permute_blocks(prog, [0, 1, 3, 2])
        violations = layout.validate_frontier_layout(permuted)
        assert violations

    def test_then_else_swap_stays_valid(self):
        # Swapping the then/else bodies keeps every edge forward — the
        # frontier property does not pin a unique layout.
        prog = _assemble(_if_else())
        permuted = layout.permute_blocks(prog, [0, 2, 1, 3])
        assert layout.validate_frontier_layout(permuted) == []


class TestReorder:
    def test_reorder_is_identity_on_good_layout(self):
        prog = _assemble(_if_else())
        assert layout.reorder_frontier(prog) is prog

    def test_reorder_fixes_bad_layout(self):
        prog = _assemble(_if_else())
        permuted = layout.permute_blocks(prog, [0, 1, 3, 2])
        assert layout.validate_frontier_layout(permuted)
        fixed = layout.reorder_frontier(permuted)
        assert layout.validate_frontier_layout(fixed) == []

    def test_permute_preserves_semantics(self):
        import numpy as np
        from repro.functional import MemoryImage, run_kernel

        kb = _if_else()
        # Rebuild with storage so results are observable.
        kb2 = KernelBuilder("obs")
        p, v, a = kb2.regs("p", "v", "a")
        kb2.and_(p, kb2.tid, 1)
        kb2.bra("e", cond=p)
        kb2.mov(v, 1)
        kb2.bra("j")
        kb2.label("e")
        kb2.mov(v, 2)
        kb2.label("j")
        kb2.mul(a, kb2.tid, 4)
        kb2.st(kb2.param(0), v, index=a)
        kb2.exit_()
        prog = _assemble(kb2)
        permuted = layout.permute_blocks(prog, [0, 2, 1, 3])

        def run(p):
            from repro.isa.builder import Kernel

            mem = MemoryImage()
            out = mem.alloc(32 * 4)
            k = Kernel("t", layout.finalize(p, "as_is"), 32, 1, (float(out),), 0, 8)
            run_kernel(k, mem)
            return mem.read_array(out, 32)

        np.testing.assert_array_equal(run(prog), run(permuted))

    def test_rebuild_rejects_bad_permutation(self):
        prog = _assemble(_if_else())
        with pytest.raises(Exception):
            layout.permute_blocks(prog, [0, 1])


class TestFinalize:
    def test_finalize_frontier(self):
        prog = layout.finalize(_assemble(_if_else()), layout="frontier")
        assert layout.validate_frontier_layout(prog) == []
        assert any(i.sync_pcdiv is not None for i in prog)

    def test_finalize_as_is_keeps_order(self):
        prog = _assemble(_if_else())
        ops_before = [i.op for i in prog]
        out = layout.finalize(prog, layout="as_is")
        assert [i.op for i in out] == ops_before

    def test_finalize_unknown_mode(self):
        with pytest.raises(ValueError):
            layout.finalize(_assemble(_if_else()), layout="bogus")

    def test_tmd1_has_violations_tmd2_does_not(self):
        from repro.workloads.tmd import build

        t1 = build("tiny", variant="tmd1")
        t2 = build("tiny", variant="tmd2")
        assert layout.validate_frontier_layout(t1.kernel.program)
        assert layout.validate_frontier_layout(t2.kernel.program) == []
