"""SweepSpec construction, validation and axis expansion."""

import pytest

from repro.api import SweepSpec, apply_override
from repro.core import presets
from repro.timing.config import GPUConfig, SMConfig
from repro.workloads import ALL_WORKLOADS, IRREGULAR, REGULAR


class TestConstruction:
    def test_from_presets(self):
        spec = SweepSpec.from_presets(
            ["baseline", "sbi_swi"], workloads=["bfs"], size="tiny"
        )
        assert spec.workloads == ("bfs",)
        assert set(spec.configs) == {"baseline", "sbi_swi"}
        assert isinstance(spec.configs["baseline"], SMConfig)
        assert spec.sizes == ("tiny",)

    def test_config_names_resolve(self):
        spec = SweepSpec(workloads=["bfs"], configs=["baseline", "warp64"])
        assert spec.configs["warp64"].mode == "warp64"

    def test_explicit_config_objects(self):
        spec = SweepSpec(
            workloads=["bfs"],
            configs={"dev": presets.device("baseline", sm_count=2)},
        )
        assert isinstance(spec.configs["dev"], GPUConfig)

    def test_workload_groups(self):
        assert SweepSpec(workloads="regular", configs=["baseline"]).workloads == REGULAR
        assert (
            SweepSpec(workloads="irregular", configs=["baseline"]).workloads
            == IRREGULAR
        )
        assert SweepSpec(workloads="all", configs=["baseline"]).workloads == tuple(
            ALL_WORKLOADS
        )

    def test_default_workloads_is_all(self):
        assert SweepSpec(configs=["baseline"]).workloads == tuple(ALL_WORKLOADS)

    def test_duplicate_workloads_dedupe(self):
        spec = SweepSpec(workloads=["bfs", "bfs", "lud"], configs=["baseline"])
        assert spec.workloads == ("bfs", "lud")

    def test_smoke_alias_normalises(self):
        assert SweepSpec(workloads=["bfs"], configs=["baseline"], size="smoke").sizes == (
            "tiny",
        )

    def test_multi_size(self):
        spec = SweepSpec(
            workloads=["bfs"], configs=["baseline"], sizes=("tiny", "bench")
        )
        assert spec.sizes == ("tiny", "bench")
        assert spec.total_cells == 2

    def test_unknown_workload_lists_choices(self):
        with pytest.raises(ValueError, match="bfs"):
            SweepSpec(workloads=["nope"], configs=["baseline"])

    def test_unknown_size(self):
        with pytest.raises(ValueError, match="smoke"):
            SweepSpec(workloads=["bfs"], configs=["baseline"], size="huge")

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            SweepSpec(workloads=["bfs"], configs=["warp128"])

    def test_bad_config_value(self):
        with pytest.raises(ValueError, match="SMConfig"):
            SweepSpec(workloads=["bfs"], configs={"x": 42})

    def test_config_objects_in_sequence_get_helpful_error(self):
        with pytest.raises(ValueError, match="mapping"):
            SweepSpec(workloads=["bfs"], configs=[presets.baseline()])

    def test_empty_configs(self):
        with pytest.raises(ValueError):
            SweepSpec(workloads=["bfs"], configs={})


class TestFigure7:
    def test_grid_shape(self):
        spec = SweepSpec.figure7(size="smoke")
        assert spec.workloads == tuple(ALL_WORKLOADS)
        assert list(spec.configs) == list(presets.FIGURE7_CONFIGS)
        assert spec.total_cells == 21 * 5
        assert len(spec.cells()) == 105

    def test_cells_are_workload_major(self):
        cells = SweepSpec.figure7(size="tiny").cells()
        assert [c.workload for c in cells[:5]] == [ALL_WORKLOADS[0]] * 5
        assert [c.config_name for c in cells[:5]] == list(presets.FIGURE7_CONFIGS)


class TestAxes:
    def test_device_axis_on_sm_config(self):
        spec = SweepSpec(
            workloads=["bfs"], configs=["baseline"], size="tiny"
        ).with_axes(sm_count=[1, 2, 4])
        assert list(spec.configs) == [
            "baseline/sm_count=1",
            "baseline/sm_count=2",
            "baseline/sm_count=4",
        ]
        for config in spec.configs.values():
            assert isinstance(config, GPUConfig)
        assert spec.configs["baseline/sm_count=4"].sm_count == 4

    def test_sm_axis_on_gpu_config(self):
        spec = SweepSpec(
            workloads=["bfs"],
            configs={"dev": presets.device("baseline", sm_count=2)},
        ).with_axes(warp_count=[8, 16])
        assert spec.configs["dev/warp_count=8"].sm.warp_count == 8
        assert spec.configs["dev/warp_count=8"].sm_count == 2

    def test_cartesian_axes(self):
        spec = SweepSpec(
            workloads=["bfs"], configs=["baseline", "sbi_swi"]
        ).with_axes(sm_count=[1, 2], dram_partitions=[1, 2])
        assert len(spec.configs) == 2 * 2 * 2

    def test_unknown_field_lists_choices(self):
        with pytest.raises(ValueError, match="sm_count"):
            SweepSpec(workloads=["bfs"], configs=["baseline"]).with_axes(
                warp_size=[32]
            )

    def test_empty_axis(self):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec(workloads=["bfs"], configs=["baseline"]).with_axes(sm_count=[])

    def test_original_spec_unchanged(self):
        spec = SweepSpec(workloads=["bfs"], configs=["baseline"])
        spec.with_axes(sm_count=[1, 2])
        assert list(spec.configs) == ["baseline"]


class TestApplyOverride:
    def test_sm_field_on_sm(self):
        cfg = apply_override(presets.baseline(), "warp_count", 8)
        assert isinstance(cfg, SMConfig) and cfg.warp_count == 8

    def test_gpu_field_promotes(self):
        cfg = apply_override(presets.baseline(), "sm_count", 2)
        assert isinstance(cfg, GPUConfig) and cfg.sm_count == 2
        assert cfg.sm.mode == "baseline"

    def test_invalid_value_rejected_by_config_validation(self):
        with pytest.raises(ValueError):
            apply_override(presets.baseline(), "sm_count", 0)

    def test_shared_field_names_resolve_at_the_config_level(self):
        """dram_bandwidth/dram_latency exist at both levels; on a
        GPUConfig the device copy must win (the SM copy is ignored
        whenever the device one is set)."""
        dev = presets.device("baseline", sm_count=2)
        swept = apply_override(dev, "dram_bandwidth", 40.0)
        assert swept.dram_bandwidth == 40.0
        assert swept.total_dram_bandwidth == 40.0
        assert swept.sm.dram_bandwidth == dev.sm.dram_bandwidth  # untouched
        lat = apply_override(dev, "dram_latency", 100)
        assert lat.effective_dram_latency == 100
        # On a bare SMConfig the same name stays an SM field.
        sm = apply_override(presets.baseline(), "dram_bandwidth", 40.0)
        assert isinstance(sm, SMConfig) and sm.dram_bandwidth == 40.0
