"""Workload correctness: reference interpreter + timing + numpy models.

Every workload must (a) satisfy its independent numpy check under the
reference interpreter, and (b) produce identical outputs under the
baseline and SBI+SWI timing models.  A representative subset is also
run under the remaining configurations.
"""

import numpy as np
import pytest

from repro.core import presets
from repro.core.simulator import simulate
from repro.functional.interp import run_kernel
from repro.workloads import ALL_WORKLOADS, get_workload
from repro.workloads.suite import IRREGULAR, MEAN_EXCLUDED, REGULAR, category_of


class TestRegistry:
    def test_suite_composition(self):
        assert len(REGULAR) == 10
        assert len(IRREGULAR) == 11
        assert set(MEAN_EXCLUDED) == {"tmd1", "tmd2"}

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_category(self):
        assert category_of("bfs") == "irregular"
        assert category_of("matrixmul") == "regular"
        with pytest.raises(KeyError):
            category_of("nope")

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_instances_are_rebuildable(self, name):
        inst = get_workload(name, "tiny")
        again = inst.fresh()
        assert again.kernel.name == inst.kernel.name
        assert again.memory is not inst.memory

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            get_workload("bfs", "enormous")

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="bfs"):
            get_workload("nope")

    def test_unknown_size_lists_choices(self):
        with pytest.raises(ValueError, match="smoke"):
            get_workload("bfs", "enormous")

    def test_smoke_alias(self):
        from repro.workloads import normalize_size

        assert normalize_size("smoke") == "tiny"
        inst = get_workload("histogram", "smoke")
        assert inst.name == get_workload("histogram", "tiny").name

    def test_list_workloads_registry(self):
        from repro.workloads import list_workloads

        infos = list_workloads()
        assert [i.name for i in infos] == list(ALL_WORKLOADS)
        byname = {i.name: i for i in infos}
        assert byname["tmd1"].mean_excluded and byname["tmd1"].module.endswith(".tmd")
        assert byname["3dfd"].module.endswith(".threedfd")
        assert not byname["bfs"].mean_excluded
        assert byname["bfs"].sizes == ("tiny", "bench", "full")
        regular = list_workloads(category="regular")
        assert len(regular) == 10
        assert all(i.category == "regular" for i in regular)
        with pytest.raises(ValueError):
            list_workloads(category="medium")


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_reference_interpreter_matches_numpy(name):
    inst = get_workload(name, "tiny")
    run_kernel(inst.kernel, inst.memory)
    inst.numpy_check(inst.memory)


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_baseline_timing_matches_numpy(name):
    inst = get_workload(name, "tiny")
    stats = simulate(inst.kernel, inst.memory, presets.baseline())
    inst.numpy_check(inst.memory)
    assert 0 < stats.ipc <= 64.0


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_sbi_swi_timing_matches_numpy(name):
    inst = get_workload(name, "tiny")
    stats = simulate(inst.kernel, inst.memory, presets.sbi_swi())
    inst.numpy_check(inst.memory)
    assert 0 < stats.ipc <= 104.0


@pytest.mark.parametrize("name", ["mandelbrot", "bfs", "tmd2", "matrixmul"])
@pytest.mark.parametrize("config", ["warp64", "sbi", "swi"])
def test_remaining_modes_subset(name, config):
    inst = get_workload(name, "tiny")
    stats = simulate(inst.kernel, inst.memory, presets.by_name(config))
    inst.numpy_check(inst.memory)
    assert stats.cycles > 0


class TestWorkloadProperties:
    def test_mandelbrot_diverges(self):
        inst = get_workload("mandelbrot", "tiny")
        stats = simulate(inst.kernel, inst.memory, presets.baseline())
        assert stats.divergent_branches > 0

    def test_tmd_variants_same_function(self):
        t1 = get_workload("tmd1", "tiny")
        t2 = get_workload("tmd2", "tiny")
        run_kernel(t1.kernel, t1.memory)
        run_kernel(t2.kernel, t2.memory)
        for (l1, a1, n1), (l2, a2, n2) in zip(t1.outputs, t2.outputs):
            np.testing.assert_array_equal(
                t1.memory.read_array(a1, n1), t2.memory.read_array(a2, n2)
            )

    def test_histogram_uses_atomics(self):
        inst = get_workload("histogram", "tiny")
        stats = simulate(inst.kernel, inst.memory, presets.baseline())
        assert stats.memory_replays > 0

    def test_matrixmul_uses_shared(self):
        inst = get_workload("matrixmul", "tiny")
        stats = simulate(inst.kernel, inst.memory, presets.baseline())
        assert stats.shared_transactions > 0

    def test_outputs_declared(self):
        for name in ALL_WORKLOADS:
            inst = get_workload(name, "tiny")
            assert inst.outputs, name
            for label, addr, count in inst.outputs:
                assert count > 0 and addr >= 0

    def test_reference_outputs_deterministic(self):
        inst = get_workload("blackscholes", "tiny")
        a = inst.reference_outputs()
        b = inst.fresh().reference_outputs()
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])
