"""Stack, frontier and HCT/CCT divergence models."""

import pytest

from repro.timing.divergence import Split
from repro.timing.frontier import FrontierModel
from repro.timing.hct import SBIModel
from repro.timing.stack import StackModel

W = 8
FULL = (1 << W) - 1
PERM = tuple(range(W))


def models():
    return [
        StackModel(FULL, PERM),
        FrontierModel(FULL, PERM),
        SBIModel(FULL, PERM, insert_delay=0),
    ]


class TestCommonBehaviour:
    @pytest.mark.parametrize("model", models(), ids=["stack", "frontier", "sbi"])
    def test_initial_state(self, model):
        hot = model.hot_splits(0)
        assert len(hot) == 1
        assert hot[0].pc == 0 and hot[0].mask == FULL
        model.check_invariants()

    @pytest.mark.parametrize("model", models(), ids=["stack", "frontier", "sbi"])
    def test_uniform_branch(self, model):
        split = model.hot_splits(0)[0]
        diverged = model.branch(split, FULL, 5, reconv_pc=9, now=0)
        assert not diverged
        assert model.hot_splits(0)[0].pc == 5
        model.check_invariants()

    @pytest.mark.parametrize("model", models(), ids=["stack", "frontier", "sbi"])
    def test_divergent_branch_partitions_mask(self, model):
        split = model.hot_splits(0)[0]
        taken = 0b00001111
        diverged = model.branch(split, taken, 5, reconv_pc=9, now=0)
        assert diverged
        model.check_invariants()
        live = 0
        for s in model.all_splits():
            live |= s.mask
        assert live == FULL

    @pytest.mark.parametrize("model", models(), ids=["stack", "frontier", "sbi"])
    def test_exit_removes_threads(self, model):
        split = model.hot_splits(0)[0]
        model.exit_threads(split, 0b1111, now=0)
        model.check_invariants()
        assert model.live_mask() == 0b11110000

    @pytest.mark.parametrize("model", models(), ids=["stack", "frontier", "sbi"])
    def test_full_exit_finishes_warp(self, model):
        split = model.hot_splits(0)[0]
        model.exit_threads(split, FULL, now=0)
        assert model.done

    @pytest.mark.parametrize("model", models(), ids=["stack", "frontier", "sbi"])
    def test_park_unpark_roundtrip(self, model):
        split = model.hot_splits(0)[0]
        model.park(split, now=0)
        assert model.hot_splits(0) == []
        model.unpark_all(now=1)
        hot = model.hot_splits(1)
        assert len(hot) == 1 and hot[0].pc == 1
        model.check_invariants()


class TestStack:
    def test_reconverges_at_ipdom(self):
        m = StackModel(FULL, PERM)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 5, reconv_pc=9, now=0)
        # Taken path runs 5..8, pops at 9.
        top = m.hot_splits(0)[0]
        assert top.pc == 5 and top.mask == 0b1111
        for _ in range(4):
            m.advance(top, 0)
        # Now the fall-through path (pc 1) is on top.
        top = m.hot_splits(0)[0]
        assert top.pc == 1 and top.mask == 0b11110000
        for _ in range(8):
            m.advance(top, 0)
        top = m.hot_splits(0)[0]
        assert top.pc == 9 and top.mask == FULL
        assert m.merge_count >= 2

    def test_serialises_paths(self):
        m = StackModel(FULL, PERM)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 5, reconv_pc=9, now=0)
        assert len(m.hot_splits(0)) == 1  # only the top runs

    def test_empty_taken_path_merges_immediately(self):
        m = StackModel(FULL, PERM)
        split = m.hot_splits(0)[0]
        # if-without-else: taken target == reconvergence point.
        m.branch(split, 0b1111, 9, reconv_pc=9, now=0)
        top = m.hot_splits(0)[0]
        assert top.pc == 1 and top.mask == 0b11110000

    def test_exit_within_divergent_region(self):
        m = StackModel(FULL, PERM)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 5, reconv_pc=9, now=0)
        top = m.hot_splits(0)[0]
        m.exit_threads(top, 0b1111, now=0)
        m.check_invariants()
        assert m.live_mask() == 0b11110000

    def test_unstructured_branch_without_reconv(self):
        m = StackModel(FULL, PERM)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 5, reconv_pc=None, now=0)
        top = m.hot_splits(0)[0]
        m.exit_threads(top, top.mask, now=0)
        top = m.hot_splits(0)[0]
        assert top.mask == 0b11110000


class TestFrontier:
    def test_min_pc_runs(self):
        m = FrontierModel(FULL, PERM)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 5, reconv_pc=None, now=0)
        assert m.hot_splits(0)[0].pc == 1  # fall-through has lower pc

    def test_equal_pc_merges(self):
        m = FrontierModel(FULL, PERM)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 2, reconv_pc=None, now=0)
        lagging = m.hot_splits(0)[0]
        assert lagging.pc == 1
        m.advance(lagging, 0)
        hot = m.hot_splits(0)
        assert len(list(m.all_splits())) == 1
        assert hot[0].mask == FULL
        assert m.merge_count == 1

    def test_pending_split_not_merged(self):
        m = FrontierModel(FULL, PERM)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 2, reconv_pc=None, now=0)
        target = next(s for s in m.splits if s.pc == 2)
        target.pending = True
        lagging = m.hot_splits(0)[0]
        m.advance(lagging, 0)
        assert len(m.splits) == 2  # merge deferred while pending

    def test_merged_split_marked_dead(self):
        m = FrontierModel(FULL, PERM)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 2, reconv_pc=None, now=0)
        lagging = m.hot_splits(0)[0]
        m.advance(lagging, 0)
        dead = [s for s in (split, lagging) if s.mask == 0]
        assert len(dead) == 1


class TestSBIHeap:
    def test_two_hot_contexts(self):
        m = SBIModel(FULL, PERM, insert_delay=0)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 5, reconv_pc=None, now=0)
        hot = m.hot_splits(0)
        assert len(hot) == 2
        assert hot[0].pc == 1 and hot[1].pc == 5  # CPC1 < CPC2

    def test_third_context_spills_to_cct(self):
        m = SBIModel(FULL, PERM, insert_delay=0)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 5, reconv_pc=None, now=0)
        cpc1 = m.hot_splits(0)[0]  # pc 1, mask 0b11110000
        m.branch(cpc1, 0b00110000, 3, reconv_pc=None, now=0)
        hot = m.hot_splits(0)
        assert len(hot) == 2
        assert [s.pc for s in hot] == [2, 3]  # minimum two contexts
        assert len(m.cold) == 1 and m.cold[0].pc == 5

    def test_cct_refills_hot(self):
        m = SBIModel(FULL, PERM, insert_delay=0)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 5, reconv_pc=None, now=0)
        cpc1 = m.hot_splits(0)[0]
        m.branch(cpc1, 0b00110000, 3, reconv_pc=None, now=0)
        # Exit the minimum split: the cold context must come back.
        cpc1 = m.hot_splits(0)[0]
        m.exit_threads(cpc1, cpc1.mask, now=0)
        hot = m.hot_splits(0)
        assert len(hot) == 2
        assert [s.pc for s in hot] == [3, 5]
        assert not m.cold

    def test_sideband_delay_gates_promotion(self):
        m = SBIModel(FULL, PERM, insert_delay=5)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 5, reconv_pc=None, now=0)
        cpc1 = m.hot_splits(0)[0]
        m.branch(cpc1, 0b00110000, 3, reconv_pc=None, now=0)
        spilled = m.cold[0]
        assert spilled.ready_at == 5
        cpc1 = m.hot_splits(0)[0]
        m.exit_threads(cpc1, cpc1.mask, now=0)
        assert len(m.hot_splits(0)) == 1  # not yet sorted in
        assert len(m.hot_splits(5)) == 2  # promoted once ready

    def test_sideband_promotion_bumps_version(self):
        """A cold context waking into the hot pair is a state change
        the version counter must report, even without a merge — the
        SM's fetch/stall/wake memos key on it."""
        m = SBIModel(FULL, PERM, insert_delay=5)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 5, reconv_pc=None, now=0)
        cpc1 = m.hot_splits(0)[0]
        m.branch(cpc1, 0b00110000, 3, reconv_pc=None, now=0)
        cpc1 = m.hot_splits(0)[0]
        m.exit_threads(cpc1, cpc1.mask, now=0)
        assert len(m.hot_splits(0)) == 1
        before = m.version
        assert len(m.hot_splits(5)) == 2  # promoted once ready
        assert m.version != before
        # A settle that changes nothing must not churn the counter.
        after = m.version
        m.hot_splits(6)
        assert m.version == after

    def test_equal_pc_hot_merge(self):
        m = SBIModel(FULL, PERM, insert_delay=0)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 2, reconv_pc=None, now=0)
        lagging = m.hot_splits(0)[0]
        m.advance(lagging, 0)
        hot = m.hot_splits(0)
        assert len(hot) == 1 and hot[0].mask == FULL
        assert m.merge_count == 1

    def test_cold_merges_through_settle(self):
        m = SBIModel(FULL, PERM, insert_delay=0)
        split = m.hot_splits(0)[0]
        # Two divergences targeting the same PC merge in the heap.
        m.branch(split, 0b1111, 5, reconv_pc=None, now=0)
        cpc1 = m.hot_splits(0)[0]  # pc 1, mask 0b11110000
        m.branch(cpc1, 0b00110000, 5, reconv_pc=None, now=0)
        pcs = sorted(s.pc for s in m.all_splits())
        masks = {s.pc: s.mask for s in m.all_splits()}
        assert pcs == [2, 5]
        assert masks[5] == 0b00111111
        assert m.merge_count == 1

    def test_unpark_rejoins_heap(self):
        m = SBIModel(FULL, PERM, insert_delay=0)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1111, 5, reconv_pc=None, now=0)
        cpc2 = m.hot_splits(0)[1]
        m.park(cpc2, now=0)
        assert len(m.hot_splits(0)) == 1
        m.unpark_all(now=1)
        assert len(m.hot_splits(1)) == 2
        m.check_invariants()

    def test_high_water_tracked(self):
        m = SBIModel(FULL, PERM, insert_delay=0, cct_capacity=1)
        split = m.hot_splits(0)[0]
        m.branch(split, 0b1, 10, reconv_pc=None, now=0)
        s = m.hot_splits(0)[0]
        m.branch(s, 0b10, 11, reconv_pc=None, now=0)
        s = m.hot_splits(0)[0]
        m.branch(s, 0b100, 12, reconv_pc=None, now=0)
        assert m.cct_high_water >= 1
