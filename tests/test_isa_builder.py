"""KernelBuilder DSL: registers, labels, emission, build pipeline."""

import pytest

from repro.isa.builder import Kernel, KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace, Op
from repro.isa.program import AssemblyError


class TestRegisters:
    def test_named_registers_stable(self):
        kb = KernelBuilder("k")
        a1 = kb.reg("a")
        a2 = kb.reg("a")
        b = kb.reg("b")
        assert a1 == a2 and a1 != b

    def test_regs_bulk(self):
        kb = KernelBuilder("k")
        a, b, c = kb.regs("a", "b", "c")
        assert len({a.value, b.value, c.value}) == 3

    def test_out_of_registers(self):
        kb = KernelBuilder("k", nregs=2)
        kb.regs("a", "b")
        with pytest.raises(AssemblyError, match="out of registers"):
            kb.reg("c")

    def test_used_registers(self):
        kb = KernelBuilder("k")
        kb.regs("a", "b")
        assert kb.used_registers == 2

    def test_destination_must_be_register(self):
        kb = KernelBuilder("k")
        with pytest.raises(AssemblyError):
            kb.mov(kb.tid, 1)

    def test_bad_source(self):
        kb = KernelBuilder("k")
        (a,) = kb.regs("a")
        with pytest.raises(AssemblyError):
            kb.add(a, a, "nope")


class TestLabels:
    def test_auto_labels_unique(self):
        kb = KernelBuilder("k")
        l1 = kb.label()
        kb.nop()
        l2 = kb.label()
        assert l1 != l2

    def test_duplicate_label_rejected(self):
        kb = KernelBuilder("k")
        kb.label("x")
        with pytest.raises(AssemblyError, match="duplicate"):
            kb.label("x")


class TestEmission:
    def test_setp_records_comparison(self):
        kb = KernelBuilder("k")
        a, b = kb.regs("a", "b")
        instr = kb.setp(a, CmpOp.GE, b, 3)
        assert instr.op is Op.SETP and instr.cmp is CmpOp.GE

    def test_predicated_emission(self):
        kb = KernelBuilder("k")
        a, p = kb.regs("a", "p")
        instr = kb.mov(a, 1, pred=p, pred_neg=True)
        assert instr.pred == p.value and instr.pred_neg

    def test_memory_operands(self):
        kb = KernelBuilder("k")
        a, i = kb.regs("a", "i")
        ld = kb.ld(a, kb.param(0), index=i, offset=8, space=MemSpace.SHARED)
        assert ld.offset == 8 and ld.space is MemSpace.SHARED
        st = kb.st(kb.param(0), a, index=i)
        assert st.dst is None and len(st.srcs) == 3

    def test_atom_add_optional_destination(self):
        kb = KernelBuilder("k")
        a, i = kb.regs("a", "i")
        with_dst = kb.atom_add(a, kb.param(0), 1.0, index=i)
        without = kb.atom_add(None, kb.param(0), 1.0, index=i)
        assert with_dst.dst == a.value and without.dst is None

    def test_branch_negation(self):
        kb = KernelBuilder("k")
        (p,) = kb.regs("p")
        kb.label("l")
        instr = kb.bra("l", cond=p, neg=True)
        assert instr.pred_neg and instr.srcs


class TestBuild:
    def test_build_produces_kernel(self):
        kb = KernelBuilder("k", nregs=4)
        kb.nop()
        kb.exit_()
        kernel = kb.build(cta_size=64, grid_size=2, params=(1.0, 2))
        assert isinstance(kernel, Kernel)
        assert kernel.total_threads == 128
        assert kernel.params == (1.0, 2.0)

    def test_build_runs_layout_pipeline(self):
        kb = KernelBuilder("k")
        p, v = kb.regs("p", "v")
        kb.and_(p, kb.tid, 1)
        kb.bra("e", cond=p)
        kb.mov(v, 1)
        kb.bra("j")
        kb.label("e")
        kb.mov(v, 2)
        kb.label("j")
        kb.exit_()
        kernel = kb.build(cta_size=32)
        branch = kernel.program[1]
        assert branch.reconv_pc is not None
        assert any(i.sync_pcdiv is not None for i in kernel.program)

    def test_with_params(self):
        kb = KernelBuilder("k")
        kb.exit_()
        kernel = kb.build(cta_size=32, params=(1.0,))
        other = kernel.with_params(9.0, 10.0)
        assert other.params == (9.0, 10.0)
        assert other.program is kernel.program

    def test_nregs_tracks_usage(self):
        kb = KernelBuilder("k", nregs=4)
        kb.regs("a", "b", "c")
        kb.exit_()
        assert kb.build(cta_size=32).nregs == 4
