"""Scheduler behaviour: pools, co-issue, SWI lookup, conflicts."""

import numpy as np
import pytest

from repro.analysis.pipeline_trace import trace_kernel
from repro.core import presets
from repro.core.simulator import simulate
from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp


def _balanced_ifelse(work=6):
    """Balanced divergent kernel: SBI's favourite shape."""
    kb = KernelBuilder("bal")
    t, p, v, a = kb.regs("t", "p", "v", "a")
    kb.mov(t, kb.tid)
    kb.mad(t, kb.ctaid, kb.ntid, t)
    kb.mov(v, 1.0)
    kb.and_(p, t, 1)
    kb.bra("odd", cond=p)
    for _ in range(work):
        kb.mad(v, v, 3, 1)
    kb.bra("join")
    kb.label("odd")
    for _ in range(work):
        kb.mad(v, v, 5, 2)
    kb.label("join")
    kb.mul(a, t, 4)
    kb.st(kb.param(0), v, index=a)
    kb.exit_()
    return kb


def _imbalanced(work=8):
    """Unbalanced per-thread trip counts: SWI's favourite shape."""
    kb = KernelBuilder("imb")
    t, p, v, c, a = kb.regs("t", "p", "v", "c", "a")
    kb.mov(t, kb.tid)
    kb.mad(t, kb.ctaid, kb.ntid, t)
    kb.and_(c, t, work - 1)
    kb.mov(v, 0.0)
    kb.label("loop")
    kb.mad(v, v, 3, 1)
    kb.sub(c, c, 1)
    kb.setp(p, CmpOp.GE, c, 0)
    kb.bra("loop", cond=p)
    kb.mul(a, t, 4)
    kb.st(kb.param(0), v, index=a)
    kb.exit_()
    return kb


def _run(kb, config, threads=1024):
    mem = MemoryImage()
    out = mem.alloc(threads * 4)
    kernel = kb.build(cta_size=256, grid_size=threads // 256, params=(out,))
    return simulate(kernel, mem, config)


class TestBaselinePools:
    def test_both_pools_issue(self):
        mem = MemoryImage()
        out = mem.alloc(1024 * 4)
        kernel = _balanced_ifelse().build(cta_size=256, grid_size=4, params=(out,))
        from repro.core.sm import StreamingMultiprocessor

        sm = StreamingMultiprocessor(kernel, mem, presets.baseline())
        sm.trace = []
        sm.run()
        wids = {e[1] for e in sm.trace}
        assert any(w % 2 == 0 for w in wids) and any(w % 2 == 1 for w in wids)

    def test_one_issue_per_pool_per_cycle(self):
        mem = MemoryImage()
        out = mem.alloc(1024 * 4)
        kernel = _balanced_ifelse().build(cta_size=256, grid_size=4, params=(out,))
        from repro.core.sm import StreamingMultiprocessor

        sm = StreamingMultiprocessor(kernel, mem, presets.baseline())
        sm.trace = []
        sm.run()
        per_cycle = {}
        for cycle, wid, _, _, _, _ in sm.trace:
            per_cycle.setdefault(cycle, []).append(wid % 2)
        for cycle, pools in per_cycle.items():
            assert len(pools) <= 2
            assert len([p for p in pools if p == 0]) <= 1
            assert len([p for p in pools if p == 1]) <= 1


class TestSBI:
    def test_co_issues_balanced_branches(self):
        stats = _run(_balanced_ifelse(), presets.sbi())
        assert stats.issued_sbi_secondary > 0

    def test_sbi_beats_warp64_on_balanced(self):
        sbi = _run(_balanced_ifelse(10), presets.sbi())
        w64 = _run(_balanced_ifelse(10), presets.warp64())
        assert sbi.ipc > w64.ipc * 1.1

    def test_co_issued_masks_disjoint(self):
        mem = MemoryImage()
        out = mem.alloc(1024 * 4)
        kernel = _balanced_ifelse().build(cta_size=256, grid_size=4, params=(out,))
        from repro.core.sm import StreamingMultiprocessor

        sm = StreamingMultiprocessor(kernel, mem, presets.sbi())
        sm.trace = []
        sm.run()
        by_cycle = {}
        for cycle, wid, pc, origin, mask, group in sm.trace:
            by_cycle.setdefault(cycle, []).append((wid, mask, origin))
        for cycle, issues in by_cycle.items():
            if len(issues) == 2:
                (w1, m1, o1), (w2, m2, o2) = issues
                assert w1 == w2  # SBI co-issues within one warp
                assert (m1 & m2) == 0

    def test_one_divergence_per_cycle(self):
        # Secondary branches are not co-issued after a diverging primary
        # branch; the structural restriction keeps the HCT sorter at one
        # new context per cycle (checked indirectly: runs complete).
        stats = _run(_imbalanced(), presets.sbi())
        assert stats.divergent_branches > 0


class TestSWI:
    def test_fills_lanes_from_other_warps(self):
        stats = _run(_imbalanced(), presets.swi())
        assert stats.issued_swi_secondary > 0
        assert stats.swi_hits > 0

    def test_conflicts_detected_and_survived(self):
        stats = _run(_imbalanced(), presets.swi())
        assert stats.scheduler_conflicts >= 0  # mechanism exercised
        assert stats.cycles > 0

    def test_direct_mapped_not_faster_than_full(self):
        full = _run(_imbalanced(), presets.swi())
        direct = _run(_imbalanced(), presets.swi(ways=1))
        assert direct.swi_hits <= full.swi_hits

    def test_swi_beats_warp64_on_imbalance(self):
        swi = _run(_imbalanced(), presets.swi())
        w64 = _run(_imbalanced(), presets.warp64())
        assert swi.ipc > w64.ipc

    def test_lane_shuffle_changes_schedule_not_results(self):
        results = []
        for policy in ("identity", "xor_rev"):
            mem = MemoryImage()
            out = mem.alloc(1024 * 4)
            kernel = _imbalanced().build(cta_size=256, grid_size=4, params=(out,))
            simulate(kernel, mem, presets.swi(lane_shuffle=policy))
            results.append(mem.read_array(out, 1024))
        np.testing.assert_array_equal(results[0], results[1])


class TestCombined:
    def test_uses_both_secondary_kinds(self):
        stats = _run(_balanced_ifelse(), presets.sbi_swi())
        assert stats.issued_sbi_secondary + stats.issued_swi_secondary > 0

    def test_combined_at_least_matches_baseline(self):
        base = _run(_balanced_ifelse(10), presets.baseline())
        combo = _run(_balanced_ifelse(10), presets.sbi_swi())
        assert combo.ipc > base.ipc

    def test_peak_ipc_bound(self):
        for cfg, bound in (
            (presets.baseline(), 64.0),
            (presets.warp64(), 64.0),
            (presets.sbi_swi(), 104.0),
        ):
            stats = _run(_balanced_ifelse(2), cfg)
            assert stats.ipc <= bound + 1e-9
