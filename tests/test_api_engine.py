"""Engine execution: backends, caching, error policies."""

import os

import pytest

from repro.api import (
    CacheSerializationError,
    Engine,
    Progress,
    ResultSet,
    SweepSpec,
)
from repro.api import cache as result_cache
from repro.core import presets
from repro.timing.stats import Stats

SMALL = SweepSpec.from_presets(
    ["baseline", "warp64"], workloads=["histogram", "sortingnetworks"], size="tiny"
)


@pytest.fixture(autouse=True)
def fresh_memo():
    """Engine behaviour must not depend on earlier tests' cache state."""
    result_cache.clear()
    yield
    result_cache.clear()


class TestRunCell:
    def test_memoised(self):
        engine = Engine()
        a = engine.run_cell("histogram", "tiny", presets.baseline())
        b = engine.run_cell("histogram", "tiny", presets.baseline())
        assert a is b

    def test_smoke_alias_shares_cache_with_tiny(self):
        engine = Engine()
        a = engine.run_cell("histogram", "tiny", presets.baseline())
        b = engine.run_cell("histogram", "smoke", presets.baseline())
        assert a is b

    def test_cache_false(self):
        engine = Engine()
        a = engine.run_cell("histogram", "tiny", presets.baseline(), cache=False)
        b = engine.run_cell("histogram", "tiny", presets.baseline(), cache=False)
        assert a is not b and a.cycles == b.cycles

    def test_verify_simulates_and_checks(self):
        calls = []

        def factory(name, size):
            from repro.workloads import get_workload

            inst = get_workload(name, size)
            check = inst.numpy_check
            inst.numpy_check = lambda mem: (calls.append(name), check(mem))
            return inst

        engine = Engine(workload_factory=factory)
        engine.run_cell("histogram", "tiny", presets.baseline())
        engine.run_cell("histogram", "tiny", presets.baseline(), verify=True)
        assert calls == ["histogram"]


class TestRun:
    def test_result_shape(self):
        rs = Engine().run(SMALL)
        assert len(rs) == 4
        assert rs.workloads == ["histogram", "sortingnetworks"]
        assert rs.configs == ["baseline", "warp64"]
        assert not rs.errors

    def test_aliased_configs_simulate_once(self):
        events = []
        spec = SweepSpec(
            workloads=["histogram"],
            configs={"a": presets.baseline(), "b": presets.baseline()},
            sizes="tiny",
        )
        rs = Engine(progress=events.append).run(spec)
        assert len(events) == 1  # one unique cell
        assert len(rs) == 2      # both names reported
        assert rs.get("histogram", "a") is rs.get("histogram", "b")

    def test_progress_events(self):
        events = []
        Engine(progress=events.append).run(SMALL)
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert all(e.total == 4 and not e.cached for e in events)
        assert isinstance(events[0], Progress)
        again = []
        Engine(progress=again.append).run(SMALL)
        assert all(e.cached for e in again)


class TestBackendParity:
    def test_inline_and_process_identical(self, tmp_path):
        inline = Engine(cache_dir=str(tmp_path / "a")).run(SMALL)
        result_cache.clear()
        fanned = Engine(jobs=2, cache_dir=str(tmp_path / "b")).run(SMALL)
        assert inline == fanned
        assert inline.ipc_table() == fanned.ipc_table()

    def test_verify_runs_through_process_backend(self, tmp_path):
        """verify=True must not silently fall back to serial inline."""
        rs = Engine(jobs=2, cache_dir=str(tmp_path)).run(SMALL, verify=True)
        result_cache.clear()
        assert rs == Engine().run(SMALL)

    def test_process_folds_into_memo_and_disk(self, tmp_path):
        cache_dir = str(tmp_path)
        Engine(jobs=2, cache_dir=cache_dir).run(SMALL)
        assert len(os.listdir(cache_dir)) == 4
        key = result_cache.cell_key("histogram", "tiny", presets.baseline())
        assert key in result_cache.MEMO
        # A fresh engine run is now pure cache hits.
        events = []
        Engine(jobs=2, cache_dir=cache_dir, progress=events.append).run(SMALL)
        assert all(e.cached for e in events)


class TestWorkerPlugins:
    def test_worker_init_imports_plugins(self, tmp_path, monkeypatch):
        """Process-pool workers must import plugin modules themselves
        (spawn/forkserver workers do not inherit parent imports)."""
        import sys

        from repro.api.engine import _worker_init

        plugin = tmp_path / "engine_test_plugin.py"
        sentinel = tmp_path / "imported.txt"
        plugin.write_text(
            "open(%r, 'a').write('yes')\n" % str(sentinel)
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        _worker_init(("engine_test_plugin",))
        assert sentinel.read_text() == "yes"
        sys.modules.pop("engine_test_plugin", None)

    def test_engine_threads_plugins_to_pool(self, tmp_path, monkeypatch):
        import sys

        plugin = tmp_path / "engine_pool_plugin.py"
        marker = tmp_path / "pids.txt"
        plugin.write_text(
            "import os\nopen(%r, 'a').write('%%d\\n' %% os.getpid())\n"
            % str(marker)
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        engine = Engine(jobs=2, plugins=["engine_pool_plugin"])
        engine.run(SMALL)
        pids = {int(line) for line in marker.read_text().split()}
        assert pids and os.getpid() not in pids  # imported in workers
        sys.modules.pop("engine_pool_plugin", None)


class TestErrorPolicies:
    def _failing_engine(self, errors):
        def factory(name, size):
            from repro.workloads import get_workload

            if name == "histogram":
                raise RuntimeError("injected failure")
            return get_workload(name, size)

        return Engine(workload_factory=factory, errors=errors)

    def test_fail_fast_raises(self):
        with pytest.raises(RuntimeError, match="injected"):
            self._failing_engine("raise").run(SMALL)

    def test_collect_keeps_going(self):
        rs = self._failing_engine("collect").run(SMALL)
        assert len(rs) == 2  # sortingnetworks cells survive
        assert len(rs.errors) == 2  # histogram x 2 configs
        assert {e.workload for e in rs.errors} == {"histogram"}
        assert "injected failure" in rs.errors[0].error

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            Engine(errors="ignore")
        with pytest.raises(ValueError):
            Engine().run(SMALL, errors="ignore")

    def _doomed_spec(self):
        """max_cycles=8 makes the simulator itself fail in workers."""
        return SweepSpec(
            workloads=["histogram", "sortingnetworks"],
            configs={
                "ok": presets.baseline(),
                "doomed": presets.baseline(max_cycles=8),
            },
            sizes="tiny",
        )

    def test_process_backend_fail_fast_raises(self):
        with pytest.raises(Exception, match="cycle|simulation|exceeded|limit"):
            Engine(jobs=2).run(self._doomed_spec())

    def test_process_backend_collects_errors(self):
        rs = Engine(jobs=2).run(self._doomed_spec(), errors="collect")
        assert len(rs) == 2
        assert {e.config for e in rs.errors} == {"doomed"}
        assert len(rs.errors) == 2


class TestStrictDiskSerialization:
    def test_unserializable_stats_raise_clearly(self, tmp_path):
        bad = Stats(cycles=10, thread_instructions=10)
        bad.per_op_class["weird"] = object()  # json cannot encode this
        engine = Engine(
            cache_dir=str(tmp_path),
            simulate_fn=lambda kernel, memory, config: bad,
        )
        with pytest.raises(CacheSerializationError, match="histogram"):
            engine.run_cell("histogram", "tiny", presets.baseline())
        assert os.listdir(str(tmp_path)) == []  # nothing half-written


class TestCacheMaintenance:
    def test_info_and_clear(self, tmp_path):
        cache_dir = str(tmp_path)
        Engine(cache_dir=cache_dir).run(SMALL)
        # A foreign file must survive cache maintenance.
        foreign = os.path.join(cache_dir, "notes.txt")
        with open(foreign, "w") as f:
            f.write("keep me")
        info = result_cache.info(disk_dir=cache_dir)
        assert info.memo_entries == 4
        assert info.disk_entries == 4
        assert info.disk_bytes > 0
        assert "4 entries" in info.describe()
        removed = result_cache.clear(disk_dir=cache_dir)
        assert removed == 4
        assert result_cache.info(disk_dir=cache_dir).disk_entries == 0
        assert result_cache.info(disk_dir=cache_dir).memo_entries == 0
        assert os.path.exists(foreign)

    def test_clear_without_dir_leaves_disk(self, tmp_path):
        cache_dir = str(tmp_path)
        Engine(cache_dir=cache_dir).run(SMALL)
        result_cache.clear()
        assert result_cache.info(disk_dir=cache_dir).disk_entries == 4

    def test_corrupt_entry_falls_back_to_simulation(self, tmp_path):
        cache_dir = str(tmp_path)
        engine = Engine(cache_dir=cache_dir)
        engine.run_cell("histogram", "tiny", presets.baseline())
        (entry,) = os.listdir(cache_dir)
        with open(os.path.join(cache_dir, entry), "w") as f:
            f.write("{not json")
        result_cache.clear()
        stats = Engine(cache_dir=cache_dir).run_cell(
            "histogram", "tiny", presets.baseline()
        )
        assert stats.cycles > 0

    def test_env_var_names_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(result_cache.CACHE_DIR_ENV, str(tmp_path))
        Engine().run_cell("histogram", "tiny", presets.baseline())
        assert os.listdir(str(tmp_path))


class TestFigure7Equivalence:
    """Acceptance: the full smoke grid runs through Engine and its
    content survives a JSON round trip."""

    def test_full_grid_smoke(self):
        rs = Engine().run(SweepSpec.figure7(size="smoke"))
        assert len(rs) == 105
        assert ResultSet.from_json(rs.to_json()).ipc_table() == rs.ipc_table()


class TestProgressAccounting:
    """Fully-cached runs still count 1..total, monotonically."""

    @pytest.mark.parametrize("jobs", [None, 2], ids=["inline", "process"])
    def test_fully_cached_run_reaches_total(self, tmp_path, jobs):
        cache_dir = str(tmp_path)
        Engine(jobs=jobs, cache_dir=cache_dir).run(SMALL)
        events = []
        Engine(jobs=jobs, cache_dir=cache_dir, progress=events.append).run(SMALL)
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert events[-1].done == events[-1].total == 4
        assert all(e.cached and e.error is None for e in events)
        # Local cache hits carry no provenance source.
        assert all(e.source is None for e in events)

    def test_mixed_run_is_monotone_and_complete(self, tmp_path):
        cache_dir = str(tmp_path)
        half = SweepSpec.from_presets(
            ["baseline"], workloads=["histogram", "sortingnetworks"], size="tiny"
        )
        Engine(cache_dir=cache_dir).run(half)
        events = []
        Engine(cache_dir=cache_dir, progress=events.append).run(SMALL)
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert sum(1 for e in events if e.cached) == 2
        assert sum(1 for e in events if not e.cached) == 2
