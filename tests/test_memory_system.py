"""L1 cache, DRAM channel and LSU coalescing/replay."""

import numpy as np
import pytest

from repro.functional.executor import ExecOutcome
from repro.functional.memory import MemoryAccessError, MemoryImage, SharedMemory
from repro.isa.instructions import Instruction, MemSpace, Op, imm, reg
from repro.timing.cache import L1Cache
from repro.timing.config import SMConfig
from repro.timing.dram import DRAMChannel
from repro.timing.lsu import LoadStoreUnit
from repro.timing.stats import Stats


class TestMemoryImage:
    def test_alloc_alignment(self):
        mem = MemoryImage(1 << 12)
        a = mem.alloc(100)
        b = mem.alloc(4)
        assert a % 128 == 0 and b % 128 == 0 and b > a

    def test_zero_address_reserved(self):
        mem = MemoryImage(1 << 12)
        assert mem.alloc(4) >= 128

    def test_out_of_memory(self):
        mem = MemoryImage(256)
        with pytest.raises(MemoryAccessError):
            mem.alloc(512)

    def test_misaligned_access(self):
        mem = MemoryImage(1 << 12)
        with pytest.raises(MemoryAccessError):
            mem.load(np.array([2]))

    def test_vector_bounds(self):
        mem = MemoryImage(256)
        with pytest.raises(MemoryAccessError):
            mem.load(np.array([1024]))

    def test_store_load_roundtrip(self):
        mem = MemoryImage(1 << 12)
        a = mem.alloc_array(np.arange(8))
        got = mem.load(np.arange(8) * 4 + a)
        assert np.array_equal(got, np.arange(8))

    def test_atomic_ops(self):
        mem = MemoryImage(1 << 12)
        a = mem.alloc_array(np.array([10.0]))
        old = mem.atomic(np.array([a, a]), np.array([1.0, 2.0]), "add")
        assert list(old) == [10.0, 11.0]
        assert mem.read_array(a, 1)[0] == 13.0
        mem.atomic(np.array([a]), np.array([5.0]), "min")
        assert mem.read_array(a, 1)[0] == 5.0
        mem.atomic(np.array([a]), np.array([9.0]), "max")
        assert mem.read_array(a, 1)[0] == 9.0

    def test_shared_starts_at_zero(self):
        sh = SharedMemory(64)
        assert sh.alloc(4) == 0


class TestL1Cache:
    def make(self):
        return L1Cache(size=4 * 2 * 128, ways=2, block=128, latency=3)

    def test_miss_then_hit(self):
        c = self.make()
        assert c.lookup(0) is None
        c.fill(0, ready_at=10)
        assert c.lookup(0) == 10
        assert c.misses == 1 and c.hits == 1

    def test_lru_eviction(self):
        c = self.make()  # 4 sets x 2 ways
        s = 4 * 128  # set stride
        c.fill(0, 0)
        c.fill(s, 0)  # same set, second way
        c.lookup(0)  # touch 0 so s is LRU
        c.fill(2 * s, 0)  # evicts s
        assert c.lookup(0) is not None
        assert c.lookup(s) is None

    def test_fill_idempotent_keeps_earliest(self):
        c = self.make()
        c.fill(0, 20)
        c.fill(0, 10)
        assert c.lookup(0) == 10

    def test_invalidate(self):
        c = self.make()
        c.fill(0, 0)
        c.invalidate_all()
        assert c.lookup(0) is None

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            L1Cache(size=1000, ways=3, block=128, latency=3)


class TestDRAM:
    def test_latency(self):
        d = DRAMChannel(bandwidth=16.0, latency=100)
        done = d.request(128, now=0)
        assert done == 100 + 128 // 16 + 1

    def test_bandwidth_serialisation(self):
        d = DRAMChannel(bandwidth=16.0, latency=100)
        first = d.request(128, now=0)
        second = d.request(128, now=0)
        assert second - first == 128 // 16

    def test_write_traffic_counted(self):
        d = DRAMChannel(bandwidth=10.0, latency=330)
        d.post_write(64, now=0)
        assert d.bytes_transferred == 64

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            DRAMChannel(0.0, 10)


def _lsu(config=None):
    config = config or SMConfig()
    stats = Stats()
    cache = L1Cache(config.l1_size, config.l1_ways, config.l1_block, config.l1_latency)
    dram = DRAMChannel(config.dram_bandwidth, config.dram_latency)
    return LoadStoreUnit(config, cache, dram, stats), stats


def _outcome(addrs, active=None, space=MemSpace.GLOBAL):
    addrs = np.asarray(addrs, dtype=np.int64)
    if active is None:
        active = np.ones(len(addrs), dtype=bool)
    return ExecOutcome(active=active, addresses=addrs, space=space)


LD = Instruction(Op.LD, dst=0, srcs=(imm(0),), space=MemSpace.GLOBAL)
ST = Instruction(Op.ST, srcs=(imm(0), reg(1)), space=MemSpace.GLOBAL)
LDS = Instruction(Op.LD, dst=0, srcs=(imm(0),), space=MemSpace.SHARED)
ATOM = Instruction(Op.ATOM_ADD, srcs=(imm(0), imm(1)), space=MemSpace.GLOBAL)


class TestCoalescing:
    def test_fully_coalesced_load(self):
        lsu, stats = _lsu()
        occ, wb = lsu.access(LD, _outcome(np.arange(32) * 4), now=0)
        assert occ == 1
        assert stats.global_transactions == 1

    def test_scattered_load_replays(self):
        lsu, stats = _lsu()
        occ, _ = lsu.access(LD, _outcome(np.arange(8) * 128), now=0)
        assert occ == 8
        assert stats.memory_replays == 7

    def test_same_word_broadcast(self):
        lsu, stats = _lsu()
        occ, _ = lsu.access(LD, _outcome(np.zeros(32)), now=0)
        assert occ == 1

    def test_hit_faster_than_miss(self):
        lsu, _ = _lsu()
        _, wb_miss = lsu.access(LD, _outcome(np.arange(32) * 4), now=0)
        _, wb_hit = lsu.access(LD, _outcome(np.arange(32) * 4), now=wb_miss)
        assert wb_hit - wb_miss < wb_miss

    def test_mshr_merges_inflight_fills(self):
        lsu, stats = _lsu()
        lsu.access(LD, _outcome(np.arange(32) * 4), now=0)
        dram_before = stats.dram_bytes
        lsu.access(LD, _outcome(np.arange(32) * 4), now=1)
        assert stats.dram_bytes == dram_before  # merged, no second fill

    def test_inactive_lanes_free(self):
        lsu, stats = _lsu()
        active = np.zeros(4, dtype=bool)
        occ, _ = lsu.access(LD, _outcome([0, 128, 256, 384], active), now=0)
        assert occ == 1 and stats.global_transactions == 0

    def test_store_charges_segments(self):
        lsu, stats = _lsu()
        occ, _ = lsu.access(ST, _outcome(np.arange(8) * 4), now=0)
        assert occ == 1
        assert stats.dram_bytes == 32  # one 32B segment

    def test_shared_bank_conflicts(self):
        lsu, stats = _lsu()
        # 32 threads hitting bank 0 with distinct words: full conflict.
        occ, _ = lsu.access(LDS, _outcome(np.arange(32) * 128, space=MemSpace.SHARED), 0)
        assert occ == 32

    def test_shared_broadcast_no_conflict(self):
        lsu, _ = _lsu()
        occ, _ = lsu.access(LDS, _outcome(np.zeros(32), space=MemSpace.SHARED), 0)
        assert occ == 1

    def test_atomic_serialises_per_thread(self):
        lsu, _ = _lsu()
        occ, _ = lsu.access(ATOM, _outcome(np.zeros(16)), now=0)
        assert occ == 16
