"""CFG construction and dominance analyses on crafted graphs."""

import pytest

from repro.isa.builder import KernelBuilder
from repro.isa.cfg import ControlFlowGraph
from repro.isa.instructions import CmpOp


def _if_else_builder():
    kb = KernelBuilder("ifelse")
    p, v = kb.regs("p", "v")
    kb.and_(p, kb.tid, 1)          # 0
    kb.bra("else_", cond=p)        # 1
    kb.mov(v, 1)                   # 2
    kb.bra("join")                 # 3
    kb.label("else_")
    kb.mov(v, 2)                   # 4
    kb.label("join")
    kb.mov(v, 3)                   # 5
    kb.exit_()                     # 6
    return kb


def _cfg(kb):
    from repro.isa.program import Program

    return ControlFlowGraph(Program(list(kb._instrs), dict(kb._labels)))


class TestBlocks:
    def test_if_else_block_structure(self):
        cfg = _cfg(_if_else_builder())
        # entry, if-path, else-path, join
        assert len(cfg.blocks) == 4
        entry = cfg.blocks[0]
        assert entry.start == 0 and len(entry.successors) == 2

    def test_block_of_pc_covers_program(self):
        cfg = _cfg(_if_else_builder())
        for pc in range(len(cfg.program)):
            block = cfg.blocks[cfg.block_of_pc[pc]]
            assert block.start <= pc < block.end

    def test_predecessors_are_inverse_of_successors(self):
        cfg = _cfg(_if_else_builder())
        for block in cfg.blocks:
            for s in block.successors:
                assert block.index in cfg.blocks[s].predecessors


class TestDominance:
    def test_if_else_reconvergence(self):
        cfg = _cfg(_if_else_builder())
        # The divergent branch at pc 1 reconverges at the join (pc 5).
        assert cfg.reconvergence_pc(1) == 5

    def test_join_blocks_and_pcdiv(self):
        cfg = _cfg(_if_else_builder())
        joins = cfg.join_blocks()
        assert len(joins) == 1
        join = joins[0]
        assert cfg.blocks[join].start == 5
        # PCdiv = last instruction of the immediate dominator (entry).
        assert cfg.divergence_pc_for_join(join) == 1

    def test_entry_dominates_everything(self):
        cfg = _cfg(_if_else_builder())
        for block in cfg.blocks:
            assert cfg.dominates(0, block.index)

    def test_branch_paths_do_not_dominate_join(self):
        cfg = _cfg(_if_else_builder())
        join = cfg.join_blocks()[0]
        assert not cfg.dominates(1, join)
        assert not cfg.dominates(2, join)

    def test_loop_back_edge(self):
        kb = KernelBuilder("loop")
        c, p = kb.regs("c", "p")
        kb.mov(c, 3)               # 0
        kb.label("head")
        kb.sub(c, c, 1)            # 1
        kb.setp(p, CmpOp.GT, c, 0) # 2
        kb.bra("head", cond=p)     # 3
        kb.exit_()                 # 4
        cfg = _cfg(kb)
        edges = cfg.back_edges()
        assert len(edges) == 1
        src, dst = edges[0]
        assert cfg.blocks[dst].start == 1

    def test_loop_exit_reconvergence(self):
        kb = KernelBuilder("loop")
        c, p = kb.regs("c", "p")
        kb.mov(c, 3)
        kb.label("head")
        kb.sub(c, c, 1)
        kb.setp(p, CmpOp.GT, c, 0)
        kb.bra("head", cond=p)     # pc 3: divergent loop branch
        kb.mov(c, 0)               # pc 4: loop exit
        kb.exit_()
        cfg = _cfg(kb)
        assert cfg.reconvergence_pc(3) == 4

    def test_unstructured_no_reconvergence_before_exit(self):
        kb = KernelBuilder("unstructured")
        p, v = kb.regs("p", "v")
        kb.and_(p, kb.tid, 1)      # 0
        kb.bra("other", cond=p)    # 1
        kb.mov(v, 1)               # 2
        kb.exit_()                 # 3
        kb.label("other")
        kb.mov(v, 2)               # 4
        kb.exit_()                 # 5
        cfg = _cfg(kb)
        assert cfg.reconvergence_pc(1) is None

    def test_nested_if_pcdiv_is_conservative(self):
        # Nested if-then-else (the paper's Figure 4 shape): the outer
        # join's PCdiv is the outer divergence point.
        kb = KernelBuilder("nested")
        p, q, v = kb.regs("p", "q", "v")
        kb.and_(p, kb.tid, 1)
        kb.bra("outer_else", cond=p)      # outer divergence
        kb.and_(q, kb.tid, 2)
        kb.bra("inner_else", cond=q)      # inner divergence
        kb.mov(v, 1)
        kb.bra("inner_join")
        kb.label("inner_else")
        kb.mov(v, 2)
        kb.label("inner_join")
        kb.mov(v, 3)
        kb.bra("outer_join")
        kb.label("outer_else")
        kb.mov(v, 4)
        kb.label("outer_join")
        kb.mov(v, 5)
        kb.exit_()
        cfg = _cfg(kb)
        outer_branch = 1
        inner_branch = 3
        inner_join_pc = cfg.reconvergence_pc(inner_branch)
        outer_join_pc = cfg.reconvergence_pc(outer_branch)
        assert inner_join_pc < outer_join_pc
        inner_block = cfg.block_of_pc[inner_join_pc]
        outer_block = cfg.block_of_pc[outer_join_pc]
        assert cfg.divergence_pc_for_join(inner_block) == inner_branch
        assert cfg.divergence_pc_for_join(outer_block) == outer_branch
