"""Sweep service: protocol, shared store, daemon, remote backend."""

import json
import os
import queue
import socket
import threading
import time

import pytest

from repro.api import Engine, SweepSpec
from repro.api import cache as result_cache
from repro.api.cache import (
    atomic_write_text,
    cell_hash,
    config_from_payload,
    config_to_payload,
)
from repro.api.engine import BACKENDS
from repro.core import presets
from repro.service import protocol
from repro.service.daemon import COUNTERS, SweepService, make_server
from repro.service.protocol import ProtocolError
from repro.service.remote import RemoteClient, RemoteError, _follow_job
from repro.service.store import ResultStore, is_cell_digest, resolve_store_dir
from repro.timing.config import GPUConfig
from repro.timing.stats import Stats

TINY = SweepSpec.from_presets(
    ["baseline", "warp64"], workloads=["histogram"], size="tiny"
)

#: (workload, size, config_name, config) rows for submit_message.
CELL_A = ("histogram", "tiny", "baseline", presets.baseline())
CELL_B = ("histogram", "tiny", "warp64", presets.warp64())


@pytest.fixture(autouse=True)
def fresh_memo():
    result_cache.clear()
    yield
    result_cache.clear()


class _StubEngine:
    """Counts run_cell calls; optionally fails every cell."""

    def __init__(self, fail=False):
        self.calls = 0
        self.fail = fail

    def run_cell(self, workload, size, config, verify=False, cache=True):
        self.calls += 1
        if self.fail:
            raise RuntimeError("boom")
        return Stats(cycles=7, thread_instructions=3, instructions_issued=2)


def _service(tmp_path, **kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("engine", _StubEngine())
    return SweepService(ResultStore(str(tmp_path / "store")), **kwargs)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_envelope_encode_decode_round_trip(self):
        message = protocol.envelope(protocol.MSG_STATUS, job="j1", done=2)
        line = protocol.encode(message)
        assert line.endswith(b"\n")
        assert protocol.decode(line) == message

    def test_envelope_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="message type"):
            protocol.envelope("definitely-not-a-type")

    @pytest.mark.parametrize(
        "line,code",
        [
            (b"\xff\xfe", protocol.ERR_BAD_REQUEST),
            (b"not json\n", protocol.ERR_BAD_REQUEST),
            (b"[1, 2]\n", protocol.ERR_BAD_REQUEST),
            (b'{"v": 999, "type": "status"}\n', protocol.ERR_VERSION),
            (b'{"v": 1, "type": "nope"}\n', protocol.ERR_BAD_REQUEST),
        ],
    )
    def test_decode_rejections_are_typed(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode(line)
        assert excinfo.value.code == code

    def test_protocol_error_rejects_unknown_code(self):
        with pytest.raises(ValueError, match="error code"):
            ProtocolError("no_such_code", "x")

    def test_protocol_error_envelope_carries_retry_after(self):
        err = ProtocolError(protocol.ERR_QUEUE_FULL, "busy", retry_after=2.5)
        body = err.to_envelope()
        assert body["type"] == protocol.MSG_ERROR
        assert body["code"] == protocol.ERR_QUEUE_FULL
        assert body["retry_after"] == 2.5

    def test_submit_round_trip(self):
        message = protocol.submit_message([CELL_A, CELL_B], verify=True)
        # The wire form survives serialization.
        message = protocol.decode(protocol.encode(message))
        cells, verify = protocol.decode_submit(message)
        assert verify is True
        assert [c.config_name for c in cells] == ["baseline", "warp64"]
        assert cells[0].hash == cell_hash(*CELL_A[:2], CELL_A[3])
        assert cells[0].config == CELL_A[3]

    def test_submit_hash_mismatch_is_loud(self):
        message = protocol.submit_message([CELL_A])
        message["cells"][0]["hash"] = "0" * 64
        with pytest.raises(ProtocolError, match="content address mismatch"):
            protocol.decode_submit(message)

    def test_submit_without_cells_rejected(self):
        with pytest.raises(ProtocolError, match="no cells"):
            protocol.decode_submit(protocol.envelope(protocol.MSG_SUBMIT))

    def test_vocabulary_is_closed_and_disjointly_spelled(self):
        # The lint rule keys on spelling; a new constant colliding with
        # an existing one would make violations ambiguous.
        groups = (
            protocol.MESSAGE_TYPES,
            protocol.ERROR_CODES,
            protocol.CELL_SOURCES,
            protocol.CELL_STATUSES,
            protocol.JOB_STATES,
        )
        total = sum(len(g) for g in groups)
        assert len(protocol.VOCABULARY) == total


class TestConfigPayloads:
    def test_sm_config_round_trip(self):
        config = presets.sbi_swi()
        assert config_from_payload(config_to_payload(config)) == config

    def test_gpu_config_round_trip(self):
        config = GPUConfig(sm=presets.baseline())
        assert config_from_payload(config_to_payload(config)) == config

    def test_unknown_type_rejected(self):
        # The message names the accepted types.
        with pytest.raises(ValueError, match="SMConfig or GPUConfig"):
            config_from_payload({"type": "Mystery", "fields": {}})

    def test_bad_fields_rejected(self):
        with pytest.raises(ValueError):
            config_from_payload({"type": "SMConfig", "fields": {"bogus": 1}})


# ----------------------------------------------------------------------
# Atomic writes (disk cache + store)
# ----------------------------------------------------------------------


class TestAtomicWrites:
    def test_writes_content(self, tmp_path):
        target = str(tmp_path / "entry.json")
        atomic_write_text(target, "payload")
        with open(target) as f:
            assert f.read() == "payload"
        assert os.listdir(str(tmp_path)) == ["entry.json"]  # no tmp orphan

    def test_crashed_write_leaves_no_torn_file(self, tmp_path, monkeypatch):
        # Simulate a writer dying between the tmp write and the rename.
        target = str(tmp_path / "entry.json")
        atomic_write_text(target, "old")

        def crash(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, "new")
        monkeypatch.undo()
        with open(target) as f:
            assert f.read() == "old"  # reader sees the previous entry
        assert os.listdir(str(tmp_path)) == ["entry.json"]  # tmp cleaned up

    def test_interrupted_disk_store_reads_as_miss(self, tmp_path, monkeypatch):
        config = presets.baseline()
        stats = Stats(cycles=5, thread_instructions=5, instructions_issued=5)
        monkeypatch.setattr(
            os, "replace", lambda s, d: (_ for _ in ()).throw(OSError("crash"))
        )
        with pytest.raises(OSError):
            result_cache.disk_store(str(tmp_path), "histogram", "tiny", config, stats)
        monkeypatch.undo()
        assert result_cache.disk_load(str(tmp_path), "histogram", "tiny", config) is None
        assert [n for n in os.listdir(str(tmp_path)) if n.endswith(".json")] == []

    def test_concurrent_same_path_writers_never_tear(self, tmp_path):
        # The daemon's worker threads may store identical cells at once;
        # whatever lands last, readers must always see one whole JSON
        # document.
        target = str(tmp_path / "cell.json")
        payloads = [json.dumps({"writer": i, "pad": "x" * 4096}) for i in range(8)]
        errors = []

        def write(blob):
            try:
                for _ in range(20):
                    atomic_write_text(target, blob)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(p,)) for p in payloads]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        with open(target) as f:
            final = f.read()
        assert final in payloads  # complete, untorn document
        assert os.listdir(str(tmp_path)) == ["cell.json"]


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------


class TestResultStore:
    def test_round_trip_and_layout(self, tmp_path):
        store = ResultStore(str(tmp_path))
        stats = Stats(cycles=9, thread_instructions=4, instructions_issued=3)
        digest = store.store("histogram", "tiny", presets.baseline(), stats)
        assert digest == cell_hash("histogram", "tiny", presets.baseline())
        # Sharded by the first two hex digits of the content address.
        assert store.path_for(digest) == os.path.join(
            str(tmp_path), digest[:2], digest + ".json"
        )
        assert store.load("histogram", "tiny", presets.baseline()).to_dict() == stats.to_dict()
        assert list(store.digests()) == [digest]
        assert len(store) == 1
        info = store.info()
        assert info.entries == 1 and info.total_bytes > 0

    def test_store_entry_schema_matches_disk_cache(self, tmp_path):
        # Same schema as the flat disk cache: version/workload/size/
        # config payload/stats payload, so tooling reads both.
        store = ResultStore(str(tmp_path))
        stats = Stats(cycles=9, thread_instructions=4, instructions_issued=3)
        digest = store.store("histogram", "tiny", presets.baseline(), stats)
        entry = store.get_entry(digest)
        assert set(entry) == {"version", "workload", "size", "config", "stats"}
        assert entry["version"] == result_cache.CACHE_VERSION
        assert config_from_payload(entry["config"]) == presets.baseline()

    def test_torn_and_alien_entries_read_as_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        digest = cell_hash("histogram", "tiny", presets.baseline())
        path = store.path_for(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write('{"version":')  # torn mid-write
        assert store.get_entry(digest) is None
        with open(path, "w") as f:
            json.dump({"version": -1, "stats": {}}, f)  # alien cache version
        assert store.get_entry(digest) is None
        assert store.load_stats(digest) is None

    def test_path_for_rejects_non_digests(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for bad in ("", "abc", "../../etc/passwd", "G" * 64):
            with pytest.raises(ValueError, match="digest"):
                store.path_for(bad)

    def test_is_cell_digest(self):
        assert is_cell_digest("0" * 64)
        assert not is_cell_digest("0" * 63)
        assert not is_cell_digest("g" * 64)

    def test_resolve_store_dir_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert resolve_store_dir("explicit") == "explicit"
        assert resolve_store_dir(None) == ".repro_store"
        monkeypatch.setenv("REPRO_STORE_DIR", "/from/env")
        assert resolve_store_dir(None) == "/from/env"
        assert resolve_store_dir("explicit") == "explicit"


# ----------------------------------------------------------------------
# Daemon service (workers=0: deterministic triage + drain)
# ----------------------------------------------------------------------


class TestSweepService:
    def test_identical_submissions_cost_one_simulation(self, tmp_path):
        service = _service(tmp_path)
        # Two concurrent identical submissions (plus an in-message
        # duplicate): exactly one simulation, per the daemon counters.
        ack1 = service.submit(protocol.submit_message([CELL_A, CELL_A]))
        ack2 = service.submit(protocol.submit_message([CELL_A]))
        assert ack1["triage"] == {"store": 0, "coalesced": 1, "queued": 1}
        assert ack2["triage"] == {"store": 0, "coalesced": 1, "queued": 0}
        assert service.process_queued() == 1
        assert service._engine.calls == 1
        assert service.counters["cells_requested"] == 3
        assert service.counters["cells_simulated"] == 1
        assert service.counters["cells_coalesced"] == 2
        for job_id in (ack1["job"], ack2["job"]):
            job = service.get_job(job_id)
            assert job.finished.is_set()
            cells = job.result_message()["cells"]
            assert [c["status"] for c in cells] == [protocol.STATUS_OK] * len(cells)
        sources = [
            c["source"] for c in service.get_job(ack1["job"]).result_message()["cells"]
        ]
        assert sources == [protocol.SOURCE_SIMULATED, protocol.SOURCE_COALESCED]

    def test_store_hits_resolve_without_simulation(self, tmp_path):
        service = _service(tmp_path)
        service.store.store(
            CELL_A[0], CELL_A[1], CELL_A[3],
            Stats(cycles=7, thread_instructions=3, instructions_issued=2),
        )
        ack = service.submit(protocol.submit_message([CELL_A]))
        assert ack["triage"] == {"store": 1, "coalesced": 0, "queued": 0}
        job = service.get_job(ack["job"])
        assert job.finished.is_set()
        (cell,) = job.result_message()["cells"]
        assert cell["source"] == protocol.SOURCE_STORE
        assert cell["stats"]["data"]["cycles"] == 7
        assert service._engine.calls == 0

    def test_queue_full_back_pressure(self, tmp_path):
        service = _service(tmp_path, queue_limit=1, retry_after=2.5)
        with pytest.raises(ProtocolError) as excinfo:
            service.submit(protocol.submit_message([CELL_A, CELL_B]))
        assert excinfo.value.code == protocol.ERR_QUEUE_FULL
        assert excinfo.value.retry_after == 2.5
        # Nothing was enqueued: a retried submission starts clean.
        assert service.counters["jobs_submitted"] == 0
        assert service.process_queued() == 0
        ack = service.submit(protocol.submit_message([CELL_A]))
        assert ack["triage"]["queued"] == 1

    def test_cancel_skips_queued_work(self, tmp_path):
        service = _service(tmp_path)
        ack = service.submit(protocol.submit_message([CELL_A]))
        status = service.cancel(ack["job"])
        assert status["state"] == protocol.JOB_CANCELLED
        assert service.process_queued() == 1  # popped, but skipped
        assert service._engine.calls == 0
        assert service.counters["cells_skipped"] == 1
        (cell,) = service.get_job(ack["job"]).result_message()["cells"]
        assert cell["status"] == protocol.STATUS_CANCELLED

    def test_shared_cell_still_runs_for_live_job(self, tmp_path):
        service = _service(tmp_path)
        ack1 = service.submit(protocol.submit_message([CELL_A]))
        ack2 = service.submit(protocol.submit_message([CELL_A]))
        service.cancel(ack1["job"])
        service.process_queued()
        assert service._engine.calls == 1  # job 2 still wanted it
        (cell,) = service.get_job(ack2["job"]).result_message()["cells"]
        assert cell["status"] == protocol.STATUS_OK

    def test_failed_cell_reported_with_error(self, tmp_path):
        service = _service(tmp_path, engine=_StubEngine(fail=True))
        ack = service.submit(protocol.submit_message([CELL_A]))
        service.process_queued()
        assert service.counters["cells_failed"] == 1
        assert service.counters["cells_simulated"] == 0
        job = service.get_job(ack["job"])
        assert job.finished.is_set()
        (cell,) = job.result_message()["cells"]
        assert cell["status"] == protocol.STATUS_FAILED
        assert "boom" in cell["error"]
        assert len(service.store) == 0  # failures never pollute the store

    def test_verify_cells_never_coalesce_or_store_serve(self, tmp_path):
        service = _service(tmp_path)
        ack1 = service.submit(protocol.submit_message([CELL_A], verify=True))
        ack2 = service.submit(protocol.submit_message([CELL_A], verify=True))
        assert ack1["triage"]["queued"] == 1
        assert ack2["triage"]["queued"] == 1
        service.process_queued()
        assert service._engine.calls == 2

    def test_lookup_cell(self, tmp_path):
        service = _service(tmp_path)
        digest = cell_hash(CELL_A[0], CELL_A[1], CELL_A[3])
        for missing in (digest, "zzz"):
            with pytest.raises(ProtocolError) as excinfo:
                service.lookup_cell(missing)
            assert excinfo.value.code == protocol.ERR_UNKNOWN_CELL
        service.submit(protocol.submit_message([CELL_A]))
        service.process_queued()
        message = service.lookup_cell(digest)
        assert message["hash"] == digest
        assert message["workload"] == "histogram"
        assert message["stats"]["data"]["cycles"] == 7

    def test_unknown_job(self, tmp_path):
        with pytest.raises(ProtocolError) as excinfo:
            _service(tmp_path).get_job("j999999")
        assert excinfo.value.code == protocol.ERR_UNKNOWN_JOB

    def test_event_subscriptions_are_independent_and_replayed(self, tmp_path):
        # The lost-final-status race: one consumer popping the shared
        # event queue used to swallow events (terminal status included)
        # for every other stream.  Subscriptions are now independent,
        # and a late subscriber gets the full history back.
        service = _service(tmp_path)
        ack = service.submit(protocol.submit_message([CELL_A]))
        job = service.get_job(ack["job"])
        sub_a = job.subscribe()
        service.process_queued()
        # sub_a received everything but its client "disconnected"
        # without consuming; dropping it must not lose anything.
        job.unsubscribe(sub_a)
        sub_b = job.subscribe()  # attaches after the job finished
        events = []
        while True:
            events.append(sub_b.get_nowait())
            if events[-1]["type"] == protocol.MSG_STATUS:
                break
        assert events[0]["type"] == protocol.MSG_PROGRESS
        assert events[0]["cell"]["status"] == protocol.STATUS_OK
        assert events[-1]["state"] == protocol.JOB_DONE
        # The history is bounded by the job, not by consumers.
        with pytest.raises(queue.Empty):
            sub_b.get_nowait()

    def test_finish_within_heartbeat_of_disconnect_keeps_status(self, tmp_path):
        # A subscriber vanishing right before the job finishes (the
        # disconnect-within-a-heartbeat window) leaves the terminal
        # status intact for a stream that attaches afterwards.
        service = _service(tmp_path)
        ack = service.submit(protocol.submit_message([CELL_A]))
        job = service.get_job(ack["job"])
        doomed = job.subscribe()
        job.unsubscribe(doomed)
        service.process_queued()
        survivor = job.subscribe()
        seen = [survivor.get_nowait() for _ in range(2)]
        assert seen[-1]["type"] == protocol.MSG_STATUS
        assert seen[-1]["state"] == protocol.JOB_DONE

    def test_health_reports_the_closed_counter_set(self, tmp_path):
        message = _service(tmp_path).health()
        assert set(message["counters"]) == set(COUNTERS)
        assert message["queue_limit"] == 256
        assert message["store"]["entries"] == 0


# ----------------------------------------------------------------------
# Remote client (no server needed)
# ----------------------------------------------------------------------


class TestRemoteClient:
    def test_rejects_bad_server_and_retries(self):
        with pytest.raises(ValueError, match="http"):
            RemoteClient("localhost:1")
        with pytest.raises(ValueError, match="retries"):
            RemoteClient("http://x", retries=-1)

    def test_deterministic_backoff_on_dead_server(self):
        # Grab a port that nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        delays = []
        client = RemoteClient(
            "http://127.0.0.1:%d" % port,
            timeout=1.0,
            retries=2,
            backoff=0.25,
            sleep=delays.append,
        )
        with pytest.raises(RemoteError, match="after 3 attempts"):
            client.health()
        assert delays == [0.25, 0.5]  # backoff * 2**attempt, no jitter

    def test_reserve_publish_release_coalescing(self):
        client = RemoteClient("http://127.0.0.1:9")
        digest = "ab" * 32
        mine, rides = client.reserve([digest])
        assert mine == [digest] and rides == {}
        # A second sweep of the same cell rides instead of submitting.
        mine2, rides2 = client.reserve([digest])
        assert mine2 == [] and list(rides2) == [digest]
        assert not rides2[digest].ready.is_set()
        client.publish(mine, "j000001")
        assert rides2[digest].ready.is_set()
        assert rides2[digest].job_id == "j000001"
        client.release(mine)
        mine3, rides3 = client.reserve([digest])
        assert mine3 == [digest] and rides3 == {}

    def test_follow_job_falls_back_to_polling(self):
        result = protocol.envelope(
            protocol.MSG_RESULT,
            job="j000001",
            state=protocol.JOB_DONE,
            cells=[{"id": 0, "hash": "cd" * 32, "status": protocol.STATUS_OK}],
        )

        class _BrokenStream:
            def events(self, job_id):
                raise RemoteError("stream broke")

            def wait_result(self, job_id):
                return result

        collected = {}
        _follow_job(_BrokenStream(), "j000001", collected)
        assert list(collected) == ["cd" * 32]


class TestBackendRegistry:
    def test_error_message_lists_every_backend(self):
        with pytest.raises(ValueError) as excinfo:
            Engine(backend="bogus")
        for name in BACKENDS:
            assert name in str(excinfo.value)

    def test_every_backend_has_a_runner(self):
        for name in BACKENDS:
            assert callable(getattr(Engine, "_run_%s" % name))

    def test_remote_requires_server(self):
        with pytest.raises(ValueError, match="server"):
            Engine(backend="remote")

    def test_non_http_server_rejected_at_construction(self):
        with pytest.raises(ValueError, match="http"):
            Engine(server="ftp://fileserver/sweeps")

    def test_server_implies_remote_backend(self):
        engine = Engine(server="http://127.0.0.1:9")
        assert engine.backend == "remote"
        assert engine.remote_client.server == "http://127.0.0.1:9"


# ----------------------------------------------------------------------
# HTTP round trips (a real daemon on a loopback port)
# ----------------------------------------------------------------------


@pytest.fixture()
def live_server(tmp_path):
    server = make_server(
        store_dir=str(tmp_path / "store"), workers=2, heartbeat=0.1
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield server, "http://%s:%d" % (host, port)
    finally:
        server.shutdown()
        server.service.stop()
        server.server_close()


@pytest.fixture()
def queued_server(tmp_path):
    """A daemon whose queue is never drained (workers=0)."""
    server = make_server(
        store_dir=str(tmp_path / "store"),
        workers=0,
        queue_limit=1,
        retry_after=1.5,
        heartbeat=0.05,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield server, "http://%s:%d" % (host, port)
    finally:
        server.shutdown()
        server.service.stop()
        server.server_close()


class TestHTTPRoundTrip:
    def test_remote_matches_inline_and_warm_pass_is_free(self, live_server):
        server, url = live_server
        inline = Engine(backend="inline", cache_dir=None, memo={}).run(TINY)
        events = []
        remote = Engine(
            server=url, cache_dir=None, memo={}, progress=events.append
        ).run(TINY)
        assert remote.to_json() == inline.to_json()  # byte-identical
        assert all(not e.cached for e in events)
        assert [e.done for e in events] == [1, 2]  # monotone, complete
        assert all(e.source == protocol.SOURCE_SIMULATED for e in events)
        assert server.service.counters["cells_simulated"] == 2

        warm_events = []
        warm = Engine(
            server=url, cache_dir=None, memo={}, progress=warm_events.append
        ).run(TINY)
        assert warm.to_json() == inline.to_json()
        assert all(e.cached for e in warm_events)  # store-served
        assert [e.done for e in warm_events] == [1, 2]
        # Cached remote cells carry daemon provenance, matching the
        # daemon's own cells_store counter below.
        assert all(e.source == protocol.SOURCE_STORE for e in warm_events)
        assert server.service.counters["cells_simulated"] == 2  # unchanged
        assert server.service.counters["cells_store"] == 2

    def test_results_fold_into_local_caches(self, live_server, tmp_path):
        _, url = live_server
        cache_dir = str(tmp_path / "localcache")
        memo = {}
        Engine(server=url, cache_dir=cache_dir, memo=memo).run(TINY)
        assert len(memo) == 2
        # A later offline (inline) engine is warm from the disk level.
        events = []
        Engine(
            backend="inline", cache_dir=cache_dir, memo={}, progress=events.append
        ).run(TINY)
        assert all(e.cached for e in events)

    def test_queued_submissions_coalesce_across_http(self, queued_server):
        server, url = queued_server
        client = RemoteClient(url, retries=0)
        ack1 = client.submit([CELL_A])
        ack2 = client.submit([CELL_A])
        assert ack1["triage"]["queued"] == 1
        assert ack2["triage"]["coalesced"] == 1
        assert server.service.process_queued() == 1
        for ack in (ack1, ack2):
            message = client.result(str(ack["job"]))
            assert message["type"] == protocol.MSG_RESULT
            (cell,) = message["cells"]
            assert cell["status"] == protocol.STATUS_OK
        assert server.service.counters["cells_simulated"] == 1

    def test_rider_attributes_ridden_cells_as_coalesced(self, queued_server):
        # Two threads sweep the same cell through one Engine.  The
        # second thread rides the first thread's in-flight job, so its
        # cell must be accounted as cached/coalesced even though the
        # daemon tags the cell with the reserving job's "simulated"
        # provenance — a rider caused no simulation.
        server, url = queued_server
        spec = SweepSpec.from_presets(
            ["baseline"], workloads=["histogram"], size="tiny"
        )
        engine = Engine(server=url, cache_dir=None, memo={})
        first, second = [], []

        def sweep(events):
            engine.run(spec, progress=events.append)

        leader = threading.Thread(target=sweep, args=(first,))
        leader.start()
        deadline = time.monotonic() + 5.0
        while server.service.counters["jobs_submitted"] < 1:
            assert time.monotonic() < deadline, "leader never submitted"
            time.sleep(0.01)
        rider = threading.Thread(target=sweep, args=(second,))
        rider.start()
        time.sleep(0.15)  # rider is riding the leader's queued job
        assert server.service.process_queued() == 1
        leader.join(timeout=5.0)
        rider.join(timeout=5.0)
        assert not leader.is_alive() and not rider.is_alive()

        (lead_event,) = first
        assert not lead_event.cached
        assert lead_event.source == protocol.SOURCE_SIMULATED
        (ride_event,) = second
        assert ride_event.cached
        assert ride_event.source == protocol.SOURCE_COALESCED
        assert server.service.counters["cells_simulated"] == 1

    def test_429_retry_after_honoured_by_client(self, queued_server):
        _, url = queued_server
        delays = []
        client = RemoteClient(
            url, retries=1, backoff=0.01, sleep=delays.append
        )
        with pytest.raises(RemoteError, match="busy"):
            client.submit([CELL_A, CELL_B])  # 2 distinct > queue_limit=1
        assert delays == [1.5]  # the daemon's Retry-After, not backoff

    def test_typed_errors_do_not_retry(self, queued_server):
        _, url = queued_server
        delays = []
        client = RemoteClient(url, retries=3, sleep=delays.append)
        with pytest.raises(RemoteError) as excinfo:
            client.status("j999999")
        assert excinfo.value.code == protocol.ERR_UNKNOWN_JOB
        with pytest.raises(RemoteError) as excinfo:
            client.cell("0" * 64)
        assert excinfo.value.code == protocol.ERR_UNKNOWN_CELL
        with pytest.raises(RemoteError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST
        assert delays == []  # 4xx re-runs would fail identically

    def test_events_stream_heartbeats_then_terminal(self, queued_server):
        _, url = queued_server
        client = RemoteClient(url, retries=0)
        ack = client.submit([CELL_A])
        job_id = str(ack["job"])
        stream = client.events(job_id)
        first = next(stream)  # heartbeat: nothing is processing
        assert first["type"] == protocol.MSG_STATUS
        assert first["state"] == protocol.JOB_QUEUED
        client.cancel(job_id)
        seen = [first] + list(stream)
        assert seen[-1]["type"] == protocol.MSG_STATUS
        assert seen[-1]["state"] == protocol.JOB_CANCELLED
        assert any(
            e["type"] == protocol.MSG_PROGRESS
            and e["cell"]["status"] == protocol.STATUS_CANCELLED
            for e in seen
        )

    def test_concurrent_streams_both_see_every_event(self, queued_server):
        # Two live streams of one job: with the old shared queue each
        # event went to exactly one of them, so at least one stream
        # lost the per-cell progress line or the terminal status.
        server, url = queued_server
        client = RemoteClient(url, retries=0)
        ack = client.submit([CELL_A])
        job_id = str(ack["job"])
        streams = {}

        def consume(tag):
            streams[tag] = list(client.events(job_id))

        threads = [
            threading.Thread(target=consume, args=(tag,)) for tag in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.15)  # both streams attached and heartbeating
        server.service.process_queued()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not any(thread.is_alive() for thread in threads)
        for tag in ("a", "b"):
            assert streams[tag][-1]["type"] == protocol.MSG_STATUS
            assert streams[tag][-1]["state"] == protocol.JOB_DONE
            assert any(
                e["type"] == protocol.MSG_PROGRESS
                and e["cell"]["status"] == protocol.STATUS_OK
                for e in streams[tag]
            )

    def test_cell_lookup_over_http(self, live_server):
        _, url = live_server
        client = RemoteClient(url, retries=0)
        Engine(server=url, cache_dir=None, memo={}).run(TINY)
        digest = cell_hash(CELL_A[0], CELL_A[1], CELL_A[3])
        message = client.cell(digest)
        assert message["hash"] == digest
        assert message["stats"]["kind"] == "sm"

    def test_health_over_http(self, live_server):
        _, url = live_server
        message = RemoteClient(url, retries=0).health()
        assert set(message["counters"]) == set(COUNTERS)
