"""Unit tests for the instruction set definitions."""

import pytest

from repro.isa.instructions import (
    BRANCH_OPS,
    CmpOp,
    Instruction,
    MemSpace,
    Op,
    OpClass,
    Operand,
    OperandKind,
    imm,
    op_class_of,
    reg,
    special,
)


class TestOperands:
    def test_reg_operand(self):
        r = reg(5)
        assert r.kind is OperandKind.REG
        assert r.value == 5
        assert repr(r) == "r5"

    def test_reg_negative_rejected(self):
        with pytest.raises(ValueError):
            reg(-1)

    def test_imm_operand(self):
        i = imm(3.5)
        assert i.kind is OperandKind.IMM
        assert i.value == 3.5

    def test_special_named(self):
        s = special("tid")
        assert s.kind is OperandKind.SPECIAL
        assert repr(s) == "%tid"

    def test_special_param(self):
        s = special("param", 2)
        assert s.value == ("param", 2)
        assert repr(s) == "%param2"

    def test_special_param_needs_index(self):
        with pytest.raises(ValueError):
            special("param")

    def test_special_unknown_rejected(self):
        with pytest.raises(ValueError):
            special("bogus")

    def test_operands_hashable(self):
        assert reg(1) == reg(1)
        assert len({reg(1), reg(1), reg(2)}) == 2


class TestOpClasses:
    @pytest.mark.parametrize(
        "op", [Op.MOV, Op.ADD, Op.MAD, Op.SETP, Op.SEL, Op.SHL, Op.NOP]
    )
    def test_mad_class(self, op):
        assert op_class_of(op) is OpClass.MAD

    @pytest.mark.parametrize("op", [Op.RCP, Op.SQRT, Op.SIN, Op.EX2, Op.DIV])
    def test_sfu_class(self, op):
        assert op_class_of(op) is OpClass.SFU

    @pytest.mark.parametrize("op", [Op.LD, Op.ST, Op.ATOM_ADD])
    def test_lsu_class(self, op):
        assert op_class_of(op) is OpClass.LSU

    @pytest.mark.parametrize("op", [Op.BRA, Op.BAR, Op.EXIT])
    def test_ctrl_class(self, op):
        assert op_class_of(op) is OpClass.CTRL

    def test_every_op_has_a_class(self):
        for op in Op:
            assert op_class_of(op) in OpClass

    def test_branch_ops(self):
        assert Op.BRA in BRANCH_OPS
        assert Op.BAR not in BRANCH_OPS


class TestInstruction:
    def test_conditional_branch(self):
        i = Instruction(Op.BRA, srcs=(reg(3),), target=7)
        assert i.is_branch and i.is_conditional
        assert i.source_registers() == (3,)

    def test_unconditional_branch(self):
        i = Instruction(Op.BRA, target=7)
        assert i.is_branch and not i.is_conditional

    def test_memory_flags(self):
        ld = Instruction(Op.LD, dst=1, srcs=(imm(0),), space=MemSpace.GLOBAL)
        st = Instruction(Op.ST, srcs=(imm(0), reg(2)), space=MemSpace.GLOBAL)
        atom = Instruction(Op.ATOM_ADD, srcs=(imm(0), reg(2)))
        assert ld.reads_memory and not ld.writes_memory
        assert st.writes_memory and not st.reads_memory
        assert atom.reads_memory and atom.writes_memory

    def test_source_registers_include_predicate(self):
        i = Instruction(Op.ADD, dst=0, srcs=(reg(1), reg(2)), pred=5)
        assert set(i.source_registers()) == {1, 2, 5}

    def test_source_registers_skip_immediates(self):
        i = Instruction(Op.ADD, dst=0, srcs=(reg(1), imm(3)))
        assert i.source_registers() == (1,)

    def test_repr_contains_mnemonic(self):
        i = Instruction(Op.SETP, dst=0, srcs=(reg(1), imm(2)), cmp=CmpOp.LT)
        text = repr(i)
        assert "setp.lt" in text and "r0" in text

    def test_repr_predicated(self):
        i = Instruction(Op.MOV, dst=0, srcs=(imm(1),), pred=3, pred_neg=True)
        assert repr(i).startswith("@!r3")
